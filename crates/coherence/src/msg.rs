//! Protocol messages between caches and the directory.

use std::fmt;

use memory_model::{Loc, Value};

/// Identifies one processor request (miss) end-to-end through the protocol:
/// the requesting cache allocates it, the directory echoes it in
/// invalidations and acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// What kind of synchronization access rides on an exclusive request —
/// the directory does not care, but the Section 6 *optimized*
/// implementation distinguishes read-only synchronization (`Test`) from
/// writing synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncFlavor {
    /// Not a synchronization access.
    Data,
    /// A read-only synchronization operation (`Test`).
    ReadOnly,
    /// A writing synchronization operation (`Set`/`Unset`/`TestAndSet`).
    Writing,
}

/// Messages a cache sends to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheToDir {
    /// Read miss: requests the line in shared state.
    GetShared {
        /// The missing line.
        loc: Loc,
        /// The originating processor request.
        req: RequestId,
    },
    /// Write (or synchronization) miss/upgrade: requests the line in
    /// exclusive state.
    GetExclusive {
        /// The missing line.
        loc: Loc,
        /// The originating processor request.
        req: RequestId,
        /// Whether this request carries a synchronization operation.
        sync: SyncFlavor,
    },
    /// Acknowledges an invalidation of `loc` on behalf of write `req`.
    InvAck {
        /// The invalidated line.
        loc: Loc,
        /// The write the invalidation belongs to.
        req: RequestId,
    },
    /// The owner writes the line back and invalidates its copy, in
    /// response to [`DirToCache::Recall`].
    RecallAck {
        /// The recalled line.
        loc: Loc,
        /// Its current (dirty) value.
        value: Value,
    },
    /// The owner refuses a recall because the line's reserve bit is set
    /// (Section 5.3: a reserved line is never flushed).
    RecallNack {
        /// The reserved line.
        loc: Loc,
    },
    /// The owner downgrades to shared and returns the current value, in
    /// response to [`DirToCache::Downgrade`].
    DowngradeAck {
        /// The downgraded line.
        loc: Loc,
        /// Its current value.
        value: Value,
    },
    /// The owner refuses a downgrade because the line is reserved.
    DowngradeNack {
        /// The reserved line.
        loc: Loc,
    },
    /// Voluntary eviction of an exclusive (dirty) line: the cache drops
    /// its copy and returns the value to memory. Shared lines are dropped
    /// silently (the directory's sharer list is allowed to over-
    /// approximate; a stale invalidation is simply acknowledged).
    WriteBack {
        /// The evicted line.
        loc: Loc,
        /// Its dirty value.
        value: Value,
    },
}

impl CacheToDir {
    /// The line the message concerns.
    #[must_use]
    pub fn loc(&self) -> Loc {
        match self {
            CacheToDir::GetShared { loc, .. }
            | CacheToDir::GetExclusive { loc, .. }
            | CacheToDir::InvAck { loc, .. }
            | CacheToDir::RecallAck { loc, .. }
            | CacheToDir::RecallNack { loc }
            | CacheToDir::DowngradeAck { loc, .. }
            | CacheToDir::DowngradeNack { loc }
            | CacheToDir::WriteBack { loc, .. } => *loc,
        }
    }
}

/// Messages the directory sends to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirToCache {
    /// Grants the line in shared state.
    DataShared {
        /// The granted line.
        loc: Loc,
        /// The line's value.
        value: Value,
        /// The request being satisfied.
        req: RequestId,
    },
    /// Grants the line in exclusive state. Invalidations to `pending_acks`
    /// sharers were dispatched *in parallel* with this grant; if
    /// `pending_acks > 0` the write commits on receipt but is globally
    /// performed only at the matching [`DirToCache::GlobalAck`].
    DataExclusive {
        /// The granted line.
        loc: Loc,
        /// The line's value before the write.
        value: Value,
        /// The request being satisfied.
        req: RequestId,
        /// Number of sharers being invalidated concurrently.
        pending_acks: u32,
    },
    /// Orders the cache to invalidate its shared copy of `loc` on behalf
    /// of write `req`; the cache must [`CacheToDir::InvAck`].
    Invalidate {
        /// The line to invalidate.
        loc: Loc,
        /// The write the invalidation belongs to.
        req: RequestId,
    },
    /// All invalidations for write `req` have been acknowledged: the write
    /// is now globally performed.
    GlobalAck {
        /// The written line.
        loc: Loc,
        /// The write in question.
        req: RequestId,
    },
    /// Asks the exclusive owner to write the line back and invalidate it
    /// (another processor wants it exclusive).
    Recall {
        /// The line to recall.
        loc: Loc,
    },
    /// Asks the exclusive owner to write back and keep a shared copy
    /// (another processor wants to read).
    Downgrade {
        /// The line to downgrade.
        loc: Loc,
    },
}

impl DirToCache {
    /// The line the message concerns.
    #[must_use]
    pub fn loc(&self) -> Loc {
        match self {
            DirToCache::DataShared { loc, .. }
            | DirToCache::DataExclusive { loc, .. }
            | DirToCache::Invalidate { loc, .. }
            | DirToCache::GlobalAck { loc, .. }
            | DirToCache::Recall { loc }
            | DirToCache::Downgrade { loc } => *loc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_accessors_cover_all_variants() {
        let l = Loc(7);
        let r = RequestId(1);
        let c2d = [
            CacheToDir::GetShared { loc: l, req: r },
            CacheToDir::GetExclusive { loc: l, req: r, sync: SyncFlavor::Data },
            CacheToDir::InvAck { loc: l, req: r },
            CacheToDir::RecallAck { loc: l, value: 0 },
            CacheToDir::RecallNack { loc: l },
            CacheToDir::DowngradeAck { loc: l, value: 0 },
            CacheToDir::DowngradeNack { loc: l },
            CacheToDir::WriteBack { loc: l, value: 0 },
        ];
        for m in c2d {
            assert_eq!(m.loc(), l);
        }
        let d2c = [
            DirToCache::DataShared { loc: l, value: 0, req: r },
            DirToCache::DataExclusive { loc: l, value: 0, req: r, pending_acks: 0 },
            DirToCache::Invalidate { loc: l, req: r },
            DirToCache::GlobalAck { loc: l, req: r },
            DirToCache::Recall { loc: l },
            DirToCache::Downgrade { loc: l },
        ];
        for m in d2c {
            assert_eq!(m.loc(), l);
        }
    }

    #[test]
    fn request_id_displays() {
        assert_eq!(RequestId(9).to_string(), "req9");
    }
}
