//! Protocol messages between caches and the directory.
//!
//! Both message enums carry a byte codec (`encode` / `decode`) so the
//! chaos harness can push messages through a lossy wire representation:
//! decoding never panics — corrupt frames come back as
//! [`DecodeError`], which converts into
//! [`ProtocolError::Malformed`](crate::ProtocolError::Malformed).

use std::fmt;

use memory_model::{Loc, Value};

use crate::error::DecodeError;

/// Identifies one processor request (miss) end-to-end through the protocol:
/// the requesting cache allocates it, the directory echoes it in
/// invalidations and acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// What kind of synchronization access rides on an exclusive request —
/// the directory does not care, but the Section 6 *optimized*
/// implementation distinguishes read-only synchronization (`Test`) from
/// writing synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncFlavor {
    /// Not a synchronization access.
    Data,
    /// A read-only synchronization operation (`Test`).
    ReadOnly,
    /// A writing synchronization operation (`Set`/`Unset`/`TestAndSet`).
    Writing,
}

/// Messages a cache sends to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheToDir {
    /// Read miss: requests the line in shared state.
    GetShared {
        /// The missing line.
        loc: Loc,
        /// The originating processor request.
        req: RequestId,
    },
    /// Write (or synchronization) miss/upgrade: requests the line in
    /// exclusive state.
    GetExclusive {
        /// The missing line.
        loc: Loc,
        /// The originating processor request.
        req: RequestId,
        /// Whether this request carries a synchronization operation.
        sync: SyncFlavor,
    },
    /// Acknowledges an invalidation of `loc` on behalf of write `req`.
    InvAck {
        /// The invalidated line.
        loc: Loc,
        /// The write the invalidation belongs to.
        req: RequestId,
    },
    /// The owner writes the line back and invalidates its copy, in
    /// response to [`DirToCache::Recall`].
    RecallAck {
        /// The recalled line.
        loc: Loc,
        /// Its current (dirty) value.
        value: Value,
    },
    /// The owner refuses a recall because the line's reserve bit is set
    /// (Section 5.3: a reserved line is never flushed).
    RecallNack {
        /// The reserved line.
        loc: Loc,
    },
    /// The owner downgrades to shared and returns the current value, in
    /// response to [`DirToCache::Downgrade`].
    DowngradeAck {
        /// The downgraded line.
        loc: Loc,
        /// Its current value.
        value: Value,
    },
    /// The owner refuses a downgrade because the line is reserved.
    DowngradeNack {
        /// The reserved line.
        loc: Loc,
    },
    /// Voluntary eviction of an exclusive (dirty) line: the cache drops
    /// its copy and returns the value to memory. Shared lines are dropped
    /// silently (the directory's sharer list is allowed to over-
    /// approximate; a stale invalidation is simply acknowledged).
    WriteBack {
        /// The evicted line.
        loc: Loc,
        /// Its dirty value.
        value: Value,
    },
}

impl CacheToDir {
    /// The line the message concerns.
    #[must_use]
    pub fn loc(&self) -> Loc {
        match self {
            CacheToDir::GetShared { loc, .. }
            | CacheToDir::GetExclusive { loc, .. }
            | CacheToDir::InvAck { loc, .. }
            | CacheToDir::RecallAck { loc, .. }
            | CacheToDir::RecallNack { loc }
            | CacheToDir::DowngradeAck { loc, .. }
            | CacheToDir::DowngradeNack { loc }
            | CacheToDir::WriteBack { loc, .. } => *loc,
        }
    }

    /// Serializes the message as a tagged little-endian frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CacheToDir::GetShared { loc, req } => w.tag(0x01).loc(*loc).req(*req),
            CacheToDir::GetExclusive { loc, req, sync } => {
                w.tag(0x02).loc(*loc).req(*req).u8(match sync {
                    SyncFlavor::Data => 0,
                    SyncFlavor::ReadOnly => 1,
                    SyncFlavor::Writing => 2,
                })
            }
            CacheToDir::InvAck { loc, req } => w.tag(0x03).loc(*loc).req(*req),
            CacheToDir::RecallAck { loc, value } => w.tag(0x04).loc(*loc).u64(*value),
            CacheToDir::RecallNack { loc } => w.tag(0x05).loc(*loc),
            CacheToDir::DowngradeAck { loc, value } => w.tag(0x06).loc(*loc).u64(*value),
            CacheToDir::DowngradeNack { loc } => w.tag(0x07).loc(*loc),
            CacheToDir::WriteBack { loc, value } => w.tag(0x08).loc(*loc).u64(*value),
        };
        w.finish()
    }

    /// Parses a frame produced by [`CacheToDir::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a short buffer, an unknown tag or
    /// flavor byte, or trailing garbage — never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            0x01 => CacheToDir::GetShared { loc: r.loc()?, req: r.req()? },
            0x02 => CacheToDir::GetExclusive {
                loc: r.loc()?,
                req: r.req()?,
                sync: match r.u8()? {
                    0 => SyncFlavor::Data,
                    1 => SyncFlavor::ReadOnly,
                    2 => SyncFlavor::Writing,
                    bad => return Err(DecodeError::UnknownTag(bad)),
                },
            },
            0x03 => CacheToDir::InvAck { loc: r.loc()?, req: r.req()? },
            0x04 => CacheToDir::RecallAck { loc: r.loc()?, value: r.u64()? },
            0x05 => CacheToDir::RecallNack { loc: r.loc()? },
            0x06 => CacheToDir::DowngradeAck { loc: r.loc()?, value: r.u64()? },
            0x07 => CacheToDir::DowngradeNack { loc: r.loc()? },
            0x08 => CacheToDir::WriteBack { loc: r.loc()?, value: r.u64()? },
            bad => return Err(DecodeError::UnknownTag(bad)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Messages the directory sends to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirToCache {
    /// Grants the line in shared state.
    DataShared {
        /// The granted line.
        loc: Loc,
        /// The line's value.
        value: Value,
        /// The request being satisfied.
        req: RequestId,
    },
    /// Grants the line in exclusive state. Invalidations to `pending_acks`
    /// sharers were dispatched *in parallel* with this grant; if
    /// `pending_acks > 0` the write commits on receipt but is globally
    /// performed only at the matching [`DirToCache::GlobalAck`].
    DataExclusive {
        /// The granted line.
        loc: Loc,
        /// The line's value before the write.
        value: Value,
        /// The request being satisfied.
        req: RequestId,
        /// Number of sharers being invalidated concurrently.
        pending_acks: u32,
    },
    /// Orders the cache to invalidate its shared copy of `loc` on behalf
    /// of write `req`; the cache must [`CacheToDir::InvAck`].
    Invalidate {
        /// The line to invalidate.
        loc: Loc,
        /// The write the invalidation belongs to.
        req: RequestId,
    },
    /// All invalidations for write `req` have been acknowledged: the write
    /// is now globally performed.
    GlobalAck {
        /// The written line.
        loc: Loc,
        /// The write in question.
        req: RequestId,
    },
    /// Asks the exclusive owner to write the line back and invalidate it
    /// (another processor wants it exclusive).
    Recall {
        /// The line to recall.
        loc: Loc,
    },
    /// Asks the exclusive owner to write back and keep a shared copy
    /// (another processor wants to read).
    Downgrade {
        /// The line to downgrade.
        loc: Loc,
    },
}

impl DirToCache {
    /// The line the message concerns.
    #[must_use]
    pub fn loc(&self) -> Loc {
        match self {
            DirToCache::DataShared { loc, .. }
            | DirToCache::DataExclusive { loc, .. }
            | DirToCache::Invalidate { loc, .. }
            | DirToCache::GlobalAck { loc, .. }
            | DirToCache::Recall { loc }
            | DirToCache::Downgrade { loc } => *loc,
        }
    }

    /// Serializes the message as a tagged little-endian frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            DirToCache::DataShared { loc, value, req } => {
                w.tag(0x11).loc(*loc).u64(*value).req(*req)
            }
            DirToCache::DataExclusive { loc, value, req, pending_acks } => {
                w.tag(0x12).loc(*loc).u64(*value).req(*req).u32(*pending_acks)
            }
            DirToCache::Invalidate { loc, req } => w.tag(0x13).loc(*loc).req(*req),
            DirToCache::GlobalAck { loc, req } => w.tag(0x14).loc(*loc).req(*req),
            DirToCache::Recall { loc } => w.tag(0x15).loc(*loc),
            DirToCache::Downgrade { loc } => w.tag(0x16).loc(*loc),
        };
        w.finish()
    }

    /// Parses a frame produced by [`DirToCache::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a short buffer, an unknown tag, or
    /// trailing garbage — never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            0x11 => DirToCache::DataShared { loc: r.loc()?, value: r.u64()?, req: r.req()? },
            0x12 => DirToCache::DataExclusive {
                loc: r.loc()?,
                value: r.u64()?,
                req: r.req()?,
                pending_acks: r.u32()?,
            },
            0x13 => DirToCache::Invalidate { loc: r.loc()?, req: r.req()? },
            0x14 => DirToCache::GlobalAck { loc: r.loc()?, req: r.req()? },
            0x15 => DirToCache::Recall { loc: r.loc()? },
            0x16 => DirToCache::Downgrade { loc: r.loc()? },
            bad => return Err(DecodeError::UnknownTag(bad)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Little-endian frame writer backing the `encode` impls.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::with_capacity(32) }
    }

    fn tag(&mut self, t: u8) -> &mut Self {
        self.u8(t)
    }

    fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    fn loc(&mut self, l: Loc) -> &mut Self {
        self.u32(l.0)
    }

    fn req(&mut self, r: RequestId) -> &mut Self {
        self.u64(r.0)
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian frame reader backing the `decode` impls.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos + n;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated { needed: end, got: self.buf.len() });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("slice is 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("slice is 8 bytes")))
    }

    fn loc(&mut self) -> Result<Loc, DecodeError> {
        Ok(Loc(self.u32()?))
    }

    fn req(&mut self) -> Result<RequestId, DecodeError> {
        Ok(RequestId(self.u64()?))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos < self.buf.len() {
            return Err(DecodeError::TrailingBytes { extra: self.buf.len() - self.pos });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_accessors_cover_all_variants() {
        let l = Loc(7);
        let r = RequestId(1);
        let c2d = [
            CacheToDir::GetShared { loc: l, req: r },
            CacheToDir::GetExclusive { loc: l, req: r, sync: SyncFlavor::Data },
            CacheToDir::InvAck { loc: l, req: r },
            CacheToDir::RecallAck { loc: l, value: 0 },
            CacheToDir::RecallNack { loc: l },
            CacheToDir::DowngradeAck { loc: l, value: 0 },
            CacheToDir::DowngradeNack { loc: l },
            CacheToDir::WriteBack { loc: l, value: 0 },
        ];
        for m in c2d {
            assert_eq!(m.loc(), l);
        }
        let d2c = [
            DirToCache::DataShared { loc: l, value: 0, req: r },
            DirToCache::DataExclusive { loc: l, value: 0, req: r, pending_acks: 0 },
            DirToCache::Invalidate { loc: l, req: r },
            DirToCache::GlobalAck { loc: l, req: r },
            DirToCache::Recall { loc: l },
            DirToCache::Downgrade { loc: l },
        ];
        for m in d2c {
            assert_eq!(m.loc(), l);
        }
    }

    #[test]
    fn request_id_displays() {
        assert_eq!(RequestId(9).to_string(), "req9");
    }

    fn all_cache_to_dir() -> Vec<CacheToDir> {
        let l = Loc(0xDEAD);
        let r = RequestId(0x1234_5678_9ABC_DEF0);
        vec![
            CacheToDir::GetShared { loc: l, req: r },
            CacheToDir::GetExclusive { loc: l, req: r, sync: SyncFlavor::Data },
            CacheToDir::GetExclusive { loc: l, req: r, sync: SyncFlavor::ReadOnly },
            CacheToDir::GetExclusive { loc: l, req: r, sync: SyncFlavor::Writing },
            CacheToDir::InvAck { loc: l, req: r },
            CacheToDir::RecallAck { loc: l, value: u64::MAX },
            CacheToDir::RecallNack { loc: l },
            CacheToDir::DowngradeAck { loc: l, value: 0 },
            CacheToDir::DowngradeNack { loc: l },
            CacheToDir::WriteBack { loc: l, value: 7 },
        ]
    }

    fn all_dir_to_cache() -> Vec<DirToCache> {
        let l = Loc(u32::MAX);
        let r = RequestId(42);
        vec![
            DirToCache::DataShared { loc: l, value: 9, req: r },
            DirToCache::DataExclusive { loc: l, value: 9, req: r, pending_acks: 3 },
            DirToCache::Invalidate { loc: l, req: r },
            DirToCache::GlobalAck { loc: l, req: r },
            DirToCache::Recall { loc: l },
            DirToCache::Downgrade { loc: l },
        ]
    }

    #[test]
    fn codec_round_trips_every_variant() {
        for m in all_cache_to_dir() {
            assert_eq!(CacheToDir::decode(&m.encode()), Ok(m));
        }
        for m in all_dir_to_cache() {
            assert_eq!(DirToCache::decode(&m.encode()), Ok(m));
        }
    }

    #[test]
    fn every_truncation_is_detected_without_panicking() {
        for m in all_cache_to_dir() {
            let frame = m.encode();
            for cut in 0..frame.len() {
                let err = CacheToDir::decode(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated { .. }),
                    "cut at {cut} of {m:?}: {err:?}"
                );
            }
        }
        for m in all_dir_to_cache() {
            let frame = m.encode();
            for cut in 0..frame.len() {
                let err = DirToCache::decode(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated { .. }),
                    "cut at {cut} of {m:?}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_tags_and_flavors_are_errors() {
        assert_eq!(CacheToDir::decode(&[0xFF]), Err(DecodeError::UnknownTag(0xFF)));
        assert_eq!(DirToCache::decode(&[0x01]), Err(DecodeError::UnknownTag(0x01)));
        // Valid GetExclusive frame with a corrupted flavor byte.
        let mut frame =
            CacheToDir::GetExclusive { loc: Loc(1), req: RequestId(2), sync: SyncFlavor::Data }
                .encode();
        *frame.last_mut().unwrap() = 9;
        assert_eq!(CacheToDir::decode(&frame), Err(DecodeError::UnknownTag(9)));
    }

    #[test]
    fn trailing_bytes_are_errors() {
        let mut frame = CacheToDir::RecallNack { loc: Loc(3) }.encode();
        frame.extend_from_slice(&[0, 0]);
        assert_eq!(CacheToDir::decode(&frame), Err(DecodeError::TrailingBytes { extra: 2 }));
        let mut frame = DirToCache::Recall { loc: Loc(3) }.encode();
        frame.push(1);
        assert_eq!(DirToCache::decode(&frame), Err(DecodeError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn decode_failures_convert_into_protocol_errors() {
        use crate::ProtocolError;
        let err = CacheToDir::decode(&[]).unwrap_err();
        assert_eq!(
            ProtocolError::from(err),
            ProtocolError::Malformed(DecodeError::Truncated { needed: 1, got: 0 })
        );
    }
}
