//! Structured protocol errors.
//!
//! Every condition the protocol state machines used to `panic!` or
//! `unreachable!` on is represented here, so a perturbed (chaos-injected)
//! or corrupted message stream surfaces as an `Err` the harness can
//! report — never as a crashed process. The variants deliberately carry
//! the location and request involved: they end up verbatim in diagnostic
//! dumps.

use memory_model::{Loc, ProcId};

use crate::msg::RequestId;

/// Why a wire message failed to decode (see [`crate::msg`]'s byte codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the fixed-size frame was complete.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The leading tag byte names no known message kind.
    UnknownTag(u8),
    /// Well-formed frame followed by garbage.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            DecodeError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

/// A protocol invariant violated by an incoming message.
///
/// Under fault injection these are *expected* outcomes of aggressive
/// perturbation; the simulator aborts the run with a structured
/// diagnostic instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A data reply arrived for a line with no pending request.
    UnsolicitedData {
        /// Line involved.
        loc: Loc,
        /// Request the reply claims to answer.
        req: RequestId,
    },
    /// A data reply answered a different request than the one pending.
    WrongRequest {
        /// Line involved.
        loc: Loc,
        /// Request the cache is waiting on.
        expected: RequestId,
        /// Request the reply carried.
        got: RequestId,
    },
    /// A shared-state data reply arrived for a pending *store* — stores
    /// always request exclusive state.
    SharedDataForStore {
        /// Line involved.
        loc: Loc,
        /// Pending store request.
        req: RequestId,
    },
    /// An exclusive-state data reply arrived for a pending *load* —
    /// loads always request shared state.
    ExclusiveDataForLoad {
        /// Line involved.
        loc: Loc,
        /// Pending load request.
        req: RequestId,
    },
    /// A global-perform acknowledgement matched no awaited write.
    UnexpectedGlobalAck {
        /// Line involved.
        loc: Loc,
        /// Request the ack claims to complete.
        req: RequestId,
    },
    /// An invalidation arrived at the line's exclusive owner — the
    /// directory recalls owners, it never invalidates them.
    InvalidateOfOwner {
        /// Line involved.
        loc: Loc,
        /// Invalidation round.
        req: RequestId,
    },
    /// An invalidation acknowledgement arrived with no invalidation round
    /// in flight for the line, or for the wrong round.
    StrayInvAck {
        /// Line involved.
        loc: Loc,
        /// Round the ack claims to belong to.
        req: RequestId,
    },
    /// A recall reply (ack or nack) arrived with no recall in flight.
    StrayRecallReply {
        /// Line involved.
        loc: Loc,
    },
    /// A downgrade reply (ack or nack) arrived with no downgrade in
    /// flight.
    StrayDowngradeReply {
        /// Line involved.
        loc: Loc,
    },
    /// A write-back arrived from a cache that does not own the line.
    ForeignWriteBack {
        /// Line involved.
        loc: Loc,
        /// The cache that sent the write-back.
        from: ProcId,
    },
    /// The synchronous test fabric wedged: a processor's access stayed
    /// blocked after the wire drained.
    FabricBlocked {
        /// The blocked processor.
        proc: ProcId,
    },
    /// A wire message failed to decode.
    Malformed(DecodeError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnsolicitedData { loc, req } => {
                write!(f, "unsolicited data reply for {loc} ({req})")
            }
            ProtocolError::WrongRequest { loc, expected, got } => {
                write!(f, "data reply for {loc} answers {got}, cache awaits {expected}")
            }
            ProtocolError::SharedDataForStore { loc, req } => {
                write!(f, "shared data reply for pending store on {loc} ({req})")
            }
            ProtocolError::ExclusiveDataForLoad { loc, req } => {
                write!(f, "exclusive data reply for pending load on {loc} ({req})")
            }
            ProtocolError::UnexpectedGlobalAck { loc, req } => {
                write!(f, "global ack for {loc} ({req}) matches no awaited write")
            }
            ProtocolError::InvalidateOfOwner { loc, req } => {
                write!(f, "invalidation of exclusive owner of {loc} ({req})")
            }
            ProtocolError::StrayInvAck { loc, req } => {
                write!(f, "invalidation ack for {loc} ({req}) with no round in flight")
            }
            ProtocolError::StrayRecallReply { loc } => {
                write!(f, "recall reply for {loc} with no recall in flight")
            }
            ProtocolError::StrayDowngradeReply { loc } => {
                write!(f, "downgrade reply for {loc} with no downgrade in flight")
            }
            ProtocolError::ForeignWriteBack { loc, from } => {
                write!(f, "write-back of {loc} from non-owner {from}")
            }
            ProtocolError::FabricBlocked { proc } => {
                write!(f, "synchronous fabric blocked at {proc}")
            }
            ProtocolError::Malformed(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}
impl std::error::Error for DecodeError {}

impl From<DecodeError> for ProtocolError {
    fn from(e: DecodeError) -> Self {
        ProtocolError::Malformed(e)
    }
}
