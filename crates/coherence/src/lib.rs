//! # coherence — the directory-based cache-coherence protocol of Section 5.2
//!
//! The paper's example implementation assumes "a straightforward
//! directory-based, write-back cache coherence protocol, similar to those
//! discussed in \[ASH88\]". This crate implements that substrate as a pair
//! of transport-agnostic state machines:
//!
//! * [`CacheController`] — one per processor; owns the processor's cache
//!   lines (`Invalid` / `Shared` / `Exclusive`), services hits locally and
//!   emits directory requests on misses, and carries the **reserve bit**
//!   of Section 5.3 on each line;
//! * [`Directory`] — tracks the global state of every line, sends
//!   invalidations to sharers *in parallel with* forwarding the requested
//!   line to the writer (the paper's protocol explicitly allows this),
//!   collects invalidation acknowledgements, and sends the final
//!   [`DirToCache::GlobalAck`] to the writer when all acks are in.
//!
//! Key fidelity points, straight from the paper:
//!
//! * "The value of a write issued by processor `P_i` cannot be dispatched
//!   as a return value for a read until the write modifies the copy of the
//!   accessed line in `P_i`'s cache. Thus, **a write commits only when it
//!   modifies the copy of the line in its local cache**. However, other
//!   copies of the line may not \[yet\] be invalidated." — see
//!   [`CacheEvent::StoreCommitted`] vs
//!   [`CacheEvent::StoreGloballyPerformed`].
//! * "All synchronization operations will be treated as write operations
//!   by the cache coherence protocol" — sync accesses request the line in
//!   exclusive state.
//! * A line whose reserve bit is set is never flushed: the owning cache
//!   answers recalls with [`CacheToDir::RecallNack`] and the directory
//!   retries — this is how "the request is stalled until the counter reads
//!   zero" (Section 5.3) manifests in a directory protocol.
//!
//! Simplifications (documented in DESIGN.md): lines hold exactly one
//! location (no false sharing), caches are unbounded (no capacity
//! evictions), and the directory defers new requests for a line while a
//! recall or invalidation round for that line is outstanding (this
//! serialization per location is what conditions 2 and 3 of Section 5.1
//! require anyway).
//!
//! The state machines are exercised synchronously by [`fabric::TestFabric`]
//! in this crate's tests, and asynchronously (with interconnect latencies)
//! by the `memsim` crate.

#![deny(missing_docs)]

mod cache;
mod directory;
mod error;
mod msg;

pub mod fabric;
pub mod snoop;

pub use cache::{AccessResult, CacheController, CacheEvent, LineState, ProcRequest, SyncOp};
pub use directory::{Directory, DirectoryStats};
pub use error::{DecodeError, ProtocolError};
pub use msg::{CacheToDir, DirToCache, RequestId, SyncFlavor};
