//! The per-processor cache controller.

use std::collections::HashMap;

use memory_model::{Loc, Value};

use crate::error::ProtocolError;
use crate::msg::{CacheToDir, DirToCache, RequestId, SyncFlavor};

/// The state of a line in a processor cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Present read-only; other caches may hold copies.
    Shared,
    /// Present with exclusive (dirty) ownership.
    Exclusive,
}

/// The synchronization operation riding on a sync access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// Read-only `Test`.
    Test,
    /// Write-only `Set`/`Unset` of the given value.
    SetTo(Value),
    /// Atomic `TestAndSet`: read old, store 1.
    TestAndSet,
    /// Atomic fetch-and-add of the given amount.
    FetchAdd(Value),
}

impl SyncOp {
    /// The [`SyncFlavor`] the directory request carries.
    #[must_use]
    pub fn flavor(self) -> SyncFlavor {
        match self {
            SyncOp::Test => SyncFlavor::ReadOnly,
            _ => SyncFlavor::Writing,
        }
    }
}

/// A request the processor hands to its cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcRequest {
    /// Data load.
    Load {
        /// Location.
        loc: Loc,
        /// Request id for matching the completion event.
        req: RequestId,
    },
    /// Data store.
    Store {
        /// Location.
        loc: Loc,
        /// Value to store.
        value: Value,
        /// Request id.
        req: RequestId,
    },
    /// Synchronization access.
    Sync {
        /// Location.
        loc: Loc,
        /// The operation to perform at commit.
        op: SyncOp,
        /// Request id.
        req: RequestId,
        /// Whether the line must be procured in exclusive state. The base
        /// Section 5.3 implementation sets this for *every* sync op
        /// ("all synchronization operations are treated as writes by the
        /// coherence protocol"); the Section 6 optimization clears it for
        /// read-only `Test` operations.
        needs_exclusive: bool,
    },
}

impl ProcRequest {
    /// The accessed location.
    #[must_use]
    pub fn loc(&self) -> Loc {
        match self {
            ProcRequest::Load { loc, .. }
            | ProcRequest::Store { loc, .. }
            | ProcRequest::Sync { loc, .. } => *loc,
        }
    }

    /// The request id.
    #[must_use]
    pub fn req(&self) -> RequestId {
        match self {
            ProcRequest::Load { req, .. }
            | ProcRequest::Store { req, .. }
            | ProcRequest::Sync { req, .. } => *req,
        }
    }
}

/// Completion events the cache raises to its processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A load returned its value (the load is both committed and globally
    /// performed: its value is bound).
    LoadDone {
        /// The originating request.
        req: RequestId,
        /// Location read.
        loc: Loc,
        /// Value returned.
        value: Value,
    },
    /// A store modified the local copy of the line — the paper's *commit*
    /// point for writes.
    StoreCommitted {
        /// The originating request.
        req: RequestId,
        /// Location written.
        loc: Loc,
    },
    /// All other copies of the line have acknowledged invalidation: the
    /// store is *globally performed*.
    StoreGloballyPerformed {
        /// The originating request.
        req: RequestId,
        /// Location written.
        loc: Loc,
    },
    /// A synchronization operation committed (the line was procured and
    /// the operation performed on the local copy); carries the value its
    /// read component returned, if any.
    SyncCommitted {
        /// The originating request.
        req: RequestId,
        /// Location accessed.
        loc: Loc,
        /// Value the read component returned (`None` for `Set`/`Unset`).
        read_value: Option<Value>,
    },
    /// The synchronization operation's write component is globally
    /// performed.
    SyncGloballyPerformed {
        /// The originating request.
        req: RequestId,
        /// Location accessed.
        loc: Loc,
    },
}

/// The immediate outcome of [`CacheController::access`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessResult {
    /// The access hit: these events fire now.
    Done(Vec<CacheEvent>),
    /// The access missed: send these messages to the directory; completion
    /// events arrive via [`CacheController::handle`].
    Miss(Vec<CacheToDir>),
    /// Another request is outstanding on the same line; the processor must
    /// retry later (an MSHR conflict — this preserves intra-processor
    /// dependences, condition 1 of Section 5.1).
    Blocked,
}

#[derive(Debug, Clone)]
struct Line {
    state: LineState,
    value: Value,
    reserved: bool,
}

#[derive(Debug, Clone, Copy)]
enum PendingAction {
    Load,
    Store(Value),
    Sync(SyncOp),
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: RequestId,
    action: PendingAction,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GpKind {
    Store,
    Sync,
}

/// One processor's cache: an unbounded map from locations to lines, plus
/// the miss-status bookkeeping to drive the directory protocol.
///
/// # Examples
///
/// ```
/// use coherence::{CacheController, AccessResult, ProcRequest, RequestId};
/// use memory_model::Loc;
///
/// let mut cache = CacheController::new();
/// // A cold load misses and produces a GetShared for the directory.
/// let r = cache.access(ProcRequest::Load { loc: Loc(0), req: RequestId(1) });
/// assert!(matches!(r, AccessResult::Miss(_)));
/// assert!(cache.has_pending(Loc(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheController {
    lines: HashMap<Loc, Line>,
    pending: HashMap<Loc, Pending>,
    awaiting_gp: HashMap<RequestId, (Loc, GpKind)>,
    /// Maximum resident lines; `None` means unbounded.
    capacity: Option<usize>,
    lru: HashMap<Loc, u64>,
    lru_tick: u64,
    /// Evictions performed (write-backs + silent drops), for stats.
    evictions: u64,
    /// Section 5.3's queue alternative: instead of NACKing a recall of a
    /// reserved line, hold it and service it when the counter reads zero.
    defer_recalls: bool,
    deferred_recalls: Vec<Loc>,
}

impl CacheController {
    /// Creates an empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        CacheController::default()
    }

    /// Creates a cache bounded to `capacity` resident lines, with LRU
    /// replacement. A miss that would exceed the bound first evicts the
    /// least-recently-used unreserved, non-pending line (write-back if
    /// exclusive, silent drop if shared). If every line is reserved or
    /// pending, the access reports [`AccessResult::Blocked`] — the
    /// Section 5.3 rule that a reserved line is never flushed, with the
    /// processor stalling instead.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheController { capacity: Some(capacity), ..CacheController::default() }
    }

    fn touch(&mut self, loc: Loc) {
        self.lru_tick += 1;
        self.lru.insert(loc, self.lru_tick);
    }

    /// Number of resident (non-invalid) lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lines.values().filter(|l| l.state != LineState::Invalid).count()
    }

    /// Evictions performed so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Makes room for one incoming line. Returns the eviction messages to
    /// send, or `None` if no victim is available (caller must block).
    fn make_room(&mut self) -> Option<Vec<CacheToDir>> {
        let Some(capacity) = self.capacity else { return Some(Vec::new()) };
        if self.resident_lines() + self.pending.len() < capacity {
            return Some(Vec::new());
        }
        // LRU victim among resident, unreserved, non-pending lines.
        let victim = self
            .lines
            .iter()
            .filter(|(loc, line)| {
                line.state != LineState::Invalid
                    && !line.reserved
                    && !self.pending.contains_key(loc)
            })
            .min_by_key(|(loc, _)| self.lru.get(loc).copied().unwrap_or(0))
            .map(|(&loc, _)| loc)?;
        let line = self.lines.get_mut(&victim).expect("victim is resident");
        let msgs = if line.state == LineState::Exclusive {
            vec![CacheToDir::WriteBack { loc: victim, value: line.value }]
        } else {
            Vec::new() // shared copies drop silently
        };
        line.state = LineState::Invalid;
        self.lru.remove(&victim);
        self.evictions += 1;
        Some(msgs)
    }

    /// Services a processor request.
    pub fn access(&mut self, request: ProcRequest) -> AccessResult {
        let loc = request.loc();
        if self.pending.contains_key(&loc) {
            return AccessResult::Blocked;
        }
        let state = self.line_state(loc);
        match request {
            ProcRequest::Load { loc, req } => match state {
                LineState::Shared | LineState::Exclusive => {
                    self.touch(loc);
                    let value = self.lines[&loc].value;
                    AccessResult::Done(vec![CacheEvent::LoadDone { req, loc, value }])
                }
                LineState::Invalid => {
                    let Some(mut msgs) = self.make_room() else {
                        return AccessResult::Blocked;
                    };
                    self.pending.insert(loc, Pending { req, action: PendingAction::Load });
                    msgs.push(CacheToDir::GetShared { loc, req });
                    AccessResult::Miss(msgs)
                }
            },
            ProcRequest::Store { loc, value, req } => match state {
                LineState::Exclusive => {
                    self.touch(loc);
                    self.lines.get_mut(&loc).expect("exclusive implies present").value =
                        value;
                    AccessResult::Done(vec![
                        CacheEvent::StoreCommitted { req, loc },
                        CacheEvent::StoreGloballyPerformed { req, loc },
                    ])
                }
                LineState::Shared | LineState::Invalid => {
                    // An upgrade keeps its shared slot; a cold miss needs room.
                    let mut msgs = if state == LineState::Invalid {
                        let Some(msgs) = self.make_room() else {
                            return AccessResult::Blocked;
                        };
                        msgs
                    } else {
                        self.touch(loc);
                        Vec::new()
                    };
                    self.pending
                        .insert(loc, Pending { req, action: PendingAction::Store(value) });
                    msgs.push(CacheToDir::GetExclusive {
                        loc,
                        req,
                        sync: SyncFlavor::Data,
                    });
                    AccessResult::Miss(msgs)
                }
            },
            ProcRequest::Sync { loc, op, req, needs_exclusive } => {
                let hit = match state {
                    LineState::Exclusive => true,
                    LineState::Shared => !needs_exclusive,
                    LineState::Invalid => false,
                };
                if hit {
                    self.touch(loc);
                    let read_value = self.apply_sync(loc, op);
                    return AccessResult::Done(vec![
                        CacheEvent::SyncCommitted { req, loc, read_value },
                        CacheEvent::SyncGloballyPerformed { req, loc },
                    ]);
                }
                let mut msgs = if state == LineState::Invalid {
                    let Some(msgs) = self.make_room() else {
                        return AccessResult::Blocked;
                    };
                    msgs
                } else {
                    self.touch(loc);
                    Vec::new()
                };
                self.pending.insert(loc, Pending { req, action: PendingAction::Sync(op) });
                msgs.push(if needs_exclusive {
                    CacheToDir::GetExclusive { loc, req, sync: op.flavor() }
                } else {
                    CacheToDir::GetShared { loc, req }
                });
                AccessResult::Miss(msgs)
            }
        }
    }

    /// Processes a directory message, returning completion events for the
    /// processor and reply messages for the directory.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] when the message violates the protocol
    /// — a data reply with no pending request, a global ack matching no
    /// awaited write, an invalidation of the exclusive owner. Under fault
    /// injection these abort the run with a structured diagnostic instead
    /// of a panic. Stale recalls and downgrades (the line is already
    /// gone, or a duplicate probe arrives after the first was serviced)
    /// are *not* errors: they are dropped, which is what makes
    /// [`DirToCache::Recall`]/[`DirToCache::Downgrade`] safe to
    /// duplicate.
    pub fn handle(
        &mut self,
        msg: DirToCache,
    ) -> Result<(Vec<CacheEvent>, Vec<CacheToDir>), ProtocolError> {
        let mut events = Vec::new();
        let mut replies = Vec::new();
        self.handle_into(msg, &mut events, &mut replies)?;
        Ok((events, replies))
    }

    /// [`CacheController::handle`] with caller-supplied output buffers, so
    /// a simulator processing millions of messages can reuse two
    /// allocations instead of paying for fresh `Vec`s per message. Events
    /// and replies are *appended*; the buffers are not cleared.
    ///
    /// # Errors
    ///
    /// Same contract as [`CacheController::handle`].
    pub fn handle_into(
        &mut self,
        msg: DirToCache,
        events: &mut Vec<CacheEvent>,
        replies: &mut Vec<CacheToDir>,
    ) -> Result<(), ProtocolError> {
        match msg {
            DirToCache::DataShared { loc, value, req } => {
                let Some(pending) = self.pending.get(&loc).copied() else {
                    return Err(ProtocolError::UnsolicitedData { loc, req });
                };
                if pending.req != req {
                    return Err(ProtocolError::WrongRequest {
                        loc,
                        expected: pending.req,
                        got: req,
                    });
                }
                if matches!(pending.action, PendingAction::Store(_)) {
                    return Err(ProtocolError::SharedDataForStore { loc, req });
                }
                self.pending.remove(&loc);
                self.touch(loc);
                self.lines
                    .insert(loc, Line { state: LineState::Shared, value, reserved: false });
                match pending.action {
                    PendingAction::Load => {
                        events.push(CacheEvent::LoadDone { req, loc, value });
                    }
                    PendingAction::Sync(op) => {
                        // Only read-only sync ops travel on GetShared.
                        debug_assert_eq!(op.flavor(), SyncFlavor::ReadOnly);
                        let read_value = self.apply_sync(loc, op);
                        events.push(CacheEvent::SyncCommitted { req, loc, read_value });
                        events.push(CacheEvent::SyncGloballyPerformed { req, loc });
                    }
                    PendingAction::Store(_) => unreachable!("rejected above"),
                }
            }
            DirToCache::DataExclusive { loc, value, req, pending_acks } => {
                let Some(pending) = self.pending.get(&loc).copied() else {
                    return Err(ProtocolError::UnsolicitedData { loc, req });
                };
                if pending.req != req {
                    return Err(ProtocolError::WrongRequest {
                        loc,
                        expected: pending.req,
                        got: req,
                    });
                }
                if matches!(pending.action, PendingAction::Load) {
                    return Err(ProtocolError::ExclusiveDataForLoad { loc, req });
                }
                self.pending.remove(&loc);
                self.touch(loc);
                self.lines.insert(
                    loc,
                    Line { state: LineState::Exclusive, value, reserved: false },
                );
                match pending.action {
                    PendingAction::Store(v) => {
                        self.lines.get_mut(&loc).expect("just inserted").value = v;
                        events.push(CacheEvent::StoreCommitted { req, loc });
                        if pending_acks == 0 {
                            events.push(CacheEvent::StoreGloballyPerformed { req, loc });
                        } else {
                            self.awaiting_gp.insert(req, (loc, GpKind::Store));
                        }
                    }
                    PendingAction::Sync(op) => {
                        let read_value = self.apply_sync(loc, op);
                        events.push(CacheEvent::SyncCommitted { req, loc, read_value });
                        if pending_acks == 0 {
                            events.push(CacheEvent::SyncGloballyPerformed { req, loc });
                        } else {
                            self.awaiting_gp.insert(req, (loc, GpKind::Sync));
                        }
                    }
                    PendingAction::Load => unreachable!("rejected above"),
                }
            }
            DirToCache::Invalidate { loc, req } => {
                if let Some(line) = self.lines.get_mut(&loc) {
                    if line.state == LineState::Exclusive {
                        return Err(ProtocolError::InvalidateOfOwner { loc, req });
                    }
                    line.state = LineState::Invalid;
                }
                replies.push(CacheToDir::InvAck { loc, req });
            }
            DirToCache::GlobalAck { loc, req } => {
                let Some(&(gp_loc, kind)) = self.awaiting_gp.get(&req) else {
                    return Err(ProtocolError::UnexpectedGlobalAck { loc, req });
                };
                if gp_loc != loc {
                    return Err(ProtocolError::UnexpectedGlobalAck { loc, req });
                }
                self.awaiting_gp.remove(&req);
                events.push(match kind {
                    GpKind::Store => CacheEvent::StoreGloballyPerformed { req, loc },
                    GpKind::Sync => CacheEvent::SyncGloballyPerformed { req, loc },
                });
            }
            DirToCache::Recall { loc } => {
                match self.lines.get_mut(&loc) {
                    // Stale: the line was voluntarily written back (or a
                    // duplicate recall already took it) while this recall
                    // was in flight; the earlier reply completes the
                    // directory's transaction.
                    None => {}
                    Some(line)
                        if matches!(line.state, LineState::Invalid | LineState::Shared) => {}
                    Some(line) if line.reserved => {
                        if self.defer_recalls {
                            // Queue alternative: hold the recall; it is
                            // serviced when the counter reads zero. A
                            // duplicate recall must not queue twice — the
                            // directory expects exactly one reply.
                            if !self.deferred_recalls.contains(&loc) {
                                self.deferred_recalls.push(loc);
                            }
                        } else {
                            replies.push(CacheToDir::RecallNack { loc });
                        }
                    }
                    Some(line) => {
                        debug_assert_eq!(line.state, LineState::Exclusive);
                        let value = line.value;
                        line.state = LineState::Invalid;
                        self.lru.remove(&loc);
                        replies.push(CacheToDir::RecallAck { loc, value });
                    }
                }
            }
            DirToCache::Downgrade { loc } => {
                match self.lines.get_mut(&loc) {
                    None => {}
                    // A duplicate downgrade finds the line already shared:
                    // the first reply completed the transaction; drop it.
                    Some(line)
                        if matches!(line.state, LineState::Invalid | LineState::Shared) => {}
                    Some(line) if line.reserved => {
                        replies.push(CacheToDir::DowngradeNack { loc });
                    }
                    Some(line) => {
                        debug_assert_eq!(line.state, LineState::Exclusive);
                        line.state = LineState::Shared;
                        replies.push(CacheToDir::DowngradeAck { loc, value: line.value });
                    }
                }
            }
        }
        Ok(())
    }

    /// Rewinds the cache to the state [`CacheController::new`] (or
    /// [`CacheController::with_capacity`]) would build, keeping every map's
    /// allocation so one controller can be recycled across runs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn reset(&mut self, capacity: Option<usize>) {
        assert!(capacity != Some(0), "cache capacity must be positive");
        self.lines.clear();
        self.pending.clear();
        self.awaiting_gp.clear();
        self.capacity = capacity;
        self.lru.clear();
        self.lru_tick = 0;
        self.evictions = 0;
        self.defer_recalls = false;
        self.deferred_recalls.clear();
    }

    fn apply_sync(&mut self, loc: Loc, op: SyncOp) -> Option<Value> {
        let line = self.lines.get_mut(&loc).expect("sync op on an absent line");
        match op {
            SyncOp::Test => Some(line.value),
            SyncOp::SetTo(v) => {
                line.value = v;
                None
            }
            SyncOp::TestAndSet => {
                let old = line.value;
                line.value = 1;
                Some(old)
            }
            SyncOp::FetchAdd(n) => {
                let old = line.value;
                line.value = old.wrapping_add(n);
                Some(old)
            }
        }
    }

    /// The state of the line holding `loc`.
    #[must_use]
    pub fn line_state(&self, loc: Loc) -> LineState {
        self.lines.get(&loc).map_or(LineState::Invalid, |l| l.state)
    }

    /// The cached value of `loc`, if the line is present.
    #[must_use]
    pub fn cached_value(&self, loc: Loc) -> Option<Value> {
        self.lines
            .get(&loc)
            .filter(|l| l.state != LineState::Invalid)
            .map(|l| l.value)
    }

    /// Whether a request is outstanding on `loc`.
    #[must_use]
    pub fn has_pending(&self, loc: Loc) -> bool {
        self.pending.contains_key(&loc)
    }

    /// Selects Section 5.3's queue alternative for recalls of reserved
    /// lines: "a queue of stalled requests to be serviced when the counter
    /// reads zero" instead of "a negative ack … asking it to try again".
    /// Deferred recalls are released by [`CacheController::take_deferred_recalls`].
    pub fn set_defer_recalls(&mut self, defer: bool) {
        self.defer_recalls = defer;
    }

    /// Services every deferred recall (the counter has read zero and all
    /// reserve bits are cleared): invalidates each line and returns the
    /// [`CacheToDir::RecallAck`]s to deliver.
    ///
    /// # Panics
    ///
    /// Panics if a deferred line is still reserved — the caller must clear
    /// reserve bits first.
    pub fn take_deferred_recalls(&mut self) -> Vec<CacheToDir> {
        let locs = std::mem::take(&mut self.deferred_recalls);
        locs.into_iter()
            .map(|loc| {
                let line = self.lines.get_mut(&loc).expect("deferred line is resident");
                assert!(!line.reserved, "deferred recall of a still-reserved line");
                debug_assert_eq!(line.state, LineState::Exclusive);
                let value = line.value;
                line.state = LineState::Invalid;
                self.lru.remove(&loc);
                CacheToDir::RecallAck { loc, value }
            })
            .collect()
    }

    /// Sets or clears the reserve bit of `loc` (Section 5.3).
    ///
    /// # Panics
    ///
    /// Panics if the line is absent — only a line just procured in
    /// exclusive state for a synchronization operation is ever reserved.
    pub fn set_reserved(&mut self, loc: Loc, reserved: bool) {
        self.lines
            .get_mut(&loc)
            .expect("reserving an absent line")
            .reserved = reserved;
    }

    /// Whether `loc`'s reserve bit is set.
    #[must_use]
    pub fn is_reserved(&self, loc: Loc) -> bool {
        self.lines.get(&loc).is_some_and(|l| l.reserved)
    }

    /// Every line whose reserve bit is currently set, sorted — used by
    /// diagnostic dumps.
    #[must_use]
    pub fn reserved_lines(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> =
            self.lines.iter().filter(|(_, l)| l.reserved).map(|(loc, _)| *loc).collect();
        locs.sort_unstable_by_key(|l| l.0);
        locs
    }

    /// Clears every reserve bit — "all reserve bits are reset when the
    /// counter reads zero" (Section 5.3). The paper notes this does not
    /// require an associative clear in hardware (a small table suffices);
    /// the simulator just iterates.
    pub fn clear_all_reserved(&mut self) {
        for line in self.lines.values_mut() {
            line.reserved = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: Loc = Loc(3);

    fn filled_exclusive(value: Value) -> CacheController {
        let mut c = CacheController::new();
        let r = c.access(ProcRequest::Store { loc: L, value: 0, req: RequestId(0) });
        assert!(matches!(r, AccessResult::Miss(_)));
        let (ev, _) = c.handle(DirToCache::DataExclusive {
            loc: L,
            value,
            req: RequestId(0),
            pending_acks: 0,
        }).unwrap();
        assert_eq!(ev.len(), 2);
        c
    }

    #[test]
    fn cold_load_misses_then_completes() {
        let mut c = CacheController::new();
        let r = c.access(ProcRequest::Load { loc: L, req: RequestId(1) });
        let AccessResult::Miss(msgs) = r else { panic!("expected miss") };
        assert_eq!(msgs, vec![CacheToDir::GetShared { loc: L, req: RequestId(1) }]);
        let (ev, replies) =
            c.handle(DirToCache::DataShared { loc: L, value: 9, req: RequestId(1) }).unwrap();
        assert_eq!(ev, vec![CacheEvent::LoadDone { req: RequestId(1), loc: L, value: 9 }]);
        assert!(replies.is_empty());
        assert_eq!(c.line_state(L), LineState::Shared);
        assert_eq!(c.cached_value(L), Some(9));
    }

    #[test]
    fn load_hit_is_immediate() {
        let mut c = filled_exclusive(5);
        let r = c.access(ProcRequest::Load { loc: L, req: RequestId(2) });
        let AccessResult::Done(ev) = r else { panic!("expected hit") };
        assert_eq!(ev, vec![CacheEvent::LoadDone { req: RequestId(2), loc: L, value: 0 }]);
    }

    #[test]
    fn store_to_exclusive_commits_and_globally_performs_at_once() {
        let mut c = filled_exclusive(5);
        let r = c.access(ProcRequest::Store { loc: L, value: 7, req: RequestId(2) });
        let AccessResult::Done(ev) = r else { panic!("expected hit") };
        assert_eq!(
            ev,
            vec![
                CacheEvent::StoreCommitted { req: RequestId(2), loc: L },
                CacheEvent::StoreGloballyPerformed { req: RequestId(2), loc: L },
            ]
        );
        assert_eq!(c.cached_value(L), Some(7));
    }

    #[test]
    fn store_with_pending_invals_commits_before_global_perform() {
        let mut c = CacheController::new();
        c.access(ProcRequest::Store { loc: L, value: 7, req: RequestId(1) });
        let (ev, _) = c.handle(DirToCache::DataExclusive {
            loc: L,
            value: 0,
            req: RequestId(1),
            pending_acks: 2,
        }).unwrap();
        // Committed — the local copy is modified — but not globally performed.
        assert_eq!(ev, vec![CacheEvent::StoreCommitted { req: RequestId(1), loc: L }]);
        assert_eq!(c.cached_value(L), Some(7), "commit = local copy modified");
        let (ev, _) = c.handle(DirToCache::GlobalAck { loc: L, req: RequestId(1) }).unwrap();
        assert_eq!(
            ev,
            vec![CacheEvent::StoreGloballyPerformed { req: RequestId(1), loc: L }]
        );
    }

    #[test]
    fn second_access_to_pending_line_blocks() {
        let mut c = CacheController::new();
        c.access(ProcRequest::Load { loc: L, req: RequestId(1) });
        let r = c.access(ProcRequest::Load { loc: L, req: RequestId(2) });
        assert_eq!(r, AccessResult::Blocked);
    }

    #[test]
    fn invalidate_clears_line_and_acks() {
        let mut c = CacheController::new();
        c.access(ProcRequest::Load { loc: L, req: RequestId(1) });
        c.handle(DirToCache::DataShared { loc: L, value: 9, req: RequestId(1) }).unwrap();
        let (ev, replies) = c.handle(DirToCache::Invalidate { loc: L, req: RequestId(7) }).unwrap();
        assert!(ev.is_empty());
        assert_eq!(replies, vec![CacheToDir::InvAck { loc: L, req: RequestId(7) }]);
        assert_eq!(c.line_state(L), LineState::Invalid);
    }

    #[test]
    fn test_and_set_on_exclusive_hit_is_atomic() {
        let mut c = filled_exclusive(0);
        let r = c.access(ProcRequest::Sync {
            loc: L,
            op: SyncOp::TestAndSet,
            req: RequestId(2),
            needs_exclusive: true,
        });
        let AccessResult::Done(ev) = r else { panic!("expected hit") };
        assert_eq!(
            ev[0],
            CacheEvent::SyncCommitted { req: RequestId(2), loc: L, read_value: Some(0) }
        );
        assert_eq!(c.cached_value(L), Some(1));
    }

    #[test]
    fn sync_miss_requests_exclusive() {
        let mut c = CacheController::new();
        let r = c.access(ProcRequest::Sync {
            loc: L,
            op: SyncOp::SetTo(0),
            req: RequestId(1),
            needs_exclusive: true,
        });
        let AccessResult::Miss(msgs) = r else { panic!("expected miss") };
        assert_eq!(
            msgs,
            vec![CacheToDir::GetExclusive {
                loc: L,
                req: RequestId(1),
                sync: SyncFlavor::Writing
            }]
        );
        let (ev, _) = c.handle(DirToCache::DataExclusive {
            loc: L,
            value: 1,
            req: RequestId(1),
            pending_acks: 0,
        }).unwrap();
        assert_eq!(
            ev,
            vec![
                CacheEvent::SyncCommitted { req: RequestId(1), loc: L, read_value: None },
                CacheEvent::SyncGloballyPerformed { req: RequestId(1), loc: L },
            ]
        );
        assert_eq!(c.cached_value(L), Some(0), "Unset applied at commit");
    }

    #[test]
    fn read_only_sync_can_ride_shared_when_optimized() {
        let mut c = CacheController::new();
        let r = c.access(ProcRequest::Sync {
            loc: L,
            op: SyncOp::Test,
            req: RequestId(1),
            needs_exclusive: false,
        });
        let AccessResult::Miss(msgs) = r else { panic!("expected miss") };
        assert_eq!(msgs, vec![CacheToDir::GetShared { loc: L, req: RequestId(1) }]);
        let (ev, _) = c.handle(DirToCache::DataShared { loc: L, value: 4, req: RequestId(1) }).unwrap();
        assert_eq!(
            ev[0],
            CacheEvent::SyncCommitted { req: RequestId(1), loc: L, read_value: Some(4) }
        );
    }

    #[test]
    fn recall_of_unreserved_line_acks_with_value() {
        let mut c = filled_exclusive(0);
        c.access(ProcRequest::Store { loc: L, value: 42, req: RequestId(2) });
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert_eq!(replies, vec![CacheToDir::RecallAck { loc: L, value: 42 }]);
        assert_eq!(c.line_state(L), LineState::Invalid);
    }

    #[test]
    fn deferred_recall_is_queued_and_released_at_counter_zero() {
        let mut c = filled_exclusive(0);
        c.set_defer_recalls(true);
        c.set_reserved(L, true);
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert!(replies.is_empty(), "queued, not nacked");
        assert_eq!(c.line_state(L), LineState::Exclusive);
        // Counter reads zero: reserve clears, the queue drains.
        c.clear_all_reserved();
        let replies = c.take_deferred_recalls();
        assert_eq!(replies, vec![CacheToDir::RecallAck { loc: L, value: 0 }]);
        assert_eq!(c.line_state(L), LineState::Invalid);
        assert!(c.take_deferred_recalls().is_empty(), "queue drained once");
    }

    #[test]
    fn duplicate_recall_defers_only_once() {
        // A fault-injected interconnect may duplicate a recall; the queue
        // alternative must still send the directory exactly one reply.
        let mut c = filled_exclusive(0);
        c.set_defer_recalls(true);
        c.set_reserved(L, true);
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert!(replies.is_empty());
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert!(replies.is_empty(), "duplicate is absorbed");
        c.clear_all_reserved();
        let replies = c.take_deferred_recalls();
        assert_eq!(replies, vec![CacheToDir::RecallAck { loc: L, value: 0 }]);
    }

    #[test]
    fn recall_of_reserved_line_nacks() {
        let mut c = filled_exclusive(0);
        c.set_reserved(L, true);
        assert!(c.is_reserved(L));
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert_eq!(replies, vec![CacheToDir::RecallNack { loc: L }]);
        assert_eq!(c.line_state(L), LineState::Exclusive, "reserved line stays");
        c.clear_all_reserved();
        let (_, replies) = c.handle(DirToCache::Recall { loc: L }).unwrap();
        assert!(matches!(replies[0], CacheToDir::RecallAck { .. }));
    }

    #[test]
    fn downgrade_keeps_shared_copy() {
        let mut c = filled_exclusive(0);
        c.access(ProcRequest::Store { loc: L, value: 8, req: RequestId(2) });
        let (_, replies) = c.handle(DirToCache::Downgrade { loc: L }).unwrap();
        assert_eq!(replies, vec![CacheToDir::DowngradeAck { loc: L, value: 8 }]);
        assert_eq!(c.line_state(L), LineState::Shared);
        assert_eq!(c.cached_value(L), Some(8));
    }

    #[test]
    fn downgrade_of_reserved_line_nacks() {
        let mut c = filled_exclusive(0);
        c.set_reserved(L, true);
        let (_, replies) = c.handle(DirToCache::Downgrade { loc: L }).unwrap();
        assert_eq!(replies, vec![CacheToDir::DowngradeNack { loc: L }]);
    }

    #[test]
    fn capacity_evicts_lru_shared_line_silently() {
        let mut c = CacheController::with_capacity(2);
        // Fill with two shared lines.
        for (i, loc) in [Loc(1), Loc(2)].into_iter().enumerate() {
            c.access(ProcRequest::Load { loc, req: RequestId(i as u64) });
            c.handle(DirToCache::DataShared { loc, value: 0, req: RequestId(i as u64) }).unwrap();
        }
        assert_eq!(c.resident_lines(), 2);
        // Touch Loc(1) so Loc(2) is the LRU victim.
        c.access(ProcRequest::Load { loc: Loc(1), req: RequestId(10) });
        let r = c.access(ProcRequest::Load { loc: Loc(3), req: RequestId(11) });
        let AccessResult::Miss(msgs) = r else { panic!("expected miss") };
        // Silent drop: only the GetShared goes out.
        assert_eq!(msgs, vec![CacheToDir::GetShared { loc: Loc(3), req: RequestId(11) }]);
        assert_eq!(c.line_state(Loc(2)), LineState::Invalid);
        assert_eq!(c.line_state(Loc(1)), LineState::Shared);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn capacity_evicts_exclusive_line_with_writeback() {
        let mut c = CacheController::with_capacity(1);
        c.access(ProcRequest::Store { loc: Loc(1), value: 9, req: RequestId(0) });
        c.handle(DirToCache::DataExclusive {
            loc: Loc(1),
            value: 0,
            req: RequestId(0),
            pending_acks: 0,
        }).unwrap();
        let r = c.access(ProcRequest::Load { loc: Loc(2), req: RequestId(1) });
        let AccessResult::Miss(msgs) = r else { panic!("expected miss") };
        assert_eq!(
            msgs,
            vec![
                CacheToDir::WriteBack { loc: Loc(1), value: 9 },
                CacheToDir::GetShared { loc: Loc(2), req: RequestId(1) },
            ]
        );
        assert_eq!(c.line_state(Loc(1)), LineState::Invalid);
    }

    #[test]
    fn reserved_line_is_never_evicted() {
        let mut c = CacheController::with_capacity(1);
        c.access(ProcRequest::Store { loc: Loc(1), value: 9, req: RequestId(0) });
        c.handle(DirToCache::DataExclusive {
            loc: Loc(1),
            value: 0,
            req: RequestId(0),
            pending_acks: 0,
        }).unwrap();
        c.set_reserved(Loc(1), true);
        // The only line is reserved: the access must block, not flush.
        let r = c.access(ProcRequest::Load { loc: Loc(2), req: RequestId(1) });
        assert_eq!(r, AccessResult::Blocked);
        // Counter reads zero -> reserve clears -> the retry evicts.
        c.clear_all_reserved();
        let r = c.access(ProcRequest::Load { loc: Loc(2), req: RequestId(1) });
        assert!(matches!(r, AccessResult::Miss(_)));
    }

    #[test]
    fn stale_recall_after_eviction_is_ignored() {
        let mut c = CacheController::with_capacity(1);
        c.access(ProcRequest::Store { loc: Loc(1), value: 9, req: RequestId(0) });
        c.handle(DirToCache::DataExclusive {
            loc: Loc(1),
            value: 0,
            req: RequestId(0),
            pending_acks: 0,
        }).unwrap();
        // Evict Loc(1) by touching Loc(2).
        c.access(ProcRequest::Load { loc: Loc(2), req: RequestId(1) });
        // A recall for the evicted line crosses the write-back: ignore.
        let (ev, replies) = c.handle(DirToCache::Recall { loc: Loc(1) }).unwrap();
        assert!(ev.is_empty());
        assert!(replies.is_empty());
        let (_, replies) = c.handle(DirToCache::Downgrade { loc: Loc(1) }).unwrap();
        assert!(replies.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = CacheController::with_capacity(0);
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut c = filled_exclusive(0);
        c.access(ProcRequest::Store { loc: L, value: 10, req: RequestId(2) });
        let r = c.access(ProcRequest::Sync {
            loc: L,
            op: SyncOp::FetchAdd(5),
            req: RequestId(3),
            needs_exclusive: true,
        });
        let AccessResult::Done(ev) = r else { panic!("expected hit") };
        assert_eq!(
            ev[0],
            CacheEvent::SyncCommitted { req: RequestId(3), loc: L, read_value: Some(10) }
        );
        assert_eq!(c.cached_value(L), Some(15));
    }
}
