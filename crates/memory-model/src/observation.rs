//! Per-processor observations of a hardware execution.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::{Execution, Loc, OpId, Operation, ProcId, Value};

/// The program-ordered operations one processor performed, with the values
/// its reads returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The observing processor.
    pub proc: ProcId,
    /// Its operations, in program order.
    pub ops: Vec<Operation>,
}

impl ThreadTrace {
    /// Creates a trace for `proc` from program-ordered operations.
    #[must_use]
    pub fn new(proc: ProcId, ops: Vec<Operation>) -> Self {
        ThreadTrace { proc, ops }
    }
}

/// What software can observe of a (possibly weakly ordered) hardware
/// execution: each processor's program-ordered accesses with the values its
/// reads returned, and optionally the final memory state.
///
/// Unlike [`Execution`], an `Observation` carries **no global order** —
/// whether one exists (i.e. whether the observation *appears sequentially
/// consistent*) is exactly the question [`crate::sc::check_sc`] answers.
///
/// # Examples
///
/// ```
/// use memory_model::{Loc, Observation, Operation, OpId, ProcId, ThreadTrace};
///
/// let obs = Observation::new(vec![
///     ThreadTrace::new(ProcId(0), vec![
///         Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     ]),
///     ThreadTrace::new(ProcId(1), vec![
///         Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
///     ]),
/// ])?;
/// assert_eq!(obs.total_ops(), 2);
/// # Ok::<(), memory_model::ObservationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    threads: Vec<ThreadTrace>,
    final_memory: Option<Vec<(Loc, Value)>>,
}

impl Observation {
    /// Creates an observation from per-processor traces.
    ///
    /// # Errors
    ///
    /// Returns an error if two traces claim the same processor, if an
    /// operation id repeats, or if an operation inside a trace names a
    /// different processor than the trace.
    pub fn new(threads: Vec<ThreadTrace>) -> Result<Self, ObservationError> {
        let mut procs = HashSet::new();
        let mut ids = HashSet::new();
        for t in &threads {
            if !procs.insert(t.proc) {
                return Err(ObservationError::DuplicateProc(t.proc));
            }
            for op in &t.ops {
                if op.proc != t.proc {
                    return Err(ObservationError::ProcMismatch {
                        op: op.id,
                        trace: t.proc,
                        op_proc: op.proc,
                    });
                }
                if !ids.insert(op.id) {
                    return Err(ObservationError::DuplicateOpId(op.id));
                }
            }
        }
        Ok(Observation { threads, final_memory: None })
    }

    /// Attaches the observed final memory state (cells differing from the
    /// initial default). When present, [`crate::sc::check_sc`] additionally
    /// requires the witness total order to leave memory in this state —
    /// Lamport's "result" includes the final state of memory.
    #[must_use]
    pub fn with_final_memory(mut self, cells: Vec<(Loc, Value)>) -> Self {
        self.final_memory = Some(cells);
        self
    }

    /// Derives the observation of an idealized [`Execution`] — its
    /// per-processor program-order projections.
    #[must_use]
    pub fn from_execution(exec: &Execution) -> Self {
        let mut threads: Vec<ThreadTrace> = exec
            .procs()
            .into_iter()
            .map(|p| ThreadTrace::new(p, Vec::new()))
            .collect();
        for op in exec.ops() {
            let t = threads
                .iter_mut()
                .find(|t| t.proc == op.proc)
                .expect("procs() covers every operation's processor");
            t.ops.push(*op);
        }
        Observation { threads, final_memory: None }
    }

    /// The per-processor traces.
    #[must_use]
    pub fn threads(&self) -> &[ThreadTrace] {
        &self.threads
    }

    /// The observed final memory, if recorded.
    #[must_use]
    pub fn final_memory(&self) -> Option<&[(Loc, Value)]> {
        self.final_memory.as_deref()
    }

    /// Total operation count across all processors.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Iterates over all operations (program order within each processor,
    /// processors in trace order).
    pub fn iter_ops(&self) -> impl Iterator<Item = &Operation> {
        self.threads.iter().flat_map(|t| t.ops.iter())
    }

    /// Looks up an operation by id.
    #[must_use]
    pub fn op(&self, id: OpId) -> Option<&Operation> {
        self.iter_ops().find(|op| op.id == id)
    }
}

/// An error constructing an [`Observation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationError {
    /// Two traces named the same processor.
    DuplicateProc(ProcId),
    /// Two operations carried the same id.
    DuplicateOpId(OpId),
    /// An operation's processor differs from its containing trace.
    ProcMismatch {
        /// The offending operation.
        op: OpId,
        /// The processor the trace belongs to.
        trace: ProcId,
        /// The processor the operation names.
        op_proc: ProcId,
    },
}

impl fmt::Display for ObservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservationError::DuplicateProc(p) => {
                write!(f, "duplicate trace for processor {p}")
            }
            ObservationError::DuplicateOpId(id) => {
                write!(f, "duplicate operation id {id}")
            }
            ObservationError::ProcMismatch { op, trace, op_proc } => write!(
                f,
                "operation {op} names {op_proc} but appears in trace of {trace}"
            ),
        }
    }
}

impl Error for ObservationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Memory;

    fn simple() -> Observation {
        Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![Operation::data_write(OpId(0), ProcId(0), Loc(0), 1)],
            ),
            ThreadTrace::new(
                ProcId(1),
                vec![Operation::data_read(OpId(1), ProcId(1), Loc(0), 1)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_proc() {
        let err = Observation::new(vec![
            ThreadTrace::new(ProcId(0), vec![]),
            ThreadTrace::new(ProcId(0), vec![]),
        ])
        .unwrap_err();
        assert_eq!(err, ObservationError::DuplicateProc(ProcId(0)));
    }

    #[test]
    fn rejects_duplicate_op_id() {
        let err = Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![
                    Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
                    Operation::data_write(OpId(0), ProcId(0), Loc(1), 2),
                ],
            ),
        ])
        .unwrap_err();
        assert_eq!(err, ObservationError::DuplicateOpId(OpId(0)));
    }

    #[test]
    fn rejects_proc_mismatch() {
        let err = Observation::new(vec![ThreadTrace::new(
            ProcId(0),
            vec![Operation::data_write(OpId(0), ProcId(1), Loc(0), 1)],
        )])
        .unwrap_err();
        assert!(matches!(err, ObservationError::ProcMismatch { .. }));
        assert!(err.to_string().contains("P1"));
    }

    #[test]
    fn accessors() {
        let obs = simple();
        assert_eq!(obs.total_ops(), 2);
        assert_eq!(obs.threads().len(), 2);
        assert_eq!(obs.op(OpId(1)).unwrap().proc, ProcId(1));
        assert_eq!(obs.final_memory(), None);
        let obs = obs.with_final_memory(vec![(Loc(0), 1)]);
        assert_eq!(obs.final_memory(), Some(&[(Loc(0), 1)][..]));
    }

    #[test]
    fn from_execution_projects_program_order() {
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(1), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(1), 2),
            Operation::data_write(OpId(2), ProcId(1), Loc(2), 3),
        ])
        .unwrap();
        let obs = Observation::from_execution(&exec);
        assert_eq!(obs.threads().len(), 2);
        let p1 = obs.threads().iter().find(|t| t.proc == ProcId(1)).unwrap();
        assert_eq!(
            p1.ops.iter().map(|o| o.id).collect::<Vec<_>>(),
            vec![OpId(0), OpId(2)]
        );
        // Round-trip sanity: execution result reads match observation ops.
        let result = exec.result(&Memory::new());
        assert!(result.reads.is_empty());
    }
}
