//! Executions on the idealized architecture.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use crate::{Loc, Memory, OpId, Operation, ProcId, Value};

/// A totally ordered execution on the paper's *idealized architecture*:
/// all memory accesses execute atomically, and the accesses of each
/// processor appear in program order.
///
/// The `Vec` order **is** the execution (completion) order; the program
/// order of processor `P` is the subsequence of `P`'s operations.
/// Synchronization order `so` relates synchronization operations on the
/// same location by this completion order.
///
/// # Examples
///
/// ```
/// use memory_model::{Execution, Loc, Operation, OpId, ProcId};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
/// ])?;
/// assert_eq!(exec.len(), 2);
/// assert_eq!(exec.procs(), vec![ProcId(0), ProcId(1)]);
/// # Ok::<(), memory_model::ExecutionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    ops: Vec<Operation>,
    index: HashMap<OpId, usize>,
}

impl Execution {
    /// Creates an execution from operations in completion order.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutionError::DuplicateOpId`] if two operations share an
    /// id.
    pub fn new(ops: Vec<Operation>) -> Result<Self, ExecutionError> {
        let mut index = HashMap::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            if index.insert(op.id, i).is_some() {
                return Err(ExecutionError::DuplicateOpId(op.id));
            }
        }
        Ok(Execution { ops, index })
    }

    /// The operations in completion order.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the execution contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The position of `id` in completion order, if present.
    #[must_use]
    pub fn position(&self, id: OpId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// The operation with the given id, if present.
    #[must_use]
    pub fn op(&self, id: OpId) -> Option<&Operation> {
        self.position(id).map(|i| &self.ops[i])
    }

    /// The distinct processors appearing in the execution, ascending.
    #[must_use]
    pub fn procs(&self) -> Vec<ProcId> {
        let set: BTreeSet<ProcId> = self.ops.iter().map(|op| op.proc).collect();
        set.into_iter().collect()
    }

    /// The distinct locations accessed, ascending.
    #[must_use]
    pub fn locations(&self) -> Vec<Loc> {
        let set: BTreeSet<Loc> = self.ops.iter().map(|op| op.loc).collect();
        set.into_iter().collect()
    }

    /// Checks that the execution respects atomic-memory semantics starting
    /// from `initial`: every read component returns the most recent
    /// preceding write to its location (or the initial value), in the
    /// completion order.
    ///
    /// Executions produced by the idealized interpreter satisfy this by
    /// construction; the check exists to validate executions assembled by
    /// hand or decoded from simulator traces.
    ///
    /// # Errors
    ///
    /// Returns the first [`SemanticsViolation`] found.
    pub fn validate_atomic_semantics(
        &self,
        initial: &Memory,
    ) -> Result<(), SemanticsViolation> {
        let mut mem = initial.clone();
        for op in &self.ops {
            if let Some(got) = op.read_value {
                let expected = mem.read(op.loc);
                if got != expected {
                    return Err(SemanticsViolation {
                        op: op.id,
                        loc: op.loc,
                        expected,
                        got,
                    });
                }
            }
            if let Some(v) = op.write_value {
                mem.write(op.loc, v);
            }
        }
        Ok(())
    }

    /// The *result* of the execution, per Lamport as interpreted by the
    /// paper: the union of the values returned by all read operations and
    /// the final state of memory.
    #[must_use]
    pub fn result(&self, initial: &Memory) -> ExecutionResult {
        let mut mem = initial.clone();
        let mut reads = BTreeMap::new();
        for op in &self.ops {
            if let Some(v) = op.read_value {
                reads.insert(op.id, v);
            }
            if let Some(v) = op.write_value {
                mem.write(op.loc, v);
            }
        }
        ExecutionResult { reads, final_memory: mem.snapshot() }
    }
}

impl<'a> IntoIterator for &'a Execution {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// The observable outcome of an execution: read values plus final memory.
///
/// Two executions of the same program are indistinguishable to software
/// precisely when their `ExecutionResult`s are equal — this is the "result"
/// in both Lamport's definition of sequential consistency and the paper's
/// Definition 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExecutionResult {
    /// Value returned by each read operation, keyed by operation id.
    pub reads: BTreeMap<OpId, Value>,
    /// Final memory cells that differ from the initial default.
    pub final_memory: Vec<(Loc, Value)>,
}

/// An error constructing an [`Execution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionError {
    /// Two operations carried the same [`OpId`].
    DuplicateOpId(OpId),
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::DuplicateOpId(id) => {
                write!(f, "duplicate operation id {id}")
            }
        }
    }
}

impl Error for ExecutionError {}

/// A read that did not return the most recent preceding write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemanticsViolation {
    /// The offending read operation.
    pub op: OpId,
    /// The location it accessed.
    pub loc: Loc,
    /// The value atomic memory would have returned.
    pub expected: Value,
    /// The value the operation actually recorded.
    pub got: Value,
}

impl fmt::Display for SemanticsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {op} at {loc} returned {got} but atomic memory held {expected}",
            op = self.op,
            loc = self.loc,
            got = self.got,
            expected = self.expected
        )
    }
}

impl Error for SemanticsViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrx() -> Vec<Operation> {
        vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 5),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 5),
            Operation::data_read(OpId(2), ProcId(1), Loc(1), 0),
        ]
    }

    #[test]
    fn new_rejects_duplicate_ids() {
        let mut ops = wrx();
        ops[2].id = OpId(0);
        assert_eq!(
            Execution::new(ops).unwrap_err(),
            ExecutionError::DuplicateOpId(OpId(0))
        );
    }

    #[test]
    fn accessors() {
        let exec = Execution::new(wrx()).unwrap();
        assert_eq!(exec.len(), 3);
        assert!(!exec.is_empty());
        assert_eq!(exec.position(OpId(1)), Some(1));
        assert_eq!(exec.op(OpId(2)).unwrap().loc, Loc(1));
        assert_eq!(exec.procs(), vec![ProcId(0), ProcId(1)]);
        assert_eq!(exec.locations(), vec![Loc(0), Loc(1)]);
        assert_eq!(exec.into_iter().count(), 3);
    }

    #[test]
    fn atomic_semantics_accepts_valid() {
        let exec = Execution::new(wrx()).unwrap();
        assert!(exec.validate_atomic_semantics(&Memory::new()).is_ok());
    }

    #[test]
    fn atomic_semantics_rejects_stale_read() {
        let ops = vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 5),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 0), // stale
        ];
        let exec = Execution::new(ops).unwrap();
        let err = exec.validate_atomic_semantics(&Memory::new()).unwrap_err();
        assert_eq!(err.op, OpId(1));
        assert_eq!(err.expected, 5);
        assert_eq!(err.got, 0);
        assert!(err.to_string().contains("returned 0"));
    }

    #[test]
    fn rmw_reads_then_writes() {
        // TestAndSet on a held location must read the held value.
        let ops = vec![
            Operation::sync_rmw(OpId(0), ProcId(0), Loc(0), 0, 1),
            Operation::sync_rmw(OpId(1), ProcId(1), Loc(0), 1, 1),
        ];
        let exec = Execution::new(ops).unwrap();
        assert!(exec.validate_atomic_semantics(&Memory::new()).is_ok());
    }

    #[test]
    fn result_collects_reads_and_final_memory() {
        let exec = Execution::new(wrx()).unwrap();
        let result = exec.result(&Memory::new());
        assert_eq!(result.reads[&OpId(1)], 5);
        assert_eq!(result.reads[&OpId(2)], 0);
        assert_eq!(result.final_memory, vec![(Loc(0), 5)]);
    }

    #[test]
    fn results_compare_by_value() {
        let a = Execution::new(wrx()).unwrap().result(&Memory::new());
        let b = Execution::new(wrx()).unwrap().result(&Memory::new());
        assert_eq!(a, b);
    }
}
