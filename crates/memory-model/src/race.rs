//! A streaming vector-clock data-race detector.
//!
//! [`RaceDetector`] consumes the operations of an idealized execution in
//! completion order and reports DRF0 violations online, in the style of
//! DJIT⁺ — the dynamic-detection direction the paper points to via Netzer &
//! Miller \[NeM89\]. It finds a race iff one exists (same verdict as the
//! exhaustive pairwise check in [`crate::drf0`], cross-validated by tests
//! and property tests), while needing only O(procs × locations) state.

use std::collections::HashMap;

use crate::drf0::Race;
use crate::hb::SyncMode;
use crate::vc::VectorClock;
use crate::{Execution, Loc, OpId, Operation};

/// Per-location access history: for each processor, the vector-clock
/// component and id of its last read / last write of this location.
/// `(clock component of P_p at the access, op id)`.
type Access = (u32, OpId);

/// Last accesses of one location, split by read/write and data/sync so a
/// data access is never shadowed by a later synchronization access (only
/// sync-sync pairs on a location are exempt from racing, and collapsing
/// classes would hide data accesses behind that exemption).
#[derive(Debug, Clone, Default)]
struct LocHistory {
    read_data: HashMap<usize, Access>,
    read_sync: HashMap<usize, Access>,
    write_data: HashMap<usize, Access>,
    write_sync: HashMap<usize, Access>,
}

/// An O(procs)-sized record reversing one
/// [`RaceDetector::observe_undoable`] call.
#[derive(Debug)]
pub struct ObserveUndo {
    p: usize,
    loc: Loc,
    prev_clock: VectorClock,
    /// `Some(displaced)` when the read history slot was written.
    prev_read: Option<Option<Access>>,
    read_sync: bool,
    /// `Some(displaced)` when the write history slot was written.
    prev_write: Option<Option<Access>>,
    write_sync: bool,
    /// `Some(displaced)` when the operation released (published a clock).
    prev_sync_clock: Option<Option<VectorClock>>,
    races_len: usize,
}

/// An online detector of DRF0 violations.
///
/// Feed operations in completion order via [`RaceDetector::observe`]; each
/// call returns the races the new operation completes (empty when none).
///
/// # Examples
///
/// ```
/// use memory_model::race::RaceDetector;
/// use memory_model::{Loc, Operation, OpId, ProcId};
///
/// let mut det = RaceDetector::new(2);
/// let w = Operation::data_write(OpId(0), ProcId(0), Loc(0), 1);
/// let r = Operation::data_read(OpId(1), ProcId(1), Loc(0), 1);
/// assert!(det.observe(&w).is_empty());
/// let races = det.observe(&r);
/// assert_eq!(races.len(), 1); // unsynchronized conflicting accesses
/// ```
#[derive(Debug, Clone)]
pub struct RaceDetector {
    proc_clock: Vec<VectorClock>,
    sync_clock: HashMap<Loc, VectorClock>,
    history: HashMap<Loc, LocHistory>,
    races: Vec<Race>,
    mode: SyncMode,
}

impl RaceDetector {
    /// Creates a detector for processors `P0 .. P(num_procs-1)`, using
    /// DRF0's happens-before.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        Self::with_mode(num_procs, SyncMode::Drf0)
    }

    /// Creates a detector using the given [`SyncMode`]. Under
    /// [`SyncMode::ReleaseWrites`] read-only synchronization operations do
    /// not release (Section 6's refinement), and synchronization
    /// operations on one location never race with each other (they remain
    /// so-ordered).
    #[must_use]
    pub fn with_mode(num_procs: usize, mode: SyncMode) -> Self {
        RaceDetector {
            proc_clock: vec![VectorClock::new(num_procs); num_procs],
            sync_clock: HashMap::new(),
            history: HashMap::new(),
            races: Vec::new(),
            mode,
        }
    }

    /// Processes one operation (in completion order) and returns the races
    /// it participates in as the later access.
    ///
    /// # Panics
    ///
    /// Panics if `op.proc` is outside the range given to [`RaceDetector::new`].
    pub fn observe(&mut self, op: &Operation) -> Vec<Race> {
        let undo = self.observe_undoable(op);
        self.races[undo.races_len..].to_vec()
    }

    /// Like [`RaceDetector::observe`], but returns an [`ObserveUndo`] that
    /// reverses the observation via [`RaceDetector::undo`].
    ///
    /// One observation touches one processor clock, at most one
    /// `sync_clock` entry, and at most two history slots, so the record is
    /// O(procs) — the exploration DFS uses it instead of cloning the whole
    /// detector (O(procs² + locations)) per transition.
    ///
    /// # Panics
    ///
    /// Panics if `op.proc` is outside the range given to [`RaceDetector::new`].
    pub fn observe_undoable(&mut self, op: &Operation) -> ObserveUndo {
        let p = op.proc.index();
        assert!(p < self.proc_clock.len(), "processor {} out of range", op.proc);
        let prev_clock = self.proc_clock[p].clone();
        let races_len = self.races.len();

        // A synchronization operation acquires the happens-before knowledge
        // published by every earlier synchronization on the same location
        // (the so edge) *before* its own access is race-checked, so
        // sync-sync pairs on one location can never race.
        if op.kind.is_sync() {
            if let Some(sc) = self.sync_clock.get(&op.loc) {
                self.proc_clock[p].join(sc);
            }
        }

        let mut found = Vec::new();
        let clock = self.proc_clock[p].clone();
        let hist = self.history.entry(op.loc).or_default();

        // Synchronization operations on one location are so-ordered in
        // both modes; sync-sync pairs are never races. Data accesses are
        // always fair game.
        let check = |maps: &[&HashMap<usize, Access>], found: &mut Vec<Race>| {
            for map in maps {
                for (&q, &(at, prev)) in *map {
                    if q != p && at > clock.component(q) {
                        found.push(Race { first: prev, second: op.id, loc: op.loc });
                    }
                }
            }
        };
        let cur_sync = op.kind.is_sync();
        if op.kind.is_write() {
            // A write conflicts with every previous read and write by
            // other processors not ordered before it.
            check(&[&hist.read_data, &hist.write_data], &mut found);
            if !cur_sync {
                check(&[&hist.read_sync, &hist.write_sync], &mut found);
            }
        } else {
            // A pure read conflicts only with previous writes.
            check(&[&hist.write_data], &mut found);
            if !cur_sync {
                check(&[&hist.write_sync], &mut found);
            }
        }

        // Record this access, then advance local time.
        let stamp = clock.component(p) + 1; // component after the tick below
        let mut prev_read = None;
        if op.kind.is_read() {
            let map = if cur_sync { &mut hist.read_sync } else { &mut hist.read_data };
            prev_read = Some(map.insert(p, (stamp, op.id)));
        }
        let mut prev_write = None;
        if op.kind.is_write() {
            let map = if cur_sync { &mut hist.write_sync } else { &mut hist.write_data };
            prev_write = Some(map.insert(p, (stamp, op.id)));
        }

        self.proc_clock[p].tick(p);
        let releases = op.kind.is_sync()
            && match self.mode {
                SyncMode::Drf0 => true,
                SyncMode::ReleaseWrites => op.kind.is_write(),
            };
        let prev_sync_clock = if releases {
            Some(self.sync_clock.insert(op.loc, self.proc_clock[p].clone()))
        } else {
            None
        };

        found.sort_by_key(|r| (r.first, r.second));
        found.dedup();
        self.races.extend(found.iter().copied());
        ObserveUndo {
            p,
            loc: op.loc,
            prev_clock,
            prev_read,
            read_sync: cur_sync,
            prev_write,
            write_sync: cur_sync,
            prev_sync_clock,
            races_len,
        }
    }

    /// Reverses the observation that produced `undo`. Undo records must be
    /// applied in LIFO order (most recent observation first).
    pub fn undo(&mut self, undo: ObserveUndo) {
        self.proc_clock[undo.p] = undo.prev_clock;
        self.races.truncate(undo.races_len);
        if let Some(prev) = undo.prev_sync_clock {
            match prev {
                Some(vc) => {
                    self.sync_clock.insert(undo.loc, vc);
                }
                None => {
                    self.sync_clock.remove(&undo.loc);
                }
            }
        }
        if undo.prev_read.is_some() || undo.prev_write.is_some() {
            let hist = self
                .history
                .get_mut(&undo.loc)
                .expect("observation touched this location's history");
            if let Some(prev) = undo.prev_read {
                let map =
                    if undo.read_sync { &mut hist.read_sync } else { &mut hist.read_data };
                match prev {
                    Some(a) => {
                        map.insert(undo.p, a);
                    }
                    None => {
                        map.remove(&undo.p);
                    }
                }
            }
            if let Some(prev) = undo.prev_write {
                let map = if undo.write_sync {
                    &mut hist.write_sync
                } else {
                    &mut hist.write_data
                };
                match prev {
                    Some(a) => {
                        map.insert(undo.p, a);
                    }
                    None => {
                        map.remove(&undo.p);
                    }
                }
            }
        }
    }

    /// All races reported so far.
    #[must_use]
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Whether no race has been observed.
    #[must_use]
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Runs the detector over a whole execution and reports whether it is
    /// race-free (same verdict as [`crate::drf0::is_data_race_free`]).
    #[must_use]
    pub fn check_execution(exec: &Execution) -> bool {
        RaceDetector::check_execution_with_mode(exec, SyncMode::Drf0)
    }

    /// [`RaceDetector::check_execution`] under an explicit [`SyncMode`].
    #[must_use]
    pub fn check_execution_with_mode(exec: &Execution, mode: SyncMode) -> bool {
        let mut det = RaceDetector::with_mode(procs_of(exec), mode);
        for op in exec.ops() {
            if !det.observe(op).is_empty() {
                return false;
            }
        }
        true
    }
}

fn procs_of(exec: &Execution) -> usize {
    exec.procs().iter().map(|p| p.index() + 1).max().unwrap_or(0)
}

/// Every race of `exec` under `mode`, in observation order — the full
/// dynamic evidence (not just a verdict), so differential harnesses can
/// cross-check a static DRF0 label against the racing operation pairs and
/// print them in a repro.
///
/// # Examples
///
/// ```
/// use memory_model::race::races_of;
/// use memory_model::{Execution, Loc, Operation, OpId, ProcId, SyncMode};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
/// ]).unwrap();
/// let races = races_of(&exec, SyncMode::Drf0);
/// assert_eq!(races.len(), 1);
/// assert_eq!(races[0].loc, Loc(0));
/// ```
#[must_use]
pub fn races_of(exec: &Execution, mode: SyncMode) -> Vec<Race> {
    let mut det = RaceDetector::with_mode(procs_of(exec), mode);
    for op in exec.ops() {
        det.observe(op);
    }
    det.races
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drf0, ProcId};

    fn w(id: u64, p: u16, l: u32) -> Operation {
        Operation::data_write(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn r(id: u64, p: u16, l: u32) -> Operation {
        Operation::data_read(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn s(id: u64, p: u16, l: u32) -> Operation {
        Operation::sync_write(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn sr(id: u64, p: u16, l: u32) -> Operation {
        Operation::sync_read(OpId(id), ProcId(p), Loc(l), 1)
    }

    #[test]
    fn detects_write_read_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        let races = det.observe(&r(1, 1, 0));
        assert_eq!(races, vec![Race { first: OpId(0), second: OpId(1), loc: Loc(0) }]);
        assert!(!det.is_race_free());
    }

    #[test]
    fn detects_write_write_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        assert_eq!(det.observe(&w(1, 1, 0)).len(), 1);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&r(0, 0, 0));
        assert!(det.observe(&r(1, 1, 0)).is_empty());
        assert!(det.is_race_free());
    }

    #[test]
    fn sync_handoff_suppresses_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 9));
        assert!(det.observe(&r(3, 1, 0)).is_empty());
    }

    #[test]
    fn sync_on_other_location_does_not_suppress() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 8)); // different sync location
        assert_eq!(det.observe(&r(3, 1, 0)).len(), 1);
    }

    #[test]
    fn same_processor_never_races() {
        let mut det = RaceDetector::new(1);
        det.observe(&w(0, 0, 0));
        assert!(det.observe(&w(1, 0, 0)).is_empty());
        assert!(det.observe(&r(2, 0, 0)).is_empty());
    }

    #[test]
    fn sync_sync_same_location_never_races() {
        let mut det = RaceDetector::new(2);
        det.observe(&s(0, 0, 9));
        assert!(det.observe(&s(1, 1, 9)).is_empty());
    }

    #[test]
    fn sync_data_same_location_races() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 9));
        assert_eq!(det.observe(&s(1, 1, 9)).len(), 1);
    }

    #[test]
    fn transitive_handoff_through_third_processor() {
        let mut det = RaceDetector::new(3);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 9));
        det.observe(&s(3, 1, 8));
        det.observe(&sr(4, 2, 8));
        assert!(det.observe(&r(5, 2, 0)).is_empty());
    }

    #[test]
    fn check_execution_agrees_with_pairwise_on_examples() {
        let racy = Execution::new(vec![w(0, 0, 0), r(1, 1, 0)]).unwrap();
        let clean = Execution::new(vec![
            w(0, 0, 0),
            s(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
        ])
        .unwrap();
        for exec in [&racy, &clean] {
            assert_eq!(
                RaceDetector::check_execution(exec),
                drf0::is_data_race_free(exec)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_out_of_range_proc() {
        RaceDetector::new(1).observe(&w(0, 5, 0));
    }

    /// Exhaustive undo check: observing then undoing any prefix of an
    /// execution leaves the detector reporting exactly what a fresh
    /// detector would on the shorter prefix.
    #[test]
    fn undo_restores_detector_verdicts() {
        let script = [
            w(0, 0, 0),
            s(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
            w(4, 2, 0), // races with op 0 and op 3
            sr(5, 2, 8),
        ];
        for cut in 0..script.len() {
            let mut det = RaceDetector::new(3);
            for op in &script[..cut] {
                det.observe(op);
            }
            let races_before = det.races().to_vec();
            // Observe the rest undoably, then roll all of it back.
            let undos: Vec<_> =
                script[cut..].iter().map(|op| det.observe_undoable(op)).collect();
            for undo in undos.into_iter().rev() {
                det.undo(undo);
            }
            assert_eq!(det.races(), races_before.as_slice(), "cut at {cut}");
            // Replaying the suffix after the rollback matches a straight run.
            for op in &script[cut..] {
                det.observe(op);
            }
            let mut fresh = RaceDetector::new(3);
            for op in &script {
                fresh.observe(op);
            }
            assert_eq!(det.races(), fresh.races(), "replay after cut {cut}");
        }
    }

    #[test]
    fn undo_restores_release_clocks() {
        // Undoing a releasing sync op must also retract its published
        // clock, or a later acquire would see into the undone future.
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        let undo = det.observe_undoable(&s(1, 0, 9));
        det.undo(undo);
        // P1 acquires on loc 9: nothing was (still) published there, so
        // the data read must race.
        det.observe(&sr(2, 1, 9));
        assert_eq!(det.observe(&r(3, 1, 0)).len(), 1);
    }

    #[test]
    fn races_of_returns_the_full_evidence() {
        // Two independent races: W/W on m0, W/R on m1.
        let exec = Execution::new(vec![
            w(0, 0, 0),
            w(1, 1, 0),
            w(2, 0, 1),
            r(3, 1, 1),
        ])
        .unwrap();
        let races = races_of(&exec, crate::SyncMode::Drf0);
        assert_eq!(races.len(), 2);
        assert!(races.contains(&Race { first: OpId(0), second: OpId(1), loc: Loc(0) }));
        assert!(races.contains(&Race { first: OpId(2), second: OpId(3), loc: Loc(1) }));
    }

    #[test]
    fn mode_changes_the_verdict_for_read_only_sync_handoff() {
        // Hand-off through a read-only sync op: releases under DRF0, does
        // not under the Section 6 refinement.
        let exec = Execution::new(vec![
            w(0, 0, 0),
            sr(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
        ])
        .unwrap();
        assert!(RaceDetector::check_execution_with_mode(&exec, crate::SyncMode::Drf0));
        assert!(!RaceDetector::check_execution_with_mode(
            &exec,
            crate::SyncMode::ReleaseWrites
        ));
        assert_eq!(races_of(&exec, crate::SyncMode::ReleaseWrites).len(), 1);
    }
}
