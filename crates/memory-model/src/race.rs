//! A streaming vector-clock data-race detector.
//!
//! [`RaceDetector`] consumes the operations of an idealized execution in
//! completion order and reports DRF0 violations online, in the style of
//! DJIT⁺ — the dynamic-detection direction the paper points to via Netzer &
//! Miller \[NeM89\]. It finds a race iff one exists (same verdict as the
//! exhaustive pairwise check in [`crate::drf0`], cross-validated by tests
//! and property tests), while needing only O(procs × locations) state.

use std::collections::HashMap;

use crate::drf0::Race;
use crate::hb::SyncMode;
use crate::vc::VectorClock;
use crate::{Execution, Loc, OpId, Operation};

/// One recorded access: the vector-clock component of the accessing
/// processor at the access (its *epoch*) and the operation's id.
///
/// Storing the scalar component instead of the whole clock is the
/// epoch-style compression that keeps per-location state O(procs) words:
/// whether a later access `b` is ordered after a recorded access `a` by
/// `P_q` is decided entirely by `a`'s component against `b`'s clock entry
/// for `q`.
type Access = (u32, OpId);

/// Epoch-compressed last-access history of **one** memory location,
/// shared by the exploring [`RaceDetector`] and the streaming `wo-trace`
/// checker (one logic, two drivers — no fork).
///
/// Accesses are split by read/write and data/sync so a data access is
/// never shadowed by a later synchronization access: only sync-sync pairs
/// on a location are exempt from racing, and collapsing the classes would
/// hide data accesses behind that exemption. Per class there is one slot
/// per processor — `4 × procs` slots in a flat boxed array, so a location
/// costs a fixed [`LocationState::approx_bytes`] regardless of how many
/// events touch it.
///
/// # Examples
///
/// ```
/// use memory_model::race::LocationState;
/// use memory_model::{Loc, Operation, OpId, ProcId};
///
/// let mut loc = LocationState::new(2);
/// let mut races = Vec::new();
/// let w = Operation::data_write(OpId(0), ProcId(0), Loc(0), 1);
/// let r = Operation::data_read(OpId(1), ProcId(1), Loc(0), 1);
/// loc.observe(&w, 0, &[0, 0], &mut races); // P0's clock ⟨0,0⟩
/// loc.observe(&r, 1, &[0, 0], &mut races); // P1 never saw P0's write
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LocationState {
    procs: usize,
    /// `slots[class * procs + q]` = `P_q`'s last access of this location
    /// in `class` (see the `*_CLASS` constants).
    slots: Box<[Option<Access>]>,
    /// XOR of one hash contribution per occupied slot, maintained
    /// incrementally through [`LocationState::observe`] /
    /// [`LocationState::undo`] — the undo-coupled hashing hook explorers
    /// use to fold detector state into an O(1) state digest. Empty
    /// history ⇒ 0.
    digest: u64,
}

const READ_DATA_CLASS: usize = 0;
const READ_SYNC_CLASS: usize = 1;
const WRITE_DATA_CLASS: usize = 2;
const WRITE_SYNC_CLASS: usize = 3;

/// The digest contribution of one occupied slot.
fn slot_contrib(slot: usize, access: Access) -> u64 {
    let (at, id) = access;
    mix(mix(slot as u64 ^ 0xA076_1D64_78BD_642F) ^ (u64::from(at) << 32) ^ id.0)
}

use crate::vc::mix;

/// A record reversing one [`LocationState::observe`] call (at most two
/// displaced slots).
#[derive(Debug)]
pub struct LocationUndo {
    read: Option<(usize, Option<Access>)>,
    write: Option<(usize, Option<Access>)>,
    prev_digest: u64,
}

impl LocationState {
    /// Creates an empty history for processors `P0 .. P(procs-1)`.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        LocationState {
            procs,
            slots: vec![None; 4 * procs].into_boxed_slice(),
            digest: 0,
        }
    }

    /// The incrementally maintained slot digest (0 for an empty history).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the digest from the slots alone — the independent oracle
    /// the digest-maintenance tests compare [`LocationState::digest`]
    /// against.
    #[must_use]
    pub fn digest_from_scratch(&self) -> u64 {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|a| slot_contrib(i, a)))
            .fold(0, |acc, c| acc ^ c)
    }

    /// The fixed memory footprint of one location's history, in bytes —
    /// what a bounded-memory consumer charges per tracked location.
    #[must_use]
    pub fn approx_bytes(procs: usize) -> usize {
        std::mem::size_of::<Self>() + 4 * procs * std::mem::size_of::<Option<Access>>()
    }

    /// Race-checks and records one operation on this location.
    ///
    /// `p` is the operation's processor index and `clock` the processor's
    /// vector clock *after* acquiring any same-location synchronization
    /// knowledge and *before* its own tick (the recorded epoch is
    /// therefore `clock[p] + 1`). Races completed by `op` are appended to
    /// `out`, sorted by `(first, second)` and deduplicated — a
    /// read-modify-write recorded in both a read and a write slot would
    /// otherwise be reported twice.
    ///
    /// # Panics
    ///
    /// Panics if `p` or the width of `clock` is out of range for the
    /// processor count given to [`LocationState::new`].
    pub fn observe(
        &mut self,
        op: &Operation,
        p: usize,
        clock: &[u32],
        out: &mut Vec<Race>,
    ) -> LocationUndo {
        let procs = self.procs;
        assert!(p < procs, "processor index {p} out of range");
        assert!(clock.len() >= procs, "clock narrower than the processor count");
        let start = out.len();
        let cur_sync = op.kind.is_sync();

        let check = |class: usize, out: &mut Vec<Race>| {
            let slots = &self.slots[class * procs..(class + 1) * procs];
            for (q, slot) in slots.iter().enumerate() {
                if q == p {
                    continue;
                }
                if let Some((at, prev)) = slot {
                    if *at > clock[q] {
                        out.push(Race { first: *prev, second: op.id, loc: op.loc });
                    }
                }
            }
        };
        // Synchronization operations on one location are so-ordered;
        // sync-sync pairs are never races. Data accesses are always fair
        // game. A write conflicts with previous reads and writes; a pure
        // read only with previous writes.
        if op.kind.is_write() {
            check(READ_DATA_CLASS, out);
            check(WRITE_DATA_CLASS, out);
            if !cur_sync {
                check(READ_SYNC_CLASS, out);
                check(WRITE_SYNC_CLASS, out);
            }
        } else {
            check(WRITE_DATA_CLASS, out);
            if !cur_sync {
                check(WRITE_SYNC_CLASS, out);
            }
        }
        if out.len() > start + 1 {
            out[start..].sort_unstable_by_key(|r| (r.first, r.second));
            let mut keep = start + 1;
            for i in start + 1..out.len() {
                if out[i] != out[keep - 1] {
                    out[keep] = out[i];
                    keep += 1;
                }
            }
            out.truncate(keep);
        }

        // Record this access with the epoch after the caller's tick.
        let stamp = clock[p] + 1;
        let mut undo =
            LocationUndo { read: None, write: None, prev_digest: self.digest };
        if op.kind.is_read() {
            let class = if cur_sync { READ_SYNC_CLASS } else { READ_DATA_CLASS };
            let slot = class * procs + p;
            undo.read = Some((slot, self.slots[slot]));
            self.set_slot(slot, (stamp, op.id));
        }
        if op.kind.is_write() {
            let class = if cur_sync { WRITE_SYNC_CLASS } else { WRITE_DATA_CLASS };
            let slot = class * procs + p;
            undo.write = Some((slot, self.slots[slot]));
            self.set_slot(slot, (stamp, op.id));
        }
        undo
    }

    /// Overwrites one slot, keeping the XOR digest exact.
    fn set_slot(&mut self, slot: usize, access: Access) {
        if let Some(old) = self.slots[slot] {
            self.digest ^= slot_contrib(slot, old);
        }
        self.digest ^= slot_contrib(slot, access);
        self.slots[slot] = Some(access);
    }

    /// Reverses the [`LocationState::observe`] call that produced `undo`
    /// (LIFO order, like every undo log in this workspace).
    pub fn undo(&mut self, undo: LocationUndo) {
        if let Some((slot, prev)) = undo.read {
            self.slots[slot] = prev;
        }
        if let Some((slot, prev)) = undo.write {
            self.slots[slot] = prev;
        }
        self.digest = undo.prev_digest;
    }
}

/// An O(procs)-sized record reversing one
/// [`RaceDetector::observe_undoable`] call.
#[derive(Debug)]
pub struct ObserveUndo {
    p: usize,
    loc: Loc,
    prev_clock: VectorClock,
    /// Displaced history slots of the accessed location.
    loc_undo: LocationUndo,
    /// `Some(displaced)` when the operation released (published a clock).
    prev_sync_clock: Option<Option<VectorClock>>,
    races_len: usize,
    prev_digest: u64,
}

/// Per-component digest seeds — distinct lanes so clocks, published sync
/// clocks, and location histories cannot cancel across kinds.
const PROC_LANE: u64 = 0x8EBC_6AF0_9C88_C6E3;
const SYNC_LANE: u64 = 0x5895_17C8_B541_D2E5;
const HIST_LANE: u64 = 0x6D31_BEB5_CC9A_A915;

fn proc_contrib(p: usize, clock: &VectorClock) -> u64 {
    mix(p as u64 ^ clock.fingerprint(PROC_LANE))
}

fn sync_contrib(loc: Loc, clock: &VectorClock) -> u64 {
    mix(u64::from(loc.0) ^ clock.fingerprint(SYNC_LANE))
}

/// Empty histories contribute 0, so a `history` entry created and then
/// rolled back to empty is indistinguishable from one never created —
/// undo leaves the empty shell in the map.
fn hist_contrib(loc: Loc, digest: u64) -> u64 {
    if digest == 0 {
        0
    } else {
        mix(mix(HIST_LANE ^ u64::from(loc.0)) ^ digest)
    }
}

/// An online detector of DRF0 violations.
///
/// Feed operations in completion order via [`RaceDetector::observe`]; each
/// call returns the races the new operation completes (empty when none).
///
/// # Examples
///
/// ```
/// use memory_model::race::RaceDetector;
/// use memory_model::{Loc, Operation, OpId, ProcId};
///
/// let mut det = RaceDetector::new(2);
/// let w = Operation::data_write(OpId(0), ProcId(0), Loc(0), 1);
/// let r = Operation::data_read(OpId(1), ProcId(1), Loc(0), 1);
/// assert!(det.observe(&w).is_empty());
/// let races = det.observe(&r);
/// assert_eq!(races.len(), 1); // unsynchronized conflicting accesses
/// ```
#[derive(Debug, Clone)]
pub struct RaceDetector {
    proc_clock: Vec<VectorClock>,
    sync_clock: HashMap<Loc, VectorClock>,
    history: HashMap<Loc, LocationState>,
    races: Vec<Race>,
    mode: SyncMode,
    /// Incrementally maintained XOR-digest of the detector state:
    /// `⊕ proc_contrib(p, clock[p]) ⊕ sync_contrib(loc, published)
    /// ⊕ hist_contrib(loc, history-digest)` over all processors, published
    /// sync clocks, and non-empty location histories. Kept in lock-step by
    /// [`RaceDetector::observe_undoable`] / [`RaceDetector::undo`] so
    /// explorers can fold detector state into a visited-set key in O(1)
    /// extra work per transition.
    digest: u64,
}

impl RaceDetector {
    /// Creates a detector for processors `P0 .. P(num_procs-1)`, using
    /// DRF0's happens-before.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        Self::with_mode(num_procs, SyncMode::Drf0)
    }

    /// Creates a detector using the given [`SyncMode`]. Under
    /// [`SyncMode::ReleaseWrites`] read-only synchronization operations do
    /// not release (Section 6's refinement), and synchronization
    /// operations on one location never race with each other (they remain
    /// so-ordered).
    #[must_use]
    pub fn with_mode(num_procs: usize, mode: SyncMode) -> Self {
        let proc_clock = vec![VectorClock::new(num_procs); num_procs];
        let digest = proc_clock
            .iter()
            .enumerate()
            .fold(0u64, |acc, (p, c)| acc ^ proc_contrib(p, c));
        RaceDetector {
            proc_clock,
            sync_clock: HashMap::new(),
            history: HashMap::new(),
            races: Vec::new(),
            mode,
            digest,
        }
    }

    /// Processes one operation (in completion order) and returns the races
    /// it participates in as the later access.
    ///
    /// # Panics
    ///
    /// Panics if `op.proc` is outside the range given to [`RaceDetector::new`].
    pub fn observe(&mut self, op: &Operation) -> Vec<Race> {
        let undo = self.observe_undoable(op);
        self.races[undo.races_len..].to_vec()
    }

    /// Like [`RaceDetector::observe`], but returns an [`ObserveUndo`] that
    /// reverses the observation via [`RaceDetector::undo`].
    ///
    /// One observation touches one processor clock, at most one
    /// `sync_clock` entry, and at most two history slots, so the record is
    /// O(procs) — the exploration DFS uses it instead of cloning the whole
    /// detector (O(procs² + locations)) per transition.
    ///
    /// # Panics
    ///
    /// Panics if `op.proc` is outside the range given to [`RaceDetector::new`].
    pub fn observe_undoable(&mut self, op: &Operation) -> ObserveUndo {
        let p = op.proc.index();
        let procs = self.proc_clock.len();
        assert!(p < procs, "processor {} out of range", op.proc);
        let prev_clock = self.proc_clock[p].clone();
        let races_len = self.races.len();
        let prev_digest = self.digest;

        // Detach the contributions about to be mutated; re-attach the
        // updated values below. `undo` restores `prev_digest` wholesale, so
        // this bookkeeping only has to be right in the forward direction.
        self.digest ^= proc_contrib(p, &self.proc_clock[p]);

        // A synchronization operation acquires the happens-before knowledge
        // published by every earlier synchronization on the same location
        // (the so edge) *before* its own access is race-checked, so
        // sync-sync pairs on one location can never race.
        if op.kind.is_sync() {
            if let Some(sc) = self.sync_clock.get(&op.loc) {
                self.proc_clock[p].join(sc);
            }
        }

        let hist =
            self.history.entry(op.loc).or_insert_with(|| LocationState::new(procs));
        let hist_before = hist.digest();
        let loc_undo =
            hist.observe(op, p, self.proc_clock[p].as_slice(), &mut self.races);
        let hist_after = hist.digest();
        self.digest ^=
            hist_contrib(op.loc, hist_before) ^ hist_contrib(op.loc, hist_after);

        self.proc_clock[p].tick(p);
        self.digest ^= proc_contrib(p, &self.proc_clock[p]);
        let releases = op.kind.is_sync()
            && match self.mode {
                SyncMode::Drf0 => true,
                SyncMode::ReleaseWrites => op.kind.is_write(),
            };
        let prev_sync_clock = if releases {
            self.digest ^= sync_contrib(op.loc, &self.proc_clock[p]);
            let displaced =
                self.sync_clock.insert(op.loc, self.proc_clock[p].clone());
            if let Some(old) = &displaced {
                self.digest ^= sync_contrib(op.loc, old);
            }
            Some(displaced)
        } else {
            None
        };

        ObserveUndo {
            p,
            loc: op.loc,
            prev_clock,
            loc_undo,
            prev_sync_clock,
            races_len,
            prev_digest,
        }
    }

    /// Reverses the observation that produced `undo`. Undo records must be
    /// applied in LIFO order (most recent observation first).
    pub fn undo(&mut self, undo: ObserveUndo) {
        self.proc_clock[undo.p] = undo.prev_clock;
        self.races.truncate(undo.races_len);
        if let Some(prev) = undo.prev_sync_clock {
            match prev {
                Some(vc) => {
                    self.sync_clock.insert(undo.loc, vc);
                }
                None => {
                    self.sync_clock.remove(&undo.loc);
                }
            }
        }
        self.history
            .get_mut(&undo.loc)
            .expect("observation touched this location's history")
            .undo(undo.loc_undo);
        self.digest = undo.prev_digest;
    }

    /// The incrementally maintained digest of the detector state.
    ///
    /// Two detectors with equal processor clocks, published sync clocks,
    /// and location histories (races and mode excluded) have equal digests;
    /// unequal states collide with probability ~2⁻⁶⁴ per pair. Maintained in
    /// O(1) extra work by [`RaceDetector::observe_undoable`] and restored
    /// exactly by [`RaceDetector::undo`] — explorers fold it into visited-set
    /// keys without walking the detector.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes [`RaceDetector::state_digest`] from scratch by walking the
    /// full detector state. Exists to validate the incremental maintenance
    /// in tests and audits; O(procs² + locations).
    #[must_use]
    pub fn state_digest_from_scratch(&self) -> u64 {
        let mut d = self
            .proc_clock
            .iter()
            .enumerate()
            .fold(0u64, |acc, (p, c)| acc ^ proc_contrib(p, c));
        for (loc, vc) in &self.sync_clock {
            d ^= sync_contrib(*loc, vc);
        }
        for (loc, hist) in &self.history {
            // Empty histories contribute 0 by construction, so entries left
            // behind by undo (created, then rolled back to empty) cancel.
            d ^= hist_contrib(*loc, hist.digest_from_scratch());
        }
        d
    }

    /// All races reported so far.
    #[must_use]
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Whether no race has been observed.
    #[must_use]
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Runs the detector over a whole execution and reports whether it is
    /// race-free (same verdict as [`crate::drf0::is_data_race_free`]).
    #[must_use]
    pub fn check_execution(exec: &Execution) -> bool {
        RaceDetector::check_execution_with_mode(exec, SyncMode::Drf0)
    }

    /// [`RaceDetector::check_execution`] under an explicit [`SyncMode`].
    #[must_use]
    pub fn check_execution_with_mode(exec: &Execution, mode: SyncMode) -> bool {
        let mut det = RaceDetector::with_mode(procs_of(exec), mode);
        for op in exec.ops() {
            if !det.observe(op).is_empty() {
                return false;
            }
        }
        true
    }
}

fn procs_of(exec: &Execution) -> usize {
    exec.procs().iter().map(|p| p.index() + 1).max().unwrap_or(0)
}

/// Every race of `exec` under `mode`, in observation order — the full
/// dynamic evidence (not just a verdict), so differential harnesses can
/// cross-check a static DRF0 label against the racing operation pairs and
/// print them in a repro.
///
/// # Examples
///
/// ```
/// use memory_model::race::races_of;
/// use memory_model::{Execution, Loc, Operation, OpId, ProcId, SyncMode};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
/// ]).unwrap();
/// let races = races_of(&exec, SyncMode::Drf0);
/// assert_eq!(races.len(), 1);
/// assert_eq!(races[0].loc, Loc(0));
/// ```
#[must_use]
pub fn races_of(exec: &Execution, mode: SyncMode) -> Vec<Race> {
    let mut det = RaceDetector::with_mode(procs_of(exec), mode);
    for op in exec.ops() {
        det.observe(op);
    }
    det.races
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drf0, ProcId};

    fn w(id: u64, p: u16, l: u32) -> Operation {
        Operation::data_write(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn r(id: u64, p: u16, l: u32) -> Operation {
        Operation::data_read(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn s(id: u64, p: u16, l: u32) -> Operation {
        Operation::sync_write(OpId(id), ProcId(p), Loc(l), 1)
    }

    fn sr(id: u64, p: u16, l: u32) -> Operation {
        Operation::sync_read(OpId(id), ProcId(p), Loc(l), 1)
    }

    #[test]
    fn detects_write_read_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        let races = det.observe(&r(1, 1, 0));
        assert_eq!(races, vec![Race { first: OpId(0), second: OpId(1), loc: Loc(0) }]);
        assert!(!det.is_race_free());
    }

    #[test]
    fn detects_write_write_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        assert_eq!(det.observe(&w(1, 1, 0)).len(), 1);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&r(0, 0, 0));
        assert!(det.observe(&r(1, 1, 0)).is_empty());
        assert!(det.is_race_free());
    }

    #[test]
    fn sync_handoff_suppresses_race() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 9));
        assert!(det.observe(&r(3, 1, 0)).is_empty());
    }

    #[test]
    fn sync_on_other_location_does_not_suppress() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 8)); // different sync location
        assert_eq!(det.observe(&r(3, 1, 0)).len(), 1);
    }

    #[test]
    fn same_processor_never_races() {
        let mut det = RaceDetector::new(1);
        det.observe(&w(0, 0, 0));
        assert!(det.observe(&w(1, 0, 0)).is_empty());
        assert!(det.observe(&r(2, 0, 0)).is_empty());
    }

    #[test]
    fn sync_sync_same_location_never_races() {
        let mut det = RaceDetector::new(2);
        det.observe(&s(0, 0, 9));
        assert!(det.observe(&s(1, 1, 9)).is_empty());
    }

    #[test]
    fn sync_data_same_location_races() {
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 9));
        assert_eq!(det.observe(&s(1, 1, 9)).len(), 1);
    }

    #[test]
    fn transitive_handoff_through_third_processor() {
        let mut det = RaceDetector::new(3);
        det.observe(&w(0, 0, 0));
        det.observe(&s(1, 0, 9));
        det.observe(&sr(2, 1, 9));
        det.observe(&s(3, 1, 8));
        det.observe(&sr(4, 2, 8));
        assert!(det.observe(&r(5, 2, 0)).is_empty());
    }

    #[test]
    fn data_write_after_sync_rmw_reports_one_race() {
        // The rmw sits in both the sync-read and sync-write slots; the
        // conflicting data write must report the pair once, not twice.
        let mut det = RaceDetector::new(2);
        det.observe(&Operation::sync_rmw(OpId(0), ProcId(0), Loc(0), 0, 1));
        let races = det.observe(&w(1, 1, 0));
        assert_eq!(races, vec![Race { first: OpId(0), second: OpId(1), loc: Loc(0) }]);
    }

    #[test]
    fn location_state_undo_restores_slots() {
        let mut loc = LocationState::new(2);
        let mut races = Vec::new();
        loc.observe(&w(0, 0, 0), 0, &[0, 0], &mut races);
        let undo = loc.observe(&r(1, 1, 0), 1, &[0, 0], &mut races);
        assert_eq!(races.len(), 1);
        loc.undo(undo);
        races.clear();
        // Replaying the read finds the write again — the slot survived.
        loc.observe(&r(2, 1, 0), 1, &[0, 0], &mut races);
        assert_eq!(races.len(), 1);
        assert!(LocationState::approx_bytes(2) > 0);
    }

    #[test]
    fn check_execution_agrees_with_pairwise_on_examples() {
        let racy = Execution::new(vec![w(0, 0, 0), r(1, 1, 0)]).unwrap();
        let clean = Execution::new(vec![
            w(0, 0, 0),
            s(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
        ])
        .unwrap();
        for exec in [&racy, &clean] {
            assert_eq!(
                RaceDetector::check_execution(exec),
                drf0::is_data_race_free(exec)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_out_of_range_proc() {
        RaceDetector::new(1).observe(&w(0, 5, 0));
    }

    /// Exhaustive undo check: observing then undoing any prefix of an
    /// execution leaves the detector reporting exactly what a fresh
    /// detector would on the shorter prefix.
    #[test]
    fn undo_restores_detector_verdicts() {
        let script = [
            w(0, 0, 0),
            s(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
            w(4, 2, 0), // races with op 0 and op 3
            sr(5, 2, 8),
        ];
        for cut in 0..script.len() {
            let mut det = RaceDetector::new(3);
            for op in &script[..cut] {
                det.observe(op);
            }
            let races_before = det.races().to_vec();
            // Observe the rest undoably, then roll all of it back.
            let undos: Vec<_> =
                script[cut..].iter().map(|op| det.observe_undoable(op)).collect();
            for undo in undos.into_iter().rev() {
                det.undo(undo);
            }
            assert_eq!(det.races(), races_before.as_slice(), "cut at {cut}");
            // Replaying the suffix after the rollback matches a straight run.
            for op in &script[cut..] {
                det.observe(op);
            }
            let mut fresh = RaceDetector::new(3);
            for op in &script {
                fresh.observe(op);
            }
            assert_eq!(det.races(), fresh.races(), "replay after cut {cut}");
        }
    }

    #[test]
    fn undo_restores_release_clocks() {
        // Undoing a releasing sync op must also retract its published
        // clock, or a later acquire would see into the undone future.
        let mut det = RaceDetector::new(2);
        det.observe(&w(0, 0, 0));
        let undo = det.observe_undoable(&s(1, 0, 9));
        det.undo(undo);
        // P1 acquires on loc 9: nothing was (still) published there, so
        // the data read must race.
        det.observe(&sr(2, 1, 9));
        assert_eq!(det.observe(&r(3, 1, 0)).len(), 1);
    }

    #[test]
    fn races_of_returns_the_full_evidence() {
        // Two independent races: W/W on m0, W/R on m1.
        let exec = Execution::new(vec![
            w(0, 0, 0),
            w(1, 1, 0),
            w(2, 0, 1),
            r(3, 1, 1),
        ])
        .unwrap();
        let races = races_of(&exec, crate::SyncMode::Drf0);
        assert_eq!(races.len(), 2);
        assert!(races.contains(&Race { first: OpId(0), second: OpId(1), loc: Loc(0) }));
        assert!(races.contains(&Race { first: OpId(2), second: OpId(3), loc: Loc(1) }));
    }

    #[test]
    fn mode_changes_the_verdict_for_read_only_sync_handoff() {
        // Hand-off through a read-only sync op: releases under DRF0, does
        // not under the Section 6 refinement.
        let exec = Execution::new(vec![
            w(0, 0, 0),
            sr(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
        ])
        .unwrap();
        assert!(RaceDetector::check_execution_with_mode(&exec, crate::SyncMode::Drf0));
        assert!(!RaceDetector::check_execution_with_mode(
            &exec,
            crate::SyncMode::ReleaseWrites
        ));
        assert_eq!(races_of(&exec, crate::SyncMode::ReleaseWrites).len(), 1);
    }

    #[test]
    fn state_digest_matches_scratch_through_observe_and_undo() {
        // Exercises every digest path: data accesses (history slots), sync
        // hand-off (acquire + publish), and a second release on the same
        // location (displacing an already-published clock).
        let script = [
            w(0, 0, 0),
            s(1, 0, 9),
            sr(2, 1, 9),
            r(3, 1, 0),
            s(4, 1, 9), // displaces P0's published clock on loc 9
            w(5, 2, 1),
        ];
        let mut det = RaceDetector::new(3);
        assert_eq!(det.state_digest(), det.state_digest_from_scratch());
        let mut undos = Vec::new();
        let mut trail = vec![det.state_digest()];
        for op in &script {
            undos.push(det.observe_undoable(op));
            assert_eq!(
                det.state_digest(),
                det.state_digest_from_scratch(),
                "incremental digest diverged after {op:?}"
            );
            trail.push(det.state_digest());
        }
        while let Some(undo) = undos.pop() {
            det.undo(undo);
            trail.pop();
            assert_eq!(det.state_digest(), *trail.last().unwrap());
            assert_eq!(det.state_digest(), det.state_digest_from_scratch());
        }
    }

    #[test]
    fn state_digest_separates_states_and_ignores_undone_entries() {
        // Distinct states get distinct digests...
        let mut a = RaceDetector::new(2);
        let mut b = RaceDetector::new(2);
        a.observe(&w(0, 0, 0));
        b.observe(&w(0, 1, 0));
        assert_ne!(a.state_digest(), b.state_digest(), "writer identity");

        // ...and an observe/undo pair leaves the digest equal to a fresh
        // detector's even though `history` retains an empty shell entry
        // for the touched location (empty histories contribute 0).
        let mut det = RaceDetector::new(2);
        let fresh = RaceDetector::new(2).state_digest();
        let undo = det.observe_undoable(&s(0, 0, 9));
        det.undo(undo);
        assert_eq!(det.state_digest(), fresh);
        assert_eq!(det.state_digest(), det.state_digest_from_scratch());
    }

    #[test]
    fn location_state_digest_is_maintained_incrementally() {
        let mut det = RaceDetector::new(2);
        for op in [w(0, 0, 0), r(1, 1, 0), w(2, 1, 0), r(3, 0, 0)] {
            det.observe(&op);
            let hist = &det.history[&Loc(0)];
            assert_eq!(hist.digest(), hist.digest_from_scratch());
        }
    }
}
