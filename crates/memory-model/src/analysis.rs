//! Human-readable analyses of executions: textual reports and Graphviz
//! export of the happens-before relation.

use std::fmt::Write as _;

use crate::drf0;
use crate::hb::{HbRelation, SyncMode};
use crate::{Execution, Memory};

/// A textual report of one idealized execution: the operations in
/// completion order grouped in columns per processor (the layout of the
/// paper's Figure 2), the races, and the DRF0 verdict.
///
/// # Examples
///
/// ```
/// use memory_model::analysis::execution_report;
/// use memory_model::{Execution, Loc, Memory, Operation, OpId, ProcId};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
/// ]).unwrap();
/// let report = execution_report(&exec, &Memory::new());
/// assert!(report.contains("RACY"));
/// ```
#[must_use]
pub fn execution_report(exec: &Execution, initial: &Memory) -> String {
    let mut out = String::new();
    let procs = exec.procs();
    let col = 16usize;

    // Header row.
    for p in &procs {
        let _ = write!(out, "{:<col$}", p.to_string());
    }
    out.push('\n');
    for _ in &procs {
        let _ = write!(out, "{:-<col$}", "");
    }
    out.push('\n');

    // One row per operation, placed in its processor's column — time flows
    // downward, as in Figure 2.
    for op in exec.ops() {
        let idx = procs.iter().position(|&p| p == op.proc).expect("op proc listed");
        let mut cell = format!("{}({})", op.kind, op.loc);
        if let Some(v) = op.read_value {
            let _ = write!(cell, "->{v}");
        }
        if let Some(v) = op.write_value {
            let _ = write!(cell, "={v}");
        }
        for i in 0..procs.len() {
            if i == idx {
                let _ = write!(out, "{cell:<col$}");
            } else {
                let _ = write!(out, "{:<col$}", "");
            }
        }
        out.push('\n');
    }

    let races = drf0::races_in(exec);
    if races.is_empty() {
        out.push_str("\nDRF0: execution is data-race-free\n");
    } else {
        let _ = writeln!(out, "\nDRF0: RACY — {} race(s):", races.len());
        for race in &races {
            let a = exec.op(race.first).expect("race ids come from the execution");
            let b = exec.op(race.second).expect("race ids come from the execution");
            let _ = writeln!(out, "  {a}   vs   {b}");
        }
    }
    match exec.validate_atomic_semantics(initial) {
        Ok(()) => out.push_str("atomic semantics: ok\n"),
        Err(e) => {
            let _ = writeln!(out, "atomic semantics: VIOLATED — {e}");
        }
    }
    out
}

/// Renders the happens-before relation of `exec` as a Graphviz `dot`
/// digraph: one node per operation (clustered by processor), solid edges
/// for covering program order, dashed edges for covering synchronization
/// order, and red double-headed edges for races.
///
/// Pipe the output through `dot -Tsvg` to visualize.
#[must_use]
pub fn hb_to_dot(exec: &Execution, mode: SyncMode) -> String {
    let mut out = String::from("digraph hb {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    let procs = exec.procs();

    for p in &procs {
        let _ = writeln!(out, "  subgraph cluster_{} {{", p.0);
        let _ = writeln!(out, "    label=\"{p}\";");
        for op in exec.ops().iter().filter(|o| o.proc == *p) {
            let mut label = format!("{}({})", op.kind, op.loc);
            if let Some(v) = op.read_value {
                let _ = write!(label, "→{v}");
            }
            if let Some(v) = op.write_value {
                let _ = write!(label, "={v}");
            }
            let _ = writeln!(out, "    n{} [label=\"{label}\"];", op.id.0);
        }
        out.push_str("  }\n");
    }

    // Covering po edges.
    for p in &procs {
        let mut prev = None;
        for op in exec.ops().iter().filter(|o| o.proc == *p) {
            if let Some(prev) = prev {
                let _ = writeln!(out, "  n{prev} -> n{} [color=black];", op.id.0);
            }
            prev = Some(op.id.0);
        }
    }

    // Covering so edges (release rules per mode), cross-processor only.
    let mut last_release: std::collections::HashMap<crate::Loc, &crate::Operation> =
        std::collections::HashMap::new();
    for op in exec.ops() {
        if op.kind.is_sync() {
            if let Some(prev) = last_release.get(&op.loc) {
                if prev.proc != op.proc {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [style=dashed, label=\"so({})\"];",
                        prev.id.0, op.id.0, op.loc
                    );
                }
            }
            let releases = match mode {
                SyncMode::Drf0 => true,
                SyncMode::ReleaseWrites => op.kind.is_write(),
            };
            if releases {
                last_release.insert(op.loc, op);
            }
        }
    }

    // Races.
    let hb = HbRelation::with_mode(exec, mode);
    for race in drf0::races_with(exec, &hb) {
        let _ = writeln!(
            out,
            "  n{} -> n{} [color=red, dir=both, style=bold];",
            race.first.0, race.second.0
        );
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loc, OpId, Operation, ProcId};

    fn racy_exec() -> Execution {
        Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
        ])
        .unwrap()
    }

    fn clean_exec() -> Execution {
        Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_read(OpId(2), ProcId(1), Loc(9), 1),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
        ])
        .unwrap()
    }

    #[test]
    fn report_flags_races_and_semantics() {
        let report = execution_report(&racy_exec(), &Memory::new());
        assert!(report.contains("RACY"));
        assert!(report.contains("atomic semantics: ok"));
        assert!(report.contains("P0"));
        assert!(report.contains("P1"));
    }

    #[test]
    fn report_on_clean_execution() {
        let report = execution_report(&clean_exec(), &Memory::new());
        assert!(report.contains("data-race-free"));
        assert!(report.contains("S.w(m9)=1"));
    }

    #[test]
    fn report_flags_semantics_violations() {
        let broken = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 7), // impossible
        ])
        .unwrap();
        let report = execution_report(&broken, &Memory::new());
        assert!(report.contains("VIOLATED"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = hb_to_dot(&clean_exec(), SyncMode::Drf0);
        assert!(dot.starts_with("digraph hb {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("style=dashed"), "so edge present");
        assert!(!dot.contains("color=red"), "no races in the clean execution");
        assert_eq!(dot.matches("->").count(), 3, "two po edges + one so edge");
    }

    #[test]
    fn dot_marks_races_in_red() {
        let dot = hb_to_dot(&racy_exec(), SyncMode::Drf0);
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn dot_respects_release_writes_mode() {
        // A Test between release and acquire: Drf0 chains through it; the
        // refined mode draws the so edge from the Unset past the Test.
        let exec = Execution::new(vec![
            Operation::sync_write(OpId(0), ProcId(0), Loc(9), 1),
            Operation::sync_read(OpId(1), ProcId(1), Loc(9), 1),
            Operation::sync_rmw(OpId(2), ProcId(2), Loc(9), 1, 1),
        ])
        .unwrap();
        let drf0_dot = hb_to_dot(&exec, SyncMode::Drf0);
        let refined_dot = hb_to_dot(&exec, SyncMode::ReleaseWrites);
        // Drf0: edges 0->1 (release to Test) and 1->2 (Test relays).
        assert!(drf0_dot.contains("n1 -> n2"));
        // Refined: 0->1 and 0->2 (the Unset releases to both; Test relays nothing).
        assert!(refined_dot.contains("n0 -> n2"));
        assert!(!refined_dot.contains("n1 -> n2 [style=dashed"));
    }
}
