//! Sequential-consistency checking (Lamport's definition).
//!
//! Hardware "appears sequentially consistent" (the paper's Definition 2)
//! when the result of its execution — the values returned by reads plus the
//! final memory state — equals the result of *some* execution in which all
//! accesses happen atomically, in a single total order consistent with each
//! processor's program order.
//!
//! [`check_sc`] decides this for an [`Observation`] by searching for a
//! witness total order. The search executes operations against an atomic
//! memory, admitting a read only when memory currently holds the value the
//! read observed, and memoizes visited `(per-processor position, memory)`
//! states. The general problem is NP-hard (Gibbons & Korach), so the search
//! carries an explicit state budget and reports [`ScVerdict::BudgetExhausted`]
//! instead of running away on adversarial inputs; litmus-scale observations
//! finish in microseconds.

use std::collections::HashSet;

use crate::{Memory, Observation, OpId, Value};

/// Configuration for the SC search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScCheckConfig {
    /// Maximum number of distinct search states to visit before giving up.
    pub max_states: usize,
}

impl Default for ScCheckConfig {
    fn default() -> Self {
        ScCheckConfig { max_states: 1_000_000 }
    }
}

/// The outcome of an SC check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScVerdict {
    /// The observation appears sequentially consistent; the payload is a
    /// witness: operation ids in a legal total order.
    Consistent(Vec<OpId>),
    /// No total order consistent with program order explains the
    /// observation.
    Inconsistent,
    /// The state budget ran out before the search completed; the
    /// observation may or may not be SC.
    BudgetExhausted,
}

impl ScVerdict {
    /// Whether the verdict affirms sequential consistency.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        matches!(self, ScVerdict::Consistent(_))
    }
}

/// Decides whether `obs` appears sequentially consistent starting from
/// `initial` memory.
///
/// If the observation records a final memory state
/// ([`Observation::with_final_memory`]), the witness order must also leave
/// memory in that state — Lamport's "result" includes the final state of
/// memory.
///
/// # Examples
///
/// Figure 1 of the paper: the outcome in which both processors read 0 has
/// no sequentially consistent explanation.
///
/// ```
/// use memory_model::sc::{check_sc, ScCheckConfig};
/// use memory_model::{Loc, Memory, Observation, Operation, OpId, ProcId, ThreadTrace};
///
/// let (x, y) = (Loc(0), Loc(1));
/// let obs = Observation::new(vec![
///     ThreadTrace::new(ProcId(0), vec![
///         Operation::data_write(OpId(0), ProcId(0), x, 1),
///         Operation::data_read(OpId(1), ProcId(0), y, 0), // Y == 0
///     ]),
///     ThreadTrace::new(ProcId(1), vec![
///         Operation::data_write(OpId(2), ProcId(1), y, 1),
///         Operation::data_read(OpId(3), ProcId(1), x, 0), // X == 0
///     ]),
/// ]).unwrap();
///
/// let verdict = check_sc(&obs, &Memory::new(), &ScCheckConfig::default());
/// assert!(!verdict.is_consistent()); // P1 and P2 cannot both be killed
/// ```
#[must_use]
pub fn check_sc(obs: &Observation, initial: &Memory, cfg: &ScCheckConfig) -> ScVerdict {
    let threads = obs.threads();
    let mut search = Search {
        obs,
        cfg,
        visited: HashSet::new(),
        witness: Vec::with_capacity(obs.total_ops()),
        budget_hit: false,
    };
    let positions = vec![0usize; threads.len()];
    if search.dfs(&positions, &mut initial.clone()) {
        ScVerdict::Consistent(search.witness)
    } else if search.budget_hit {
        ScVerdict::BudgetExhausted
    } else {
        ScVerdict::Inconsistent
    }
}

/// A search state: per-thread positions plus the memory snapshot reached.
type SearchKey = (Vec<usize>, Vec<(crate::Loc, Value)>);

struct Search<'a> {
    obs: &'a Observation,
    cfg: &'a ScCheckConfig,
    visited: HashSet<SearchKey>,
    witness: Vec<OpId>,
    budget_hit: bool,
}

impl Search<'_> {
    fn dfs(&mut self, positions: &[usize], mem: &mut Memory) -> bool {
        let threads = self.obs.threads();
        if positions
            .iter()
            .zip(threads)
            .all(|(&i, t)| i == t.ops.len())
        {
            // All operations placed; check final memory if observed.
            return match self.obs.final_memory() {
                Some(want) => mem.snapshot() == want,
                None => true,
            };
        }

        let key = (positions.to_vec(), mem.snapshot());
        if !self.visited.insert(key) {
            return false;
        }
        if self.visited.len() > self.cfg.max_states {
            self.budget_hit = true;
            return false;
        }

        for (ti, trace) in threads.iter().enumerate() {
            let i = positions[ti];
            if i == trace.ops.len() {
                continue;
            }
            let op = &trace.ops[i];

            // A read (or the read component of an RMW) can only execute
            // when atomic memory holds the value it observed.
            if let Some(want) = op.read_value {
                if mem.read(op.loc) != want {
                    continue;
                }
            }

            let saved = op.write_value.map(|_| mem.read(op.loc));
            if let Some(v) = op.write_value {
                mem.write(op.loc, v);
            }
            let mut next = positions.to_vec();
            next[ti] += 1;
            self.witness.push(op.id);

            if self.dfs(&next, mem) {
                return true;
            }

            self.witness.pop();
            if let Some(old) = saved {
                mem.write(op.loc, old);
            }
        }
        false
    }
}

/// Convenience wrapper: checks SC with the default configuration and
/// panics on budget exhaustion (appropriate for litmus-scale inputs in
/// tests and examples).
///
/// # Panics
///
/// Panics if the default state budget is exhausted.
#[must_use]
pub fn appears_sc(obs: &Observation, initial: &Memory) -> bool {
    match check_sc(obs, initial, &ScCheckConfig::default()) {
        ScVerdict::Consistent(_) => true,
        ScVerdict::Inconsistent => false,
        ScVerdict::BudgetExhausted => {
            panic!("SC check exhausted its state budget; use check_sc directly")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Execution, Loc, Operation, ProcId, ThreadTrace};

    fn dekker(r0: Value, r1: Value) -> Observation {
        let (x, y) = (Loc(0), Loc(1));
        Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![
                    Operation::data_write(OpId(0), ProcId(0), x, 1),
                    Operation::data_read(OpId(1), ProcId(0), y, r0),
                ],
            ),
            ThreadTrace::new(
                ProcId(1),
                vec![
                    Operation::data_write(OpId(2), ProcId(1), y, 1),
                    Operation::data_read(OpId(3), ProcId(1), x, r1),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn dekker_00_is_not_sc() {
        assert_eq!(
            check_sc(&dekker(0, 0), &Memory::new(), &ScCheckConfig::default()),
            ScVerdict::Inconsistent
        );
        assert!(!appears_sc(&dekker(0, 0), &Memory::new()));
    }

    #[test]
    fn dekker_other_outcomes_are_sc() {
        for (a, b) in [(0, 1), (1, 0), (1, 1)] {
            assert!(
                appears_sc(&dekker(a, b), &Memory::new()),
                "({a},{b}) should be SC"
            );
        }
    }

    #[test]
    fn witness_is_a_legal_total_order() {
        let obs = dekker(1, 0);
        let ScVerdict::Consistent(witness) =
            check_sc(&obs, &Memory::new(), &ScCheckConfig::default())
        else {
            panic!("expected consistent");
        };
        assert_eq!(witness.len(), 4);
        // Replaying the witness must satisfy atomic semantics.
        let ordered: Vec<Operation> = witness
            .iter()
            .map(|&id| *obs.op(id).expect("witness ids come from obs"))
            .collect();
        let exec = Execution::new(ordered).unwrap();
        assert!(exec.validate_atomic_semantics(&Memory::new()).is_ok());
        // Program order must be respected.
        let pos0 = witness.iter().position(|&i| i == OpId(0)).unwrap();
        let pos1 = witness.iter().position(|&i| i == OpId(1)).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn empty_observation_is_sc() {
        let obs = Observation::new(vec![]).unwrap();
        assert!(appears_sc(&obs, &Memory::new()));
    }

    #[test]
    fn final_memory_constrains_witness() {
        // Two writes to the same location; final memory decides the order.
        let obs = Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![Operation::data_write(OpId(0), ProcId(0), Loc(0), 1)],
            ),
            ThreadTrace::new(
                ProcId(1),
                vec![Operation::data_write(OpId(1), ProcId(1), Loc(0), 2)],
            ),
        ])
        .unwrap();
        let with_1 = obs.clone().with_final_memory(vec![(Loc(0), 1)]);
        let with_2 = obs.clone().with_final_memory(vec![(Loc(0), 2)]);
        let with_3 = obs.with_final_memory(vec![(Loc(0), 3)]);
        assert!(appears_sc(&with_1, &Memory::new()));
        assert!(appears_sc(&with_2, &Memory::new()));
        assert!(!appears_sc(&with_3, &Memory::new()));
    }

    #[test]
    fn rmw_atomicity_is_enforced() {
        // Two TestAndSets on a free lock cannot both read 0.
        let obs = Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![Operation::sync_rmw(OpId(0), ProcId(0), Loc(0), 0, 1)],
            ),
            ThreadTrace::new(
                ProcId(1),
                vec![Operation::sync_rmw(OpId(1), ProcId(1), Loc(0), 0, 1)],
            ),
        ])
        .unwrap();
        assert!(!appears_sc(&obs, &Memory::new()));
    }

    #[test]
    fn initial_memory_is_respected() {
        let obs = Observation::new(vec![ThreadTrace::new(
            ProcId(0),
            vec![Operation::data_read(OpId(0), ProcId(0), Loc(0), 7)],
        )])
        .unwrap();
        let mut init = Memory::new();
        assert!(!appears_sc(&obs, &init));
        init.write(Loc(0), 7);
        assert!(appears_sc(&obs, &init));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Many independent writes to distinct locations: the state space is
        // the product of thread positions; a budget of 1 must trip.
        let threads: Vec<ThreadTrace> = (0..4u16)
            .map(|p| {
                ThreadTrace::new(
                    ProcId(p),
                    (0..4u32)
                        .map(|i| {
                            Operation::data_write(
                                OpId(u64::from(p) * 4 + u64::from(i)),
                                ProcId(p),
                                Loc(u32::from(p) * 4 + i),
                                1,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let obs = Observation::new(threads).unwrap();
        let verdict = check_sc(&obs, &Memory::new(), &ScCheckConfig { max_states: 1 });
        assert_eq!(verdict, ScVerdict::BudgetExhausted);
        assert!(!verdict.is_consistent());
    }

    #[test]
    fn coherence_violation_is_not_sc() {
        // P0 writes x twice (1 then 2); P1 reads 2 then 1 — no total order
        // can explain reading the older value after the newer one.
        let obs = Observation::new(vec![
            ThreadTrace::new(
                ProcId(0),
                vec![
                    Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
                    Operation::data_write(OpId(1), ProcId(0), Loc(0), 2),
                ],
            ),
            ThreadTrace::new(
                ProcId(1),
                vec![
                    Operation::data_read(OpId(2), ProcId(1), Loc(0), 2),
                    Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
                ],
            ),
        ])
        .unwrap();
        assert!(!appears_sc(&obs, &Memory::new()));
    }
}
