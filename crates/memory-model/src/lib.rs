//! # memory-model — the formal machinery of Adve & Hill's DRF0
//!
//! This crate is an executable rendering of the formalism in Sections 3–4
//! and Appendix A of *"Weak Ordering — A New Definition"* (ISCA 1990):
//!
//! * [`Operation`]s — data reads/writes and hardware-recognizable
//!   synchronization operations accessing a single memory location
//!   (the paper's DRF0 restriction),
//! * [`Execution`] — a totally ordered execution on the *idealized
//!   architecture* where every access is atomic and in program order,
//! * program order `po`, synchronization order `so`, and the
//!   **happens-before** relation `hb = (po ∪ so)⁺` ([`hb`], [`vc`]),
//! * the **DRF0** synchronization model (Definition 3): every pair of
//!   conflicting accesses must be ordered by happens-before ([`drf0`]),
//! * a streaming vector-clock **data-race detector** ([`race`]),
//! * a **sequential-consistency checker** (Lamport's definition) over
//!   per-processor observations ([`sc`]), and
//! * the **Lemma 1 oracle** ([`lemma1`]): reads return the value of the
//!   hb-last write — the paper's necessary-and-sufficient condition for
//!   weak ordering with respect to DRF0.
//!
//! # Examples
//!
//! Detect the data race in Figure 2(b) of the paper:
//!
//! ```
//! use memory_model::{Execution, Loc, Operation, OpId, ProcId};
//! use memory_model::drf0;
//!
//! let x = Loc(0);
//! // P0 writes x; P1 writes x concurrently — no intervening synchronization.
//! let exec = Execution::new(vec![
//!     Operation::data_write(OpId(0), ProcId(0), x, 1),
//!     Operation::data_write(OpId(1), ProcId(1), x, 2),
//! ]).unwrap();
//!
//! let races = drf0::races_in(&exec);
//! assert_eq!(races.len(), 1);
//! assert!(!drf0::is_data_race_free(&exec));
//! ```

#![deny(missing_docs)]

mod execution;
mod ids;
mod memory;
mod observation;
mod op;

pub mod analysis;
pub mod drf0;
pub mod drf1;
pub mod hb;
pub mod lemma1;
pub mod race;
pub mod sc;
pub mod vc;

pub use execution::{Execution, ExecutionError, ExecutionResult, SemanticsViolation};
pub use ids::{Loc, OpId, ProcId, Value};
pub use memory::Memory;
pub use observation::{Observation, ObservationError, ThreadTrace};
pub use hb::SyncMode;
pub use op::{OpKind, Operation};
