//! Memory operations: data accesses and synchronization operations.

use std::fmt;

use crate::{Loc, OpId, ProcId, Value};

/// The kind of a memory operation.
///
/// Following the conventions of Section 5 of the paper, *reads* include
/// data reads, read-only synchronization operations (e.g. `Test`), and the
/// read component of read-write synchronization operations; *writes*
/// include data writes, write-only synchronization operations (e.g.
/// `Unset`), and the write component of read-write synchronization
/// operations (e.g. `TestAndSet`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An ordinary (data) read.
    DataRead,
    /// An ordinary (data) write.
    DataWrite,
    /// A read-only synchronization operation (the paper's `Test`).
    SyncRead,
    /// A write-only synchronization operation (the paper's `Unset`/`Set`).
    SyncWrite,
    /// A read-modify-write synchronization operation (the paper's
    /// `TestAndSet`); its read and write components execute atomically.
    SyncRmw,
}

impl OpKind {
    /// Whether the operation has a read component.
    #[must_use]
    pub const fn is_read(self) -> bool {
        matches!(self, OpKind::DataRead | OpKind::SyncRead | OpKind::SyncRmw)
    }

    /// Whether the operation has a write component.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, OpKind::DataWrite | OpKind::SyncWrite | OpKind::SyncRmw)
    }

    /// Whether the operation is a synchronization operation (recognizable
    /// by the hardware, per DRF0 restriction 1).
    #[must_use]
    pub const fn is_sync(self) -> bool {
        matches!(self, OpKind::SyncRead | OpKind::SyncWrite | OpKind::SyncRmw)
    }

    /// Whether the operation is an ordinary data access.
    #[must_use]
    pub const fn is_data(self) -> bool {
        !self.is_sync()
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::DataRead => "R",
            OpKind::DataWrite => "W",
            OpKind::SyncRead => "S.r",
            OpKind::SyncWrite => "S.w",
            OpKind::SyncRmw => "S.rw",
        };
        f.write_str(s)
    }
}

/// One memory operation in an execution.
///
/// An operation accesses exactly one location (`loc`) — the paper's DRF0
/// restriction 2 — and records the value its read component returned
/// (`read_value`) and/or the value its write component stored
/// (`write_value`).
///
/// # Examples
///
/// ```
/// use memory_model::{Loc, OpId, Operation, ProcId};
///
/// let w = Operation::data_write(OpId(0), ProcId(0), Loc(1), 42);
/// let r = Operation::data_read(OpId(1), ProcId(1), Loc(1), 42);
/// assert!(w.conflicts_with(&r)); // same location, not both reads
///
/// let r2 = Operation::data_read(OpId(2), ProcId(2), Loc(1), 42);
/// assert!(!r.conflicts_with(&r2)); // two reads never conflict
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Unique identifier within the containing execution.
    pub id: OpId,
    /// The processor that initiated the operation.
    pub proc: ProcId,
    /// What kind of operation this is.
    pub kind: OpKind,
    /// The single memory location accessed.
    pub loc: Loc,
    /// The value returned by the read component, if any.
    pub read_value: Option<Value>,
    /// The value stored by the write component, if any.
    pub write_value: Option<Value>,
}

impl Operation {
    /// Creates a data read that returned `value`.
    #[must_use]
    pub fn data_read(id: OpId, proc: ProcId, loc: Loc, value: Value) -> Self {
        Operation {
            id,
            proc,
            kind: OpKind::DataRead,
            loc,
            read_value: Some(value),
            write_value: None,
        }
    }

    /// Creates a data write that stored `value`.
    #[must_use]
    pub fn data_write(id: OpId, proc: ProcId, loc: Loc, value: Value) -> Self {
        Operation {
            id,
            proc,
            kind: OpKind::DataWrite,
            loc,
            read_value: None,
            write_value: Some(value),
        }
    }

    /// Creates a read-only synchronization operation (`Test`) that returned
    /// `value`.
    #[must_use]
    pub fn sync_read(id: OpId, proc: ProcId, loc: Loc, value: Value) -> Self {
        Operation {
            id,
            proc,
            kind: OpKind::SyncRead,
            loc,
            read_value: Some(value),
            write_value: None,
        }
    }

    /// Creates a write-only synchronization operation (`Unset`/`Set`) that
    /// stored `value`.
    #[must_use]
    pub fn sync_write(id: OpId, proc: ProcId, loc: Loc, value: Value) -> Self {
        Operation {
            id,
            proc,
            kind: OpKind::SyncWrite,
            loc,
            read_value: None,
            write_value: Some(value),
        }
    }

    /// Creates a read-modify-write synchronization operation
    /// (`TestAndSet`) that read `read_value` and stored `write_value`
    /// atomically.
    #[must_use]
    pub fn sync_rmw(
        id: OpId,
        proc: ProcId,
        loc: Loc,
        read_value: Value,
        write_value: Value,
    ) -> Self {
        Operation {
            id,
            proc,
            kind: OpKind::SyncRmw,
            loc,
            read_value: Some(read_value),
            write_value: Some(write_value),
        }
    }

    /// Whether this operation *conflicts* with `other`: they access the
    /// same location and they are not both reads (the paper's Section 4
    /// definition).
    #[must_use]
    pub fn conflicts_with(&self, other: &Operation) -> bool {
        self.loc == other.loc && (self.kind.is_write() || other.kind.is_write())
    }

    /// Whether both operations are synchronization operations on the same
    /// location — the pairs related by synchronization order `so`.
    #[must_use]
    pub fn so_related(&self, other: &Operation) -> bool {
        self.loc == other.loc && self.kind.is_sync() && other.kind.is_sync()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}({})", self.proc, self.kind, self.loc)?;
        if let Some(v) = self.read_value {
            write!(f, "->{v}")?;
        }
        if let Some(v) = self.write_value {
            write!(f, "={v}")?;
        }
        write!(f, " {}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> (Operation, Operation, Operation, Operation, Operation) {
        let l = Loc(0);
        (
            Operation::data_read(OpId(0), ProcId(0), l, 0),
            Operation::data_write(OpId(1), ProcId(1), l, 1),
            Operation::sync_read(OpId(2), ProcId(0), l, 0),
            Operation::sync_write(OpId(3), ProcId(1), l, 1),
            Operation::sync_rmw(OpId(4), ProcId(2), l, 0, 1),
        )
    }

    #[test]
    fn kind_predicates() {
        assert!(OpKind::DataRead.is_read() && !OpKind::DataRead.is_write());
        assert!(OpKind::DataWrite.is_write() && !OpKind::DataWrite.is_read());
        assert!(OpKind::SyncRmw.is_read() && OpKind::SyncRmw.is_write());
        assert!(OpKind::SyncRead.is_sync() && !OpKind::SyncRead.is_data());
        assert!(OpKind::DataRead.is_data());
    }

    #[test]
    fn conflicts_require_a_write() {
        let (r, w, sr, sw, rmw) = ops();
        assert!(!r.conflicts_with(&sr), "two reads never conflict");
        assert!(r.conflicts_with(&w));
        assert!(w.conflicts_with(&w.clone()));
        assert!(sr.conflicts_with(&sw));
        assert!(rmw.conflicts_with(&r));
    }

    #[test]
    fn conflicts_require_same_location() {
        let w0 = Operation::data_write(OpId(0), ProcId(0), Loc(0), 1);
        let w1 = Operation::data_write(OpId(1), ProcId(1), Loc(1), 1);
        assert!(!w0.conflicts_with(&w1));
    }

    #[test]
    fn so_related_only_for_sync_pairs() {
        let (r, _, sr, sw, rmw) = ops();
        assert!(sr.so_related(&sw));
        assert!(sw.so_related(&rmw));
        assert!(!r.so_related(&sr), "data ops are never so-related");
        let far = Operation::sync_write(OpId(9), ProcId(0), Loc(9), 1);
        assert!(!sw.so_related(&far), "different locations are not so-related");
    }

    #[test]
    fn constructors_fill_values() {
        let (r, w, _, _, rmw) = ops();
        assert_eq!(r.read_value, Some(0));
        assert_eq!(r.write_value, None);
        assert_eq!(w.write_value, Some(1));
        assert_eq!(rmw.read_value, Some(0));
        assert_eq!(rmw.write_value, Some(1));
    }

    #[test]
    fn display_is_informative() {
        let (_, w, _, _, rmw) = ops();
        assert_eq!(w.to_string(), "P1 W(m0)=1 #1");
        assert_eq!(rmw.to_string(), "P2 S.rw(m0)->0=1 #4");
    }
}
