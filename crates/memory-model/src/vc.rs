//! Vector clocks: an O(n·p) alternative representation of happens-before.
//!
//! [`crate::hb::HbRelation`] materializes `hb` as an O(n²/64) reachability
//! matrix; vector clocks compute the same relation in one forward pass with
//! O(p) state per operation. The two implementations cross-check each other
//! in tests and are compared in the `hb_ablation` benchmark.

use std::collections::HashMap;
use std::fmt;

use crate::hb::SyncMode;
use crate::{Execution, OpId, ProcId};

/// A vector clock over the processors of an execution.
///
/// # Examples
///
/// ```
/// use memory_model::vc::VectorClock;
///
/// let mut a = VectorClock::new(2);
/// let mut b = VectorClock::new(2);
/// a.tick(0);
/// b.join(&a);
/// b.tick(1);
/// assert!(a.le(&b));
/// assert!(!b.le(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<u32>,
}

impl VectorClock {
    /// Creates a zero clock over `num_procs` processors.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        VectorClock { components: vec![0; num_procs] }
    }

    /// Increments the component of processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn tick(&mut self, proc: usize) {
        self.components[proc] += 1;
    }

    /// Component-wise maximum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different widths.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "joining clocks of different widths"
        );
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ≤ other` component-wise.
    #[must_use]
    pub fn le(&self, other: &VectorClock) -> bool {
        self.components
            .iter()
            .zip(&other.components)
            .all(|(a, b)| a <= b)
    }

    /// The component of processor `proc`.
    #[must_use]
    pub fn component(&self, proc: usize) -> u32 {
        self.components[proc]
    }

    /// Number of processors the clock spans.
    #[must_use]
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// The raw components, indexed by processor.
    ///
    /// Flat access exists for consumers that keep clock *snapshots* in
    /// their own storage (the streaming checker's per-batch arena) and
    /// race-check against them without materializing a `VectorClock` per
    /// event.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.components
    }

    /// A 64-bit position-sensitive hash of the clock under `seed`.
    ///
    /// This is the undo-coupled hashing hook for explorers that fold
    /// detector state into an incrementally maintained state digest (see
    /// [`crate::race::RaceDetector::state_digest`]): O(width), no
    /// allocation, and distinct seeds give independent hash functions so
    /// multi-lane digests can reuse one clock walk per lane.
    #[must_use]
    pub fn fingerprint(&self, seed: u64) -> u64 {
        let mut h = mix(seed);
        for &c in &self.components {
            h = mix(h ^ u64::from(c) ^ seed);
        }
        h
    }
}

/// SplitMix64 finalizer — the workspace's standard cheap 64-bit mixer.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// Happens-before computed by vector clocks: assigns each operation a
/// timestamp such that `a hb b` iff `ts(a)[proc(a)] ≤ ts(b)[proc(a)]` and
/// `a ≠ b`.
#[derive(Debug, Clone)]
pub struct VcHb {
    timestamps: HashMap<OpId, (usize, VectorClock)>,
}

impl VcHb {
    /// Computes timestamps for every operation in `exec` in one forward
    /// pass, under [`SyncMode::Drf0`].
    ///
    /// Each processor carries a clock; a synchronization operation on
    /// location `s` first joins the clock stored at `s` (acquiring every
    /// earlier synchronization on `s`, which is what `so` provides), then
    /// publishes its updated clock back to `s` (releasing to later ones).
    #[must_use]
    pub fn from_execution(exec: &Execution) -> Self {
        Self::with_mode(exec, SyncMode::Drf0)
    }

    /// Computes timestamps under the given [`SyncMode`]: in
    /// [`SyncMode::ReleaseWrites`] only writing synchronization operations
    /// publish their clock (read-only ones acquire but do not release).
    #[must_use]
    pub fn with_mode(exec: &Execution, mode: SyncMode) -> Self {
        let procs = exec.procs();
        let proc_index: HashMap<ProcId, usize> =
            procs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let width = procs.len();

        let mut proc_clock: Vec<VectorClock> =
            vec![VectorClock::new(width); width];
        let mut sync_clock: HashMap<crate::Loc, VectorClock> = HashMap::new();
        let mut timestamps = HashMap::with_capacity(exec.len());

        for op in exec.ops() {
            let p = proc_index[&op.proc];
            if op.kind.is_sync() {
                if let Some(sc) = sync_clock.get(&op.loc) {
                    proc_clock[p].join(sc);
                }
            }
            proc_clock[p].tick(p);
            timestamps.insert(op.id, (p, proc_clock[p].clone()));
            let releases = op.kind.is_sync()
                && match mode {
                    SyncMode::Drf0 => true,
                    SyncMode::ReleaseWrites => op.kind.is_write(),
                };
            if releases {
                sync_clock.insert(op.loc, proc_clock[p].clone());
            }
        }

        VcHb { timestamps }
    }

    /// Whether `a` happens-before `b`. Unknown ids are unordered.
    #[must_use]
    pub fn happens_before(&self, a: OpId, b: OpId) -> bool {
        if a == b {
            return false;
        }
        match (self.timestamps.get(&a), self.timestamps.get(&b)) {
            (Some((pa, ta)), Some((_, tb))) => {
                ta.component(*pa) <= tb.component(*pa)
            }
            _ => false,
        }
    }

    /// Whether `a` and `b` are ordered in either direction.
    #[must_use]
    pub fn ordered(&self, a: OpId, b: OpId) -> bool {
        self.happens_before(a, b) || self.happens_before(b, a)
    }

    /// The timestamp assigned to `id`, if present.
    #[must_use]
    pub fn timestamp(&self, id: OpId) -> Option<&VectorClock> {
        self.timestamps.get(&id).map(|(_, ts)| ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::HbRelation;
    use crate::{Loc, Operation, ProcId};

    #[test]
    fn clock_basics() {
        let mut a = VectorClock::new(3);
        assert_eq!(a.width(), 3);
        a.tick(1);
        assert_eq!(a.component(1), 1);
        assert_eq!(a.to_string(), "⟨0,1,0⟩");
        let zero = VectorClock::new(3);
        assert!(zero.le(&a));
        assert!(!a.le(&zero));
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn join_rejects_width_mismatch() {
        VectorClock::new(2).join(&VectorClock::new(3));
    }

    #[test]
    fn concurrent_clocks_are_incomparable() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a));
    }

    #[test]
    fn fingerprint_is_positional_and_seeded() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        // ⟨1,0⟩ and ⟨0,1⟩ must not collide: position matters.
        assert_ne!(a.fingerprint(7), b.fingerprint(7));
        // Distinct seeds give distinct hash functions.
        assert_ne!(a.fingerprint(7), a.fingerprint(8));
        // Deterministic, and equal clocks agree.
        let mut c = VectorClock::new(2);
        c.tick(0);
        assert_eq!(a.fingerprint(7), c.fingerprint(7));
    }

    fn paper_chain() -> Execution {
        let x = Loc(0);
        let s = Loc(1);
        let t = Loc(2);
        Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(1), x, 1),
            Operation::sync_write(OpId(1), ProcId(1), s, 1),
            Operation::sync_rmw(OpId(2), ProcId(2), s, 1, 2),
            Operation::sync_write(OpId(3), ProcId(2), t, 1),
            Operation::sync_rmw(OpId(4), ProcId(3), t, 1, 2),
            Operation::data_read(OpId(5), ProcId(3), x, 1),
        ])
        .unwrap()
    }

    #[test]
    fn vc_matches_paper_chain() {
        let hb = VcHb::from_execution(&paper_chain());
        assert!(hb.happens_before(OpId(0), OpId(5)));
        assert!(!hb.happens_before(OpId(5), OpId(0)));
        assert!(!hb.happens_before(OpId(0), OpId(0)), "irreflexive");
    }

    #[test]
    fn vc_agrees_with_matrix_on_paper_chain() {
        let exec = paper_chain();
        let vc = VcHb::from_execution(&exec);
        let mx = HbRelation::from_execution(&exec);
        for a in exec.ops() {
            for b in exec.ops() {
                assert_eq!(
                    vc.happens_before(a.id, b.id),
                    mx.happens_before(a.id, b.id),
                    "disagreement on ({}, {})",
                    a.id,
                    b.id
                );
            }
        }
    }

    #[test]
    fn unknown_ids_unordered() {
        let hb = VcHb::from_execution(&paper_chain());
        assert!(!hb.happens_before(OpId(0), OpId(42)));
        assert!(hb.timestamp(OpId(42)).is_none());
        assert!(hb.timestamp(OpId(0)).is_some());
    }

    #[test]
    fn data_accesses_alone_never_synchronize() {
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
        ])
        .unwrap();
        let hb = VcHb::from_execution(&exec);
        assert!(!hb.ordered(OpId(0), OpId(1)));
    }
}
