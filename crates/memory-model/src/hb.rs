//! The happens-before relation `hb = (po ∪ so)⁺`.
//!
//! For an execution on the idealized architecture the paper defines
//! (Section 4):
//!
//! * `op1 po op2` iff `op1` occurs before `op2` in program order of some
//!   process;
//! * `op1 so op2` iff both are synchronization operations accessing the
//!   same location and `op1` completes before `op2`;
//! * `hb` is the irreflexive transitive closure of `po ∪ so`.
//!
//! [`HbRelation`] materializes `hb` as a reachability bit-matrix so that
//! [`HbRelation::happens_before`] is O(1). Because both `po` and `so` edges
//! always point forward in completion order, the completion order is a
//! topological order and the closure is computed in a single backward scan.

use std::collections::HashMap;

use crate::{Execution, OpId};

/// A materialized happens-before relation for one idealized execution.
///
/// # Examples
///
/// ```
/// use memory_model::{Execution, Loc, Operation, OpId, ProcId};
/// use memory_model::hb::HbRelation;
///
/// // P1: W(x) ; S(s)        P2: S(s) ; R(x)   — the paper's ordering chain.
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(1), Loc(0), 1),
///     Operation::sync_write(OpId(1), ProcId(1), Loc(9), 1),
///     Operation::sync_rmw(OpId(2), ProcId(2), Loc(9), 1, 1),
///     Operation::data_read(OpId(3), ProcId(2), Loc(0), 1),
/// ])?;
/// let hb = HbRelation::from_execution(&exec);
/// assert!(hb.happens_before(OpId(0), OpId(3))); // W(x) hb R(x) via S(s)
/// assert!(!hb.happens_before(OpId(3), OpId(0)));
/// # Ok::<(), memory_model::ExecutionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HbRelation {
    /// `reach[i]` holds a bitset over operation positions strictly
    /// hb-after operation `i`.
    reach: Vec<BitRow>,
    index: HashMap<OpId, usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct BitRow(Vec<u64>);

impl BitRow {
    fn new(n: usize) -> Self {
        BitRow(vec![0; n.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitRow) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn count(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Which synchronization operations *release* — carry their processor's
/// earlier accesses across a synchronization-order edge.
///
/// [`SyncMode::Drf0`] is Definition 3: every synchronization operation on
/// a location releases to every later one. [`SyncMode::ReleaseWrites`]
/// is the Section 6 refinement: "a processor cannot use a read-only
/// synchronization operation to order its previous accesses with respect
/// to subsequent synchronization operations of other processors" — only
/// operations with a write component release. (The synchronization
/// operations *themselves* stay totally ordered per location in both
/// modes; the mode only changes what their edges carry.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncMode {
    /// Definition 3's DRF0: any synchronization operation releases.
    #[default]
    Drf0,
    /// Section 6's refinement (DRF1-style): only writing synchronization
    /// operations release.
    ReleaseWrites,
}

impl HbRelation {
    /// Computes `hb = (po ∪ so)⁺` for an idealized execution, under
    /// [`SyncMode::Drf0`].
    ///
    /// Direct edges are the *covering* edges of `po` (each operation to the
    /// next operation of the same processor) and of `so` (each
    /// synchronization operation to the next synchronization operation on
    /// the same location); transitivity recovers the full relations.
    #[must_use]
    pub fn from_execution(exec: &Execution) -> Self {
        Self::with_mode(exec, SyncMode::Drf0)
    }

    /// Computes happens-before under the given [`SyncMode`].
    ///
    /// Under [`SyncMode::ReleaseWrites`], an edge runs from the last
    /// *writing* synchronization operation on a location to each later
    /// synchronization operation on it; read-only synchronization
    /// operations acquire but do not relay.
    #[must_use]
    pub fn with_mode(exec: &Execution, mode: SyncMode) -> Self {
        let n = exec.len();
        let ops = exec.ops();
        let mut index = HashMap::with_capacity(n);
        for (i, op) in ops.iter().enumerate() {
            index.insert(op.id, i);
        }

        // successors[i]: the covering po/so successors of position i.
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_of_proc: HashMap<crate::ProcId, usize> = HashMap::new();
        // Drf0: the last sync op per location (the chain covers so).
        // ReleaseWrites: the last *writing* sync op per location; it must
        // edge to every later sync until the next writing one, because
        // read-only ops do not relay.
        let mut last_release_on: HashMap<crate::Loc, usize> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let Some(&prev) = last_of_proc.get(&op.proc) {
                successors[prev].push(i);
            }
            last_of_proc.insert(op.proc, i);
            if op.kind.is_sync() {
                if let Some(&prev) = last_release_on.get(&op.loc) {
                    if ops[prev].proc != op.proc {
                        // Same-processor so edges are subsumed by po.
                        successors[prev].push(i);
                    }
                }
                let releases = match mode {
                    SyncMode::Drf0 => true,
                    SyncMode::ReleaseWrites => op.kind.is_write(),
                };
                if releases {
                    last_release_on.insert(op.loc, i);
                }
            }
        }

        // Completion order is topological (all edges go forward), so one
        // backward pass computes reachability.
        let mut reach = vec![BitRow::new(n); n];
        for i in (0..n).rev() {
            // Split the slice so we can borrow reach[j] while mutating
            // reach[i] (j > i always holds).
            let (head, tail) = reach.split_at_mut(i + 1);
            let row = &mut head[i];
            for &j in &successors[i] {
                row.set(j);
                row.union_with(&tail[j - i - 1]);
            }
        }

        HbRelation { reach, index }
    }

    /// Whether `a` happens-before `b`.
    ///
    /// Returns `false` if either id is absent (an unknown operation is
    /// unordered with everything) or if `a == b` (`hb` is irreflexive).
    #[must_use]
    pub fn happens_before(&self, a: OpId, b: OpId) -> bool {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&i), Some(&j)) => self.reach[i].get(j),
            _ => false,
        }
    }

    /// Whether `a` and `b` are ordered by `hb` in either direction.
    #[must_use]
    pub fn ordered(&self, a: OpId, b: OpId) -> bool {
        self.happens_before(a, b) || self.happens_before(b, a)
    }

    /// Number of operations in the underlying execution.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reach.len()
    }

    /// Whether the relation covers no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reach.is_empty()
    }

    /// Total number of ordered pairs — useful for ablation comparisons.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.reach.iter().map(BitRow::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loc, Operation, ProcId};

    fn exec(ops: Vec<Operation>) -> Execution {
        Execution::new(ops).unwrap()
    }

    #[test]
    fn program_order_is_hb() {
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(1), 2),
            Operation::data_write(OpId(2), ProcId(0), Loc(2), 3),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(hb.happens_before(OpId(0), OpId(1)));
        assert!(hb.happens_before(OpId(0), OpId(2)), "po is transitive");
        assert!(!hb.happens_before(OpId(1), OpId(0)));
        assert!(!hb.happens_before(OpId(0), OpId(0)), "hb is irreflexive");
    }

    #[test]
    fn unsynchronized_cross_processor_ops_are_unordered() {
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(1), Loc(0), 2),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(!hb.ordered(OpId(0), OpId(1)));
    }

    #[test]
    fn sync_chain_orders_across_processors() {
        // The paper's example chain:
        // op(P1,x) po S(P1,s) so S(P2,s) po S(P2,t) so S(P3,t) po op(P3,x)
        let x = Loc(0);
        let s = Loc(1);
        let t = Loc(2);
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(1), x, 1),
            Operation::sync_write(OpId(1), ProcId(1), s, 1),
            Operation::sync_rmw(OpId(2), ProcId(2), s, 1, 2),
            Operation::sync_write(OpId(3), ProcId(2), t, 1),
            Operation::sync_rmw(OpId(4), ProcId(3), t, 1, 2),
            Operation::data_read(OpId(5), ProcId(3), x, 1),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(hb.happens_before(OpId(0), OpId(5)), "paper's chain example");
        assert!(hb.happens_before(OpId(1), OpId(4)));
        assert!(!hb.happens_before(OpId(5), OpId(0)));
    }

    #[test]
    fn sync_on_different_locations_does_not_order() {
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(1), 1),
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(2), 0, 1), // different sync loc
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 0),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(!hb.ordered(OpId(0), OpId(3)));
    }

    #[test]
    fn so_orders_only_sync_ops() {
        // Data accesses to the same location do NOT create so edges.
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(!hb.ordered(OpId(0), OpId(1)));
    }

    #[test]
    fn unknown_ids_are_unordered() {
        let e = exec(vec![Operation::data_write(OpId(0), ProcId(0), Loc(0), 1)]);
        let hb = HbRelation::from_execution(&e);
        assert!(!hb.happens_before(OpId(0), OpId(99)));
        assert!(!hb.happens_before(OpId(99), OpId(0)));
    }

    #[test]
    fn empty_execution() {
        let hb = HbRelation::from_execution(&exec(vec![]));
        assert!(hb.is_empty());
        assert_eq!(hb.len(), 0);
        assert_eq!(hb.edge_count(), 0);
    }

    #[test]
    fn edge_count_counts_ordered_pairs() {
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(1), 2),
            Operation::data_write(OpId(2), ProcId(0), Loc(2), 3),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert_eq!(hb.edge_count(), 3); // (0,1), (0,2), (1,2)
    }

    #[test]
    fn three_processor_transitivity_through_two_sync_locations() {
        // P0 syncs with P1 on s; P1 syncs with P2 on t; P0's write is
        // ordered before P2's read even though they never share a sync loc.
        let e = exec(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 7),
            Operation::sync_write(OpId(1), ProcId(0), Loc(10), 1),
            Operation::sync_read(OpId(2), ProcId(1), Loc(10), 1),
            Operation::sync_write(OpId(3), ProcId(1), Loc(11), 1),
            Operation::sync_read(OpId(4), ProcId(2), Loc(11), 1),
            Operation::data_read(OpId(5), ProcId(2), Loc(0), 7),
        ]);
        let hb = HbRelation::from_execution(&e);
        assert!(hb.happens_before(OpId(0), OpId(5)));
    }
}
