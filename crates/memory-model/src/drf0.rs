//! The Data-Race-Free-0 synchronization model (Definition 3).
//!
//! A program obeys DRF0 iff (1) all synchronization operations are
//! hardware-recognizable and access exactly one location — guaranteed here
//! by construction of [`Operation`] — and (2) for **any** execution on the
//! idealized architecture, all conflicting accesses are ordered by the
//! happens-before relation of that execution.
//!
//! This module checks condition (2) for a *single* execution. Checking a
//! whole *program* requires quantifying over all idealized executions;
//! that enumeration lives in the `litmus` crate, and the program-level
//! verdict in the `weakord` crate.

use std::error::Error;
use std::fmt;

use crate::hb::HbRelation;
use crate::{Execution, Loc, OpId, Operation};

/// A pair of conflicting accesses not ordered by happens-before: a data
/// race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Race {
    /// The conflicting access that completed first in the execution.
    pub first: OpId,
    /// The conflicting access that completed second.
    pub second: OpId,
    /// The location both accesses touch.
    pub loc: Loc,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {loc}: {a} and {b} conflict but are unordered by happens-before",
            loc = self.loc,
            a = self.first,
            b = self.second
        )
    }
}

impl Error for Race {}

/// All races in one idealized execution: every pair of conflicting accesses
/// not ordered by `hb`, in completion order of the earlier access.
///
/// The paper's hypothetical initializing/final operations (Section 4) are
/// intentionally *not* added: the initialization chain is hb-before every
/// program access and the finalization chain hb-after, so neither can ever
/// participate in a race. See DESIGN.md.
///
/// # Examples
///
/// ```
/// use memory_model::{drf0, Execution, Loc, Operation, OpId, ProcId};
///
/// // Figure 2(b)'s essence: two unsynchronized writes to y.
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(2), Loc(1), 1),
///     Operation::data_write(OpId(1), ProcId(4), Loc(1), 2),
/// ]).unwrap();
/// assert_eq!(drf0::races_in(&exec).len(), 1);
/// ```
#[must_use]
pub fn races_in(exec: &Execution) -> Vec<Race> {
    races_with(exec, &HbRelation::from_execution(exec))
}

/// Like [`races_in`], but reuses a precomputed happens-before relation.
#[must_use]
pub fn races_with(exec: &Execution, hb: &HbRelation) -> Vec<Race> {
    let ops = exec.ops();
    let mut races = Vec::new();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if races_pair(a, b, hb) {
                races.push(Race { first: a.id, second: b.id, loc: a.loc });
            }
        }
    }
    races
}

fn races_pair(a: &Operation, b: &Operation, hb: &HbRelation) -> bool {
    a.conflicts_with(b) && !hb.ordered(a.id, b.id)
}

/// Whether one idealized execution satisfies Definition 3's condition (2):
/// all conflicting accesses ordered by happens-before.
#[must_use]
pub fn is_data_race_free(exec: &Execution) -> bool {
    let hb = HbRelation::from_execution(exec);
    let ops = exec.ops();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if races_pair(a, b, &hb) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcId, Value};

    fn w(id: u64, p: u16, l: u32, v: Value) -> Operation {
        Operation::data_write(OpId(id), ProcId(p), Loc(l), v)
    }

    fn r(id: u64, p: u16, l: u32, v: Value) -> Operation {
        Operation::data_read(OpId(id), ProcId(p), Loc(l), v)
    }

    fn s(id: u64, p: u16, l: u32, v: Value) -> Operation {
        Operation::sync_write(OpId(id), ProcId(p), Loc(l), v)
    }

    fn sr(id: u64, p: u16, l: u32, v: Value) -> Operation {
        Operation::sync_read(OpId(id), ProcId(p), Loc(l), v)
    }

    #[test]
    fn properly_synchronized_handoff_is_race_free() {
        // P0: W(x)=1; S(a)=1       P1: S.r(a)->1; R(x)->1
        let exec = Execution::new(vec![
            w(0, 0, 0, 1),
            s(1, 0, 9, 1),
            sr(2, 1, 9, 1),
            r(3, 1, 0, 1),
        ])
        .unwrap();
        assert!(is_data_race_free(&exec));
        assert!(races_in(&exec).is_empty());
    }

    #[test]
    fn unsynchronized_conflict_is_a_race() {
        let exec = Execution::new(vec![w(0, 0, 0, 1), r(1, 1, 0, 1)]).unwrap();
        let races = races_in(&exec);
        assert_eq!(races, vec![Race { first: OpId(0), second: OpId(1), loc: Loc(0) }]);
        assert!(!is_data_race_free(&exec));
        assert!(races[0].to_string().contains("race on m0"));
    }

    #[test]
    fn reads_never_race_with_reads() {
        let exec = Execution::new(vec![r(0, 0, 0, 0), r(1, 1, 0, 0)]).unwrap();
        assert!(is_data_race_free(&exec));
    }

    #[test]
    fn sync_sync_same_location_never_race() {
        // so orders them even across processors.
        let exec = Execution::new(vec![s(0, 0, 9, 1), s(1, 1, 9, 2)]).unwrap();
        assert!(is_data_race_free(&exec));
    }

    #[test]
    fn sync_data_conflict_on_same_location_races() {
        // A data write and a sync write to the same location, no other
        // synchronization: conflicting, and so does not apply (one is data).
        let exec = Execution::new(vec![w(0, 0, 9, 1), s(1, 1, 9, 2)]).unwrap();
        assert!(!is_data_race_free(&exec));
    }

    #[test]
    fn figure_2a_is_drf0() {
        // Paper Figure 2(a): six processors, all conflicting accesses
        // ordered by happens-before. Completion order follows the figure's
        // vertical (time) positions.
        let (x, y, z) = (Loc(0), Loc(1), Loc(2));
        let (a, b, c) = (Loc(10), Loc(11), Loc(12));
        let exec = Execution::new(vec![
            // W(x) by P0, then R(x) by P0 — same processor, po-ordered.
            Operation::data_write(OpId(0), ProcId(0), x, 1),
            Operation::data_read(OpId(1), ProcId(0), x, 1),
            // P1: W(y); S(a)
            Operation::data_write(OpId(2), ProcId(1), y, 1),
            Operation::sync_write(OpId(3), ProcId(1), a, 1),
            // P2: S(a); W(x) — acquires P1's release on a... and P0?
            // P0's accesses to x must be ordered with this W(x): P0 syncs too.
            Operation::sync_write(OpId(4), ProcId(0), a, 2),
            Operation::sync_write(OpId(5), ProcId(2), a, 3),
            Operation::data_write(OpId(6), ProcId(2), x, 2),
            // P3: S(b); R(y)
            Operation::sync_write(OpId(7), ProcId(1), b, 1),
            Operation::sync_write(OpId(8), ProcId(3), b, 2),
            Operation::data_read(OpId(9), ProcId(3), y, 1),
            // P4/P5: W(z) handed to R(z) via c.
            Operation::data_write(OpId(10), ProcId(4), z, 1),
            Operation::sync_write(OpId(11), ProcId(4), c, 1),
            Operation::sync_write(OpId(12), ProcId(5), c, 2),
            Operation::data_read(OpId(13), ProcId(5), z, 1),
        ])
        .unwrap();
        assert!(is_data_race_free(&exec), "races: {:?}", races_in(&exec));
    }

    #[test]
    fn figure_2b_violates_drf0() {
        // Paper Figure 2(b): P0's accesses to x conflict with P1's W(x) but
        // are not hb-ordered; P2's and P4's writes to y conflict unordered.
        let (x, y) = (Loc(0), Loc(1));
        let (a, b) = (Loc(10), Loc(11));
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), x, 1),
            Operation::data_read(OpId(1), ProcId(0), x, 1),
            Operation::data_write(OpId(2), ProcId(1), x, 2), // unordered w/ P0
            Operation::data_write(OpId(3), ProcId(2), y, 1),
            Operation::sync_write(OpId(4), ProcId(2), a, 1),
            Operation::sync_write(OpId(5), ProcId(3), a, 2),
            Operation::data_write(OpId(6), ProcId(4), y, 2), // unordered w/ P2
            Operation::sync_write(OpId(7), ProcId(4), b, 1),
        ])
        .unwrap();
        let races = races_in(&exec);
        assert!(!is_data_race_free(&exec));
        // W(x)/R(x) of P0 vs W(x) of P1: two races; W(y) P2 vs W(y) P4: one.
        assert_eq!(races.len(), 3, "races: {races:?}");
    }

    #[test]
    fn races_with_reuses_relation() {
        let exec = Execution::new(vec![w(0, 0, 0, 1), r(1, 1, 0, 1)]).unwrap();
        let hb = HbRelation::from_execution(&exec);
        assert_eq!(races_with(&exec, &hb).len(), 1);
    }
}
