//! The memory state of the idealized architecture.

use std::collections::BTreeMap;

use crate::{Loc, Value};

/// A total map from locations to values, defaulting to zero.
///
/// The paper accounts for the initial state of memory with hypothetical
/// initializing writes; `Memory` realizes the same effect by making every
/// location initially hold [`Memory::default_value`] (zero unless
/// configured otherwise).
///
/// # Examples
///
/// ```
/// use memory_model::{Loc, Memory};
///
/// let mut mem = Memory::new();
/// assert_eq!(mem.read(Loc(3)), 0); // untouched locations read as zero
/// mem.write(Loc(3), 7);
/// assert_eq!(mem.read(Loc(3)), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Memory {
    cells: BTreeMap<Loc, Value>,
    default: Value,
}

impl Memory {
    /// Creates a memory where every location holds zero.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Creates a memory where untouched locations hold `default`.
    #[must_use]
    pub fn with_default(default: Value) -> Self {
        Memory { cells: BTreeMap::new(), default }
    }

    /// The value untouched locations hold.
    #[must_use]
    pub fn default_value(&self) -> Value {
        self.default
    }

    /// Reads the value at `loc`.
    #[must_use]
    pub fn read(&self, loc: Loc) -> Value {
        self.cells.get(&loc).copied().unwrap_or(self.default)
    }

    /// Writes `value` at `loc`.
    pub fn write(&mut self, loc: Loc, value: Value) {
        self.cells.insert(loc, value);
    }

    /// The set of locations that have ever been written, with their values,
    /// in increasing location order.
    pub fn written(&self) -> impl Iterator<Item = (Loc, Value)> + '_ {
        self.cells.iter().map(|(&l, &v)| (l, v))
    }

    /// A canonical snapshot usable as a hash/eq key: written cells that
    /// differ from the default, in location order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Loc, Value)> {
        self.cells
            .iter()
            .filter(|&(_, &v)| v != self.default)
            .map(|(&l, &v)| (l, v))
            .collect()
    }
}

impl FromIterator<(Loc, Value)> for Memory {
    fn from_iter<I: IntoIterator<Item = (Loc, Value)>>(iter: I) -> Self {
        Memory { cells: iter.into_iter().collect(), default: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(Loc(99)), 0);
        assert_eq!(mem.default_value(), 0);
    }

    #[test]
    fn custom_default() {
        let mem = Memory::with_default(7);
        assert_eq!(mem.read(Loc(0)), 7);
    }

    #[test]
    fn write_then_read() {
        let mut mem = Memory::new();
        mem.write(Loc(1), 10);
        mem.write(Loc(1), 20);
        assert_eq!(mem.read(Loc(1)), 20);
    }

    #[test]
    fn snapshot_elides_default_values() {
        let mut mem = Memory::new();
        mem.write(Loc(1), 5);
        mem.write(Loc(2), 0); // same as default: elided
        assert_eq!(mem.snapshot(), vec![(Loc(1), 5)]);
    }

    #[test]
    fn from_iterator_collects() {
        let mem: Memory = [(Loc(0), 1), (Loc(1), 2)].into_iter().collect();
        assert_eq!(mem.read(Loc(0)), 1);
        assert_eq!(mem.read(Loc(1)), 2);
        assert_eq!(mem.written().count(), 2);
    }
}
