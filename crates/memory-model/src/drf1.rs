//! The Section 6 refinement of DRF0 ("Data-Race-Free-1"-style).
//!
//! Section 6 proposes distinguishing synchronization operations that only
//! read (`Test`), only write (`Unset`), and both (`TestAndSet`), and
//! modifying DRF0 so that "a processor cannot use a read-only
//! synchronization operation to order its previous accesses with respect
//! to subsequent synchronization operations of other processors". (The
//! authors developed this direction fully in later work as DRF1; we
//! implement exactly the Section 6 sketch.)
//!
//! Concretely, a pair of conflicting accesses must be ordered either by
//! `so` itself (synchronization operations on one location stay totally
//! ordered — the refinement never weakens that) or by the happens-before
//! relation computed with [`SyncMode::ReleaseWrites`], in which only
//! writing synchronization operations *release* (carry their processor's
//! earlier accesses across the edge).
//!
//! The refinement matters because it licenses the optimized Section 6
//! implementation: read-only synchronization operations need not be
//! serialized as writes by the coherence protocol, "and are not required
//! to stall other processors until the completion of previous accesses."

use crate::drf0::Race;
use crate::hb::{HbRelation, SyncMode};
use crate::Execution;

/// All Section-6-refined races in one idealized execution: pairs of
/// conflicting accesses ordered neither by `so` nor by the
/// release-writes happens-before.
///
/// Every DRF0 race is also a race here (the refined happens-before is a
/// subset of DRF0's), so `races_in(e) ⊆ refined_races_in(e)`.
///
/// # Examples
///
/// An execution where a read-only `Test` is the only thing "ordering" a
/// data hand-off is DRF0 but not refined-race-free:
///
/// ```
/// use memory_model::{drf0, drf1, Execution, Loc, Operation, OpId, ProcId};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1), // W(x)
///     Operation::sync_read(OpId(1), ProcId(0), Loc(9), 0),  // Test(s)
///     Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), 0, 1), // TAS(s)
///     Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),  // R(x)
/// ]).unwrap();
/// assert!(drf0::is_data_race_free(&exec)); // Test releases under DRF0
/// assert!(!drf1::is_refined_race_free(&exec)); // but not under Section 6
/// ```
#[must_use]
pub fn refined_races_in(exec: &Execution) -> Vec<Race> {
    let hb = HbRelation::with_mode(exec, SyncMode::ReleaseWrites);
    let ops = exec.ops();
    let mut races = Vec::new();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if a.conflicts_with(b) && !a.so_related(b) && !hb.ordered(a.id, b.id) {
                races.push(Race { first: a.id, second: b.id, loc: a.loc });
            }
        }
    }
    races
}

/// Whether one idealized execution is race-free under the Section 6
/// refinement.
#[must_use]
pub fn is_refined_race_free(exec: &Execution) -> bool {
    refined_races_in(exec).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drf0, Loc, OpId, Operation, ProcId};

    fn handoff(release_writes: bool) -> Execution {
        let rel = if release_writes {
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1)
        } else {
            Operation::sync_read(OpId(1), ProcId(0), Loc(9), 0)
        };
        Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            rel,
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), if release_writes { 1 } else { 0 }, 1),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
        ])
        .unwrap()
    }

    #[test]
    fn write_release_satisfies_both_models() {
        let e = handoff(true);
        assert!(drf0::is_data_race_free(&e));
        assert!(is_refined_race_free(&e));
    }

    #[test]
    fn test_release_satisfies_only_drf0() {
        let e = handoff(false);
        assert!(drf0::is_data_race_free(&e), "so edges order everything in DRF0");
        let races = refined_races_in(&e);
        assert_eq!(races.len(), 1, "W(x)/R(x) unordered under ReleaseWrites");
        assert_eq!(races[0].loc, Loc(0));
    }

    #[test]
    fn sync_ops_on_one_location_never_race_in_either_model() {
        // Test vs TestAndSet conflict, but so orders them — the refinement
        // keeps that (it only changes what edges carry).
        let e = Execution::new(vec![
            Operation::sync_read(OpId(0), ProcId(0), Loc(9), 0),
            Operation::sync_rmw(OpId(1), ProcId(1), Loc(9), 0, 1),
        ])
        .unwrap();
        assert!(drf0::is_data_race_free(&e));
        assert!(is_refined_race_free(&e));
    }

    #[test]
    fn drf0_races_are_a_subset_of_refined_races() {
        // A racy execution: its DRF0 races must all appear refined too.
        // z is racy outright; x is ordered only through a Test release,
        // so it races under the refinement but not under DRF0.
        let e = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(5), 1), // W(z) — racy
            Operation::data_read(OpId(1), ProcId(1), Loc(5), 1),  // R(z) — racy
            Operation::data_write(OpId(2), ProcId(0), Loc(0), 1), // W(x)
            Operation::sync_read(OpId(3), ProcId(0), Loc(9), 0),  // Test(s)
            Operation::sync_rmw(OpId(4), ProcId(1), Loc(9), 0, 1), // TAS(s)
            Operation::data_read(OpId(5), ProcId(1), Loc(0), 1),  // R(x)
        ])
        .unwrap();
        let drf0_races: std::collections::HashSet<_> =
            drf0::races_in(&e).into_iter().collect();
        let refined: std::collections::HashSet<_> =
            refined_races_in(&e).into_iter().collect();
        assert!(drf0_races.is_subset(&refined), "{drf0_races:?} ⊄ {refined:?}");
        assert!(refined.len() > drf0_races.len());
    }

    #[test]
    fn tas_release_chain_works_in_refined_model() {
        // TAS has a write component, so it releases: W(x); TAS(s) ... TAS(s); R(x).
        let e = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_rmw(OpId(1), ProcId(0), Loc(9), 0, 1),
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), 1, 1),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
        ])
        .unwrap();
        assert!(is_refined_race_free(&e));
    }

    #[test]
    fn read_only_release_does_not_relay_chains() {
        // W(x); Unset(s) … Test(s) … TAS(s); R(x): the Test sits between
        // the Unset and the TAS. The Unset must release directly to the
        // TAS (the Test cannot relay).
        let e = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 0),
            Operation::sync_read(OpId(2), ProcId(2), Loc(9), 0),
            Operation::sync_rmw(OpId(3), ProcId(1), Loc(9), 0, 1),
            Operation::data_read(OpId(4), ProcId(1), Loc(0), 1),
        ])
        .unwrap();
        assert!(is_refined_race_free(&e), "Unset releases across the intervening Test");
    }
}
