//! The Lemma 1 oracle (Appendix A).
//!
//! Lemma 1 states that a system is weakly ordered with respect to DRF0 iff
//! for any execution `E` of a DRF0 program there is a happens-before
//! relation (from some idealized execution) such that `E` and the
//! happens-before agree on reads and **every read returns the value written
//! by the last write on the same variable ordered before it by
//! happens-before**.
//!
//! [`reads_see_last_hb_write`] checks the read-value condition for one
//! execution and one happens-before relation. For DRF0 executions the
//! hb-last write is unique (conflicting writes are totally ordered along
//! every hb chain), so the check is well-defined; if an ambiguous
//! hb-maximal set is found the input was racy and
//! [`Lemma1Violation::AmbiguousLastWrite`] is reported.
//!
//! The paper accounts for the initial state of memory with hypothetical
//! initializing writes ordered hb-before everything; this module realizes
//! them with the `initial` [`Memory`] argument.

use std::error::Error;
use std::fmt;

use crate::hb::HbRelation;
use crate::{Execution, Loc, Memory, OpId, Value};

/// A violation of Lemma 1's read-value condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lemma1Violation {
    /// A read returned a value different from the hb-last write's value.
    WrongValue {
        /// The offending read.
        read: OpId,
        /// The hb-last write to the same location, if any (otherwise the
        /// initial value applied).
        last_write: Option<OpId>,
        /// The value the read should have returned.
        expected: Value,
        /// The value it actually returned.
        got: Value,
    },
    /// Two hb-maximal writes precede the read — impossible for DRF0
    /// executions, so the input must contain a race involving this read's
    /// location.
    AmbiguousLastWrite {
        /// The read whose hb-last write is ambiguous.
        read: OpId,
        /// Two incomparable hb-maximal writes.
        candidates: (OpId, OpId),
        /// The contested location.
        loc: Loc,
    },
}

impl fmt::Display for Lemma1Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lemma1Violation::WrongValue { read, last_write, expected, got } => {
                match last_write {
                    Some(w) => write!(
                        f,
                        "read {read} returned {got}, but hb-last write {w} stored {expected}"
                    ),
                    None => write!(
                        f,
                        "read {read} returned {got}, but no write precedes it and the initial value is {expected}"
                    ),
                }
            }
            Lemma1Violation::AmbiguousLastWrite { read, candidates, loc } => write!(
                f,
                "read {read} at {loc} has incomparable hb-maximal writes {} and {} — the execution is racy",
                candidates.0, candidates.1
            ),
        }
    }
}

impl Error for Lemma1Violation {}

/// Checks that every read in `exec` returns the value of the hb-last write
/// to its location (or the initial value when no write precedes it).
///
/// For a read-modify-write synchronization operation only the read
/// component is checked, and per the paper's Appendix A footnote its own
/// write component is not a candidate "last write" for itself.
///
/// # Errors
///
/// Returns the first violation found, scanning in completion order.
///
/// # Examples
///
/// ```
/// use memory_model::hb::HbRelation;
/// use memory_model::lemma1::reads_see_last_hb_write;
/// use memory_model::{Execution, Loc, Memory, Operation, OpId, ProcId};
///
/// let exec = Execution::new(vec![
///     Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///     Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
///     Operation::sync_read(OpId(2), ProcId(1), Loc(9), 1),
///     Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
/// ])?;
/// let hb = HbRelation::from_execution(&exec);
/// assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
/// # Ok::<(), memory_model::ExecutionError>(())
/// ```
pub fn reads_see_last_hb_write(
    exec: &Execution,
    hb: &HbRelation,
    initial: &Memory,
) -> Result<(), Lemma1Violation> {
    for op in exec.ops() {
        let Some(got) = op.read_value else { continue };

        // Collect writes to the same location ordered hb-before this read.
        let before: Vec<_> = exec
            .ops()
            .iter()
            .filter(|w| {
                w.kind.is_write()
                    && w.loc == op.loc
                    && w.id != op.id
                    && hb.happens_before(w.id, op.id)
            })
            .collect();

        // Find the hb-maximal ones.
        let maximal: Vec<_> = before
            .iter()
            .filter(|w| {
                !before
                    .iter()
                    .any(|later| hb.happens_before(w.id, later.id))
            })
            .collect();

        match maximal.as_slice() {
            [] => {
                let expected = initial.read(op.loc);
                if got != expected {
                    return Err(Lemma1Violation::WrongValue {
                        read: op.id,
                        last_write: None,
                        expected,
                        got,
                    });
                }
            }
            [only] => {
                let expected = only
                    .write_value
                    .expect("is_write() implies a write value");
                if got != expected {
                    return Err(Lemma1Violation::WrongValue {
                        read: op.id,
                        last_write: Some(only.id),
                        expected,
                        got,
                    });
                }
            }
            [a, b, ..] => {
                return Err(Lemma1Violation::AmbiguousLastWrite {
                    read: op.id,
                    candidates: (a.id, b.id),
                    loc: op.loc,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, ProcId};

    #[test]
    fn accepts_synchronized_handoff() {
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 5),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_read(OpId(2), ProcId(1), Loc(9), 1),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 5),
        ])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
    }

    #[test]
    fn rejects_stale_read() {
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 5),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_read(OpId(2), ProcId(1), Loc(9), 1),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 0), // stale!
        ])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        let err = reads_see_last_hb_write(&exec, &hb, &Memory::new()).unwrap_err();
        assert_eq!(
            err,
            Lemma1Violation::WrongValue {
                read: OpId(3),
                last_write: Some(OpId(0)),
                expected: 5,
                got: 0
            }
        );
        assert!(err.to_string().contains("hb-last write"));
    }

    #[test]
    fn initial_value_applies_when_no_write_precedes() {
        let exec = Execution::new(vec![Operation::data_read(
            OpId(0),
            ProcId(0),
            Loc(0),
            7,
        )])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_err());
        let mut init = Memory::new();
        init.write(Loc(0), 7);
        assert!(reads_see_last_hb_write(&exec, &hb, &init).is_ok());
    }

    #[test]
    fn racy_execution_yields_ambiguity() {
        // Two unordered writes both hb-before the read? They can't both be
        // hb-before a read without being ordered with each other... unless
        // the read's processor synchronized with both writers separately.
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(8), 1),
            Operation::data_write(OpId(2), ProcId(1), Loc(0), 2),
            Operation::sync_write(OpId(3), ProcId(1), Loc(9), 1),
            Operation::sync_read(OpId(4), ProcId(2), Loc(8), 1),
            Operation::sync_read(OpId(5), ProcId(2), Loc(9), 1),
            Operation::data_read(OpId(6), ProcId(2), Loc(0), 2),
        ])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        let err = reads_see_last_hb_write(&exec, &hb, &Memory::new()).unwrap_err();
        assert!(matches!(err, Lemma1Violation::AmbiguousLastWrite { read: OpId(6), .. }));
        assert!(err.to_string().contains("racy"));
    }

    #[test]
    fn rmw_read_component_sees_previous_sync_write() {
        // Unset then TestAndSet: the TestAndSet's read must see the Unset.
        let exec = Execution::new(vec![
            Operation::sync_write(OpId(0), ProcId(0), Loc(0), 0), // Unset
            Operation::sync_rmw(OpId(1), ProcId(1), Loc(0), 0, 1), // TestAndSet
        ])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
    }

    #[test]
    fn program_order_alone_suffices_within_a_processor() {
        let exec = Execution::new(vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(0), 2),
            Operation::data_read(OpId(2), ProcId(0), Loc(0), 2),
        ])
        .unwrap();
        let hb = HbRelation::from_execution(&exec);
        assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
    }
}
