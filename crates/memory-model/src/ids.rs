//! Identifier newtypes shared across the workspace.

use std::fmt;

/// The value domain of the simulated memory: 64-bit words.
pub type Value = u64;

/// Identifies a processor (the paper's `P_i`).
///
/// # Examples
///
/// ```
/// use memory_model::ProcId;
/// assert_eq!(ProcId(3).to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Returns the processor number as a `usize`, for indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a memory location.
///
/// The paper's DRF0 requires each synchronization operation to access
/// exactly one location; a `Loc` is that unit of access (one word — the
/// simulators use one-word cache lines, see DESIGN.md).
///
/// # Examples
///
/// ```
/// use memory_model::Loc;
/// assert_eq!(Loc(7).to_string(), "m7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Loc(pub u32);

impl Loc {
    /// Returns the location number as a `usize`, for indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifies one memory operation within an execution.
///
/// Ids are unique within an [`crate::Execution`] or
/// [`crate::Observation`] but carry no ordering meaning of their own.
///
/// Interpreters and simulators in this workspace assign ids with
/// [`OpId::for_thread_op`], which encodes `(processor, program-order
/// sequence)`. That makes the id of a given program-order access identical
/// across different interleavings and different hardware models, so their
/// results can be compared directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId(pub u64);

impl OpId {
    /// The id of processor `proc`'s `seq`-th memory operation (0-based,
    /// program order).
    ///
    /// # Examples
    ///
    /// ```
    /// use memory_model::{OpId, ProcId};
    /// let id = OpId::for_thread_op(ProcId(2), 5);
    /// assert_eq!(id.proc_part(), ProcId(2));
    /// assert_eq!(id.seq_part(), 5);
    /// ```
    #[must_use]
    pub const fn for_thread_op(proc: ProcId, seq: u32) -> OpId {
        OpId(((proc.0 as u64) << 32) | seq as u64)
    }

    /// The processor encoded by [`OpId::for_thread_op`].
    #[must_use]
    pub const fn proc_part(self) -> ProcId {
        ProcId((self.0 >> 32) as u16)
    }

    /// The program-order sequence number encoded by
    /// [`OpId::for_thread_op`].
    #[must_use]
    pub const fn seq_part(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >> 32 != 0 {
            write!(f, "#{}.{}", self.proc_part().0, self.seq_part())
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ProcId(0).to_string(), "P0");
        assert_eq!(Loc(12).to_string(), "m12");
        assert_eq!(OpId(5).to_string(), "#5");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ProcId(9).index(), 9);
        assert_eq!(Loc(9).index(), 9);
    }

    #[test]
    fn ids_order_numerically() {
        assert!(ProcId(1) < ProcId(2));
        assert!(Loc(1) < Loc(2));
        assert!(OpId(1) < OpId(2));
    }
}
