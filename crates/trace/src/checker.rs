//! The sharded, incremental vector-clock race-checking engine.
//!
//! [`StreamChecker`] consumes one execution's events in completion order
//! (one *segment* at a time) and maintains an online DRF0 verdict with
//! bounded memory. It is a **batch-pipelined** reimplementation of the
//! driver loop in [`memory_model::race::RaceDetector`], built on the same
//! [`LocationState`] per-location history — one race-checking logic, two
//! drivers, no fork. Events are buffered into batches and each batch is
//! processed in two phases:
//!
//! 1. **Sequential clock pass.** Vector clocks are inherently sequential:
//!    a synchronization operation acquires the clock published by the
//!    previous release on its location. This pass joins, snapshots each
//!    event's post-acquire/pre-tick clock into a flat arena, ticks, and
//!    publishes releases — O(procs) per event, no hashing of races.
//!    It also decides **location admission** (see below) and buckets each
//!    admitted event by its location's shard.
//!
//! 2. **Parallel shard pass.** Locations are partitioned across shards by
//!    hash; each shard race-checks its bucketed events in stream order
//!    against its own [`LocationState`] map, on the same work-stealing
//!    pool the memsim sweep engine uses ([`memsim::pool`]). Because every
//!    event carries its phase-1 clock snapshot and two events on one
//!    location always land in one shard in stream order, the union of
//!    shard races equals the sequential detector's race set exactly —
//!    at any shard or thread count.
//!
//! Races are merged at segment end, sorted by `(first, second, loc)` and
//! deduplicated, so reports are **byte-identical** regardless of
//! parallelism ([`TraceReport::canonical_text`] is the comparable form).
//!
//! # Bounded memory and partial verdicts
//!
//! Checker state is bounded by two caps, and exceeding either degrades
//! the verdict *structurally* (mirroring `wo-serve`'s `Unknown` verdicts)
//! instead of aborting or growing without bound:
//!
//! * [`CheckerConfig::max_tracked_locations`] bounds per-location
//!   histories. Admission is decided in the sequential pass by **first
//!   appearance order** — a global, shard-independent rule; per-shard caps
//!   would let the set of dropped locations depend on the shard count and
//!   break determinism. Events on dropped locations still tick clocks
//!   (their ordering effects are preserved), so races reported on tracked
//!   locations remain sound; only races *on dropped locations* can be
//!   missed. A clean report therefore degrades to
//!   [`UnknownReason::LocationCapExceeded`], while a racy one stays
//!   [`Verdict::Racy`].
//! * [`CheckerConfig::max_sync_locations`] bounds published sync-location
//!   clocks. Overflow here loses happens-before edges: later events may be
//!   *wrongly* flagged as races, so both race presence and absence become
//!   unsound and the verdict is [`UnknownReason::SyncCapExceeded`].

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;

use memory_model::drf0::Race;
use memory_model::race::LocationState;
use memory_model::vc::VectorClock;
use memory_model::{Loc, Operation, SyncMode};

/// Tuning knobs of a [`StreamChecker`].
///
/// Only `mode` affects the verdict semantics; `shards`, `threads`, and
/// `batch` affect performance alone, and the two caps bound memory (their
/// effect on the verdict is the structured degradation described in the
/// module docs — never a different race set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerConfig {
    /// Location shards for the parallel checking pass.
    pub shards: usize,
    /// Worker threads for the shard pass (0 = available parallelism,
    /// 1 = serial).
    pub threads: usize,
    /// The happens-before mode (DRF0, or the Section 6 refinement where
    /// only writing synchronization operations release).
    pub mode: SyncMode,
    /// Events buffered per two-phase batch.
    pub batch: usize,
    /// Cap on per-location histories per segment (first appearance wins).
    pub max_tracked_locations: usize,
    /// Cap on published sync-location clocks per segment.
    pub max_sync_locations: usize,
    /// Cap on races *retained* in the report (the count is always exact).
    pub max_kept_races: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            shards: 8,
            threads: 0,
            mode: SyncMode::Drf0,
            batch: 1 << 16,
            max_tracked_locations: 1 << 20,
            max_sync_locations: 1 << 16,
            max_kept_races: 10_000,
        }
    }
}

/// Why a stream could not be ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// An event arrived outside `begin_segment` / `end_segment`.
    NoOpenSegment,
    /// An event named a processor outside the segment's declared range —
    /// a malformed trace, reported structurally rather than panicking.
    ProcOutOfRange {
        /// The event's processor.
        proc: u16,
        /// Processors the segment declared.
        procs: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::NoOpenSegment => write!(f, "event outside any segment"),
            IngestError::ProcOutOfRange { proc, procs } => {
                write!(f, "event names processor {proc} but the segment declared {procs}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Why a verdict is neither DRF0 nor Racy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The tracked-location cap dropped some locations: no race was found
    /// on the tracked ones, but dropped locations were not checked.
    LocationCapExceeded,
    /// The sync-location cap dropped published clocks: happens-before
    /// itself is incomplete, so even reported races are unreliable.
    SyncCapExceeded,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::LocationCapExceeded => write!(f, "location-cap-exceeded"),
            UnknownReason::SyncCapExceeded => write!(f, "sync-cap-exceeded"),
        }
    }
}

/// The checker's online answer to "is this trace DRF0?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every event was checked; no race exists in the stream.
    Drf0,
    /// At least one data race was found (sound even under the location
    /// cap: dropped locations only *hide* races, never invent them).
    Racy,
    /// A memory cap degraded the answer; the reason says how.
    Unknown(UnknownReason),
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Drf0 => write!(f, "DRF0"),
            Verdict::Racy => write!(f, "RACY"),
            Verdict::Unknown(reason) => write!(f, "UNKNOWN({reason})"),
        }
    }
}

/// The final, deterministic result of checking a stream.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The online DRF0 verdict.
    pub verdict: Verdict,
    /// The happens-before mode the check ran under.
    pub mode: SyncMode,
    /// Segments (executions) checked.
    pub segments: u64,
    /// Events ingested.
    pub events: u64,
    /// Synchronization events among them.
    pub sync_events: u64,
    /// Exact number of distinct races found.
    pub total_races: u64,
    /// The races, in canonical `(first, second, loc)` order, truncated to
    /// [`CheckerConfig::max_kept_races`].
    pub races: Vec<Race>,
    /// Whether `races` was truncated by the retention cap.
    pub races_truncated: bool,
    /// Races per location, in location order (every counted race, even
    /// beyond the retention cap).
    pub racy_locations: Vec<(Loc, u64)>,
    /// Events on dropped (unadmitted) locations — unchecked.
    pub dropped_events: u64,
    /// Locations dropped by the tracked-location cap.
    pub dropped_locations: u64,
    /// Peak tracked locations in any one segment.
    pub tracked_locations_high_water: u64,
    /// Peak published sync-location clocks in any one segment.
    pub sync_locations_high_water: u64,
    /// Whether the sync-location cap overflowed anywhere.
    pub sync_overflow: bool,
    /// Peak *logical* checker-state footprint (location histories plus
    /// published clocks), in bytes — computed from counts, so it is
    /// deterministic, unlike an allocator measurement.
    pub approx_state_bytes_high_water: u64,
}

impl TraceReport {
    /// The report as comparable text: every semantic field, **excluding**
    /// performance-only configuration (shards, threads, batch size).
    /// Equal streams must produce byte-identical canonical text at any
    /// parallelism — the determinism tests diff exactly this.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "verdict: {}", self.verdict);
        let mode = match self.mode {
            SyncMode::Drf0 => "drf0",
            SyncMode::ReleaseWrites => "release-writes",
        };
        let _ = writeln!(s, "mode: {mode}");
        let _ = writeln!(s, "segments: {}", self.segments);
        let _ = writeln!(s, "events: {}", self.events);
        let _ = writeln!(s, "sync-events: {}", self.sync_events);
        let _ = writeln!(s, "races: {}", self.total_races);
        let _ = writeln!(s, "races-truncated: {}", self.races_truncated);
        let _ = writeln!(s, "dropped-events: {}", self.dropped_events);
        let _ = writeln!(s, "dropped-locations: {}", self.dropped_locations);
        let _ = writeln!(s, "tracked-locations-high-water: {}", self.tracked_locations_high_water);
        let _ = writeln!(s, "sync-locations-high-water: {}", self.sync_locations_high_water);
        let _ = writeln!(s, "sync-overflow: {}", self.sync_overflow);
        let _ = writeln!(s, "state-bytes-high-water: {}", self.approx_state_bytes_high_water);
        for race in &self.races {
            let _ = writeln!(s, "race: {} {} {}", race.first, race.second, race.loc);
        }
        for (loc, count) in &self.racy_locations {
            let _ = writeln!(s, "racy-loc: {loc} {count}");
        }
        s
    }
}

/// Where events of one location go: a shard's history, or the floor.
#[derive(Clone, Copy)]
enum Admission {
    Tracked(u32),
    Dropped,
}

/// One shard: the location histories it owns and the races it found.
#[derive(Default)]
struct Shard {
    locations: HashMap<Loc, LocationState>,
    races: Vec<Race>,
}

/// The streaming checker. See the module docs for the algorithm.
///
/// # Examples
///
/// ```
/// use memory_model::{Loc, Operation, OpId, ProcId};
/// use wo_trace::{CheckerConfig, StreamChecker, Verdict};
///
/// let mut checker = StreamChecker::new(CheckerConfig::default());
/// checker.begin_segment(2);
/// checker.ingest(&Operation::data_write(OpId(0), ProcId(0), Loc(0), 1)).unwrap();
/// checker.ingest(&Operation::data_read(OpId(1), ProcId(1), Loc(0), 1)).unwrap();
/// checker.end_segment();
/// let report = checker.finish();
/// assert_eq!(report.verdict, Verdict::Racy);
/// assert_eq!(report.total_races, 1);
/// ```
pub struct StreamChecker {
    cfg: CheckerConfig,
    // --- per-segment state, rebuilt by `begin_segment` -------------------
    in_segment: bool,
    procs: usize,
    proc_clock: Vec<VectorClock>,
    sync_clock: HashMap<Loc, VectorClock>,
    admission: HashMap<Loc, Admission>,
    tracked: usize,
    shards: Vec<Mutex<Shard>>,
    batch_ops: Vec<Operation>,
    arena: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    // --- cumulative accounting ------------------------------------------
    segments: u64,
    events: u64,
    sync_events: u64,
    total_races: u64,
    kept_races: Vec<Race>,
    races_truncated: bool,
    racy_locations: BTreeMap<Loc, u64>,
    dropped_events: u64,
    dropped_locations: u64,
    tracked_hw: u64,
    sync_hw: u64,
    state_bytes_hw: u64,
    sync_overflow: bool,
}

impl StreamChecker {
    /// Creates a checker; feed it segments via [`StreamChecker::begin_segment`].
    #[must_use]
    pub fn new(cfg: CheckerConfig) -> Self {
        let cfg = CheckerConfig {
            shards: cfg.shards.max(1),
            batch: cfg.batch.max(1),
            ..cfg
        };
        StreamChecker {
            cfg,
            in_segment: false,
            procs: 0,
            proc_clock: Vec::new(),
            sync_clock: HashMap::new(),
            admission: HashMap::new(),
            tracked: 0,
            shards: Vec::new(),
            batch_ops: Vec::new(),
            arena: Vec::new(),
            buckets: Vec::new(),
            segments: 0,
            events: 0,
            sync_events: 0,
            total_races: 0,
            kept_races: Vec::new(),
            races_truncated: false,
            racy_locations: BTreeMap::new(),
            dropped_events: 0,
            dropped_locations: 0,
            tracked_hw: 0,
            sync_hw: 0,
            state_bytes_hw: 0,
            sync_overflow: false,
        }
    }

    /// Opens a segment: one execution from `procs` processors. Races never
    /// span segments, so all per-segment state resets here.
    ///
    /// # Panics
    ///
    /// Panics if a segment is already open — API misuse, matching the
    /// writer's discipline.
    pub fn begin_segment(&mut self, procs: u16) {
        assert!(!self.in_segment, "begin_segment inside an open segment");
        let procs = usize::from(procs);
        self.in_segment = true;
        self.procs = procs;
        self.proc_clock.clear();
        self.proc_clock.resize(procs, VectorClock::new(procs));
        self.sync_clock.clear();
        self.admission.clear();
        self.tracked = 0;
        self.shards = (0..self.cfg.shards).map(|_| Mutex::new(Shard::default())).collect();
        self.batch_ops.clear();
        self.arena.clear();
        self.buckets.resize_with(self.cfg.shards, Vec::new);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Ingests one event (in completion order). Processing is batched;
    /// verdict-relevant effects are indistinguishable from per-event
    /// processing.
    ///
    /// # Errors
    ///
    /// [`IngestError::NoOpenSegment`] outside a segment,
    /// [`IngestError::ProcOutOfRange`] when the event names a processor
    /// the segment did not declare.
    pub fn ingest(&mut self, op: &Operation) -> Result<(), IngestError> {
        if !self.in_segment {
            return Err(IngestError::NoOpenSegment);
        }
        let p = op.proc.index();
        if p >= self.procs {
            return Err(IngestError::ProcOutOfRange { proc: op.proc.0, procs: self.procs });
        }
        self.events += 1;
        if op.kind.is_sync() {
            self.sync_events += 1;
        }
        self.batch_ops.push(*op);
        if self.batch_ops.len() >= self.cfg.batch {
            self.process_batch();
        }
        Ok(())
    }

    /// Closes the open segment: flushes the pending batch and folds the
    /// shard races into the cumulative report in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn end_segment(&mut self) {
        assert!(self.in_segment, "end_segment outside a segment");
        self.process_batch();
        let mut seg_races = Vec::new();
        for shard in &mut self.shards {
            seg_races.append(&mut shard.get_mut().expect("no poisoned shard").races);
        }
        // Each race is keyed by its completing event, and each event is
        // checked exactly once, so the set is already duplicate-free; the
        // sort alone makes the order shard-count-independent.
        seg_races.sort_unstable_by_key(|r| (r.first, r.second, r.loc));
        self.total_races += seg_races.len() as u64;
        for race in &seg_races {
            *self.racy_locations.entry(race.loc).or_insert(0) += 1;
        }
        let room = self.cfg.max_kept_races.saturating_sub(self.kept_races.len());
        if seg_races.len() > room {
            self.races_truncated = true;
        }
        self.kept_races.extend(seg_races.into_iter().take(room));
        self.in_segment = false;
        self.segments += 1;
    }

    /// Finishes the stream and produces the deterministic report.
    ///
    /// # Panics
    ///
    /// Panics if a segment is still open.
    #[must_use]
    pub fn finish(self) -> TraceReport {
        assert!(!self.in_segment, "finish with an open segment");
        let verdict = if self.sync_overflow {
            Verdict::Unknown(UnknownReason::SyncCapExceeded)
        } else if self.total_races > 0 {
            Verdict::Racy
        } else if self.dropped_events > 0 {
            Verdict::Unknown(UnknownReason::LocationCapExceeded)
        } else {
            Verdict::Drf0
        };
        TraceReport {
            verdict,
            mode: self.cfg.mode,
            segments: self.segments,
            events: self.events,
            sync_events: self.sync_events,
            total_races: self.total_races,
            races: self.kept_races,
            races_truncated: self.races_truncated,
            racy_locations: self.racy_locations.into_iter().collect(),
            dropped_events: self.dropped_events,
            dropped_locations: self.dropped_locations,
            tracked_locations_high_water: self.tracked_hw,
            sync_locations_high_water: self.sync_hw,
            sync_overflow: self.sync_overflow,
            approx_state_bytes_high_water: self.state_bytes_hw,
        }
    }

    /// The two-phase batch: sequential clock pass, then parallel
    /// per-shard checking. See the module docs for why this equals the
    /// sequential detector exactly.
    fn process_batch(&mut self) {
        if self.batch_ops.is_empty() {
            return;
        }
        let procs = self.procs;
        let releases_writes_only = self.cfg.mode == SyncMode::ReleaseWrites;
        self.arena.clear();
        self.arena.reserve(self.batch_ops.len() * procs);

        // Phase 1: sequential clock pass.
        for (i, op) in self.batch_ops.iter().enumerate() {
            let p = op.proc.index();
            if op.kind.is_sync() {
                if let Some(sc) = self.sync_clock.get(&op.loc) {
                    self.proc_clock[p].join(sc);
                }
            }
            // Snapshot the post-acquire, pre-tick clock: exactly what the
            // sequential detector hands LocationState::observe.
            self.arena.extend_from_slice(self.proc_clock[p].as_slice());
            self.proc_clock[p].tick(p);
            let releases = op.kind.is_sync() && (!releases_writes_only || op.kind.is_write());
            if releases {
                // Publishing to an already-tracked location costs nothing
                // new; only *new* sync locations are capped.
                if let Some(slot) = self.sync_clock.get_mut(&op.loc) {
                    slot.clone_from(&self.proc_clock[p]);
                } else if self.sync_clock.len() < self.cfg.max_sync_locations {
                    self.sync_clock.insert(op.loc, self.proc_clock[p].clone());
                } else {
                    self.sync_overflow = true;
                }
            }
            // Admission: global, first-appearance order — independent of
            // shard count, so degraded verdicts stay deterministic.
            let slot = match self.admission.entry(op.loc) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let slot = if self.tracked < self.cfg.max_tracked_locations {
                        self.tracked += 1;
                        let hash = u64::from(op.loc.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        Admission::Tracked(((hash >> 32) as usize % self.cfg.shards) as u32)
                    } else {
                        self.dropped_locations += 1;
                        Admission::Dropped
                    };
                    *e.insert(slot)
                }
            };
            match slot {
                Admission::Tracked(shard) => {
                    self.buckets[shard as usize].push(i as u32);
                }
                Admission::Dropped => self.dropped_events += 1,
            }
        }

        // Phase 2: parallel per-shard checking over disjoint locations.
        {
            let shards = &self.shards;
            let buckets = &self.buckets;
            let ops = &self.batch_ops;
            let arena = &self.arena;
            memsim::pool::run_with_worker(
                shards.len(),
                self.cfg.threads,
                || (),
                |(), s| {
                    let mut shard = shards[s].lock().expect("no poisoned shard");
                    let Shard { locations, races } = &mut *shard;
                    for &i in &buckets[s] {
                        let i = i as usize;
                        let op = &ops[i];
                        let clock = &arena[i * procs..(i + 1) * procs];
                        locations
                            .entry(op.loc)
                            .or_insert_with(|| LocationState::new(procs))
                            .observe(op, op.proc.index(), clock, races);
                    }
                },
            );
        }

        self.batch_ops.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }

        // High-water accounting, from *counts* so it is deterministic.
        self.tracked_hw = self.tracked_hw.max(self.tracked as u64);
        self.sync_hw = self.sync_hw.max(self.sync_clock.len() as u64);
        let sync_entry_bytes = std::mem::size_of::<(Loc, VectorClock)>() + procs * 4;
        let state_bytes = (self.tracked * LocationState::approx_bytes(procs)
            + self.sync_clock.len() * sync_entry_bytes) as u64;
        self.state_bytes_hw = self.state_bytes_hw.max(state_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memory_model::race::races_of;
    use memory_model::{Execution, OpId, ProcId};

    fn check_ops(ops: &[Operation], procs: u16, cfg: CheckerConfig) -> TraceReport {
        let mut checker = StreamChecker::new(cfg);
        checker.begin_segment(procs);
        for op in ops {
            checker.ingest(op).unwrap();
        }
        checker.end_segment();
        checker.finish()
    }

    fn racy_ops() -> Vec<Operation> {
        vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), 1, 2),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 1), // synced: no race
            Operation::data_write(OpId(4), ProcId(2), Loc(0), 5), // races with 0 and 3
        ]
    }

    #[test]
    fn matches_sequential_detector_on_small_stream() {
        let ops = racy_ops();
        let exec = Execution::new(ops.clone()).unwrap();
        let mut expected = races_of(&exec, SyncMode::Drf0);
        expected.sort_unstable_by_key(|r| (r.first, r.second, r.loc));
        for shards in [1, 2, 7] {
            let report = check_ops(
                &ops,
                3,
                CheckerConfig { shards, threads: 1, ..CheckerConfig::default() },
            );
            assert_eq!(report.races, expected, "shards={shards}");
            assert_eq!(report.verdict, Verdict::Racy);
            assert_eq!(report.total_races, 2);
        }
    }

    #[test]
    fn drf0_stream_is_clean_and_counts_sync_events() {
        let ops = vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), 1, 2),
            Operation::data_read(OpId(3), ProcId(1), Loc(0), 1),
        ];
        let report = check_ops(&ops, 2, CheckerConfig::default());
        assert_eq!(report.verdict, Verdict::Drf0);
        assert_eq!((report.events, report.sync_events), (4, 2));
        assert_eq!(report.tracked_locations_high_water, 2);
        assert_eq!(report.sync_locations_high_water, 1);
        assert!(report.approx_state_bytes_high_water > 0);
    }

    #[test]
    fn tiny_batches_do_not_change_the_verdict() {
        let ops = racy_ops();
        let big = check_ops(&ops, 3, CheckerConfig::default());
        let tiny = check_ops(&ops, 3, CheckerConfig { batch: 1, ..CheckerConfig::default() });
        assert_eq!(big.canonical_text(), tiny.canonical_text());
    }

    #[test]
    fn location_cap_degrades_clean_to_unknown_but_keeps_racy() {
        // Two racy locations; cap admits only the first-seen one.
        let ops = vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(1), 1),
            Operation::data_write(OpId(2), ProcId(1), Loc(0), 2),
            Operation::data_write(OpId(3), ProcId(1), Loc(1), 2),
        ];
        let cap1 = CheckerConfig { max_tracked_locations: 1, ..CheckerConfig::default() };
        let report = check_ops(&ops, 2, cap1);
        assert_eq!(report.verdict, Verdict::Racy, "race on the tracked location is sound");
        assert_eq!(report.total_races, 1);
        assert_eq!(report.dropped_locations, 1);
        assert_eq!(report.dropped_events, 2);

        // Only the dropped location races: no race found → Unknown.
        let clean_then_racy = vec![
            Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
            Operation::data_write(OpId(1), ProcId(0), Loc(1), 1),
            Operation::data_write(OpId(3), ProcId(1), Loc(1), 2),
        ];
        let report = check_ops(&clean_then_racy, 2, cap1);
        assert_eq!(report.verdict, Verdict::Unknown(UnknownReason::LocationCapExceeded));
        assert_eq!(report.total_races, 0);
    }

    #[test]
    fn sync_cap_overflow_makes_everything_unknown() {
        // Two sync locations, cap of one: the second lock's release is
        // lost, so the checker cannot trust its own race set.
        let ops = vec![
            Operation::sync_write(OpId(0), ProcId(0), Loc(8), 1),
            Operation::sync_write(OpId(1), ProcId(0), Loc(9), 1),
            Operation::sync_rmw(OpId(2), ProcId(1), Loc(9), 1, 2),
        ];
        let cfg = CheckerConfig { max_sync_locations: 1, ..CheckerConfig::default() };
        let report = check_ops(&ops, 2, cfg);
        assert!(report.sync_overflow);
        assert_eq!(report.verdict, Verdict::Unknown(UnknownReason::SyncCapExceeded));
    }

    #[test]
    fn race_retention_cap_truncates_list_not_count() {
        let ops: Vec<Operation> = (0..20)
            .map(|i| Operation::data_write(OpId(i), ProcId((i % 2) as u16), Loc(0), i))
            .collect();
        let cfg = CheckerConfig { max_kept_races: 3, ..CheckerConfig::default() };
        let report = check_ops(&ops, 2, cfg);
        assert!(report.races_truncated);
        assert_eq!(report.races.len(), 3);
        assert!(report.total_races > 3);
        let full = check_ops(&ops, 2, CheckerConfig::default());
        assert_eq!(full.total_races, report.total_races);
        assert_eq!(&full.races[..3], &report.races[..]);
    }

    #[test]
    fn ingest_errors_are_structured() {
        let op = Operation::data_write(OpId(0), ProcId(5), Loc(0), 1);
        let mut checker = StreamChecker::new(CheckerConfig::default());
        assert_eq!(checker.ingest(&op), Err(IngestError::NoOpenSegment));
        checker.begin_segment(2);
        assert_eq!(
            checker.ingest(&op),
            Err(IngestError::ProcOutOfRange { proc: 5, procs: 2 })
        );
        checker.end_segment();
        assert_eq!(checker.finish().events, 0);
    }

    #[test]
    fn segments_are_independent() {
        let w = Operation::data_write(OpId(0), ProcId(0), Loc(0), 1);
        let r = Operation::data_read(OpId(1), ProcId(1), Loc(0), 1);
        let mut checker = StreamChecker::new(CheckerConfig::default());
        checker.begin_segment(2);
        checker.ingest(&w).unwrap();
        checker.end_segment();
        checker.begin_segment(2);
        checker.ingest(&r).unwrap();
        checker.end_segment();
        let report = checker.finish();
        assert_eq!(report.verdict, Verdict::Drf0, "races never span segments");
        assert_eq!(report.segments, 2);
    }

    #[test]
    fn canonical_text_is_stable_and_informative() {
        let report = check_ops(&racy_ops(), 3, CheckerConfig::default());
        let text = report.canonical_text();
        assert!(text.starts_with("verdict: RACY\n"), "{text}");
        assert!(text.contains("\nevents: 5\n"));
        assert!(text.contains("\nraces: 2\n"));
        assert_eq!(text.matches("race: ").count(), 2);
        assert!(text.contains("racy-loc: m0 2"));
    }
}
