//! The wo-trace command-line tool.
//!
//! ```text
//! wo_trace check <FILE> [--shards N] [--threads N] [--release-writes]
//!                       [--batch N] [--max-locations N] [--max-sync N]
//! wo_trace stats <FILE>
//! wo_trace top <FILE> [--limit N] [checker flags]
//! wo_trace emit <PROGRAM> --out FILE [--procs N] [--seeds N] [--policy P]
//! wo_trace synth --out FILE [--events N] [--procs N] [--locations N]
//!                [--sync-locations N] [--sync-percent P] [--racy-percent P]
//!                [--seed S]
//! ```
//!
//! `check` exit codes: 0 = DRF0, 1 = racy, 3 = unknown (a memory cap
//! degraded the verdict), 2 = error (unreadable or corrupt input) — so
//! scripts can branch on the verdict without parsing output.
//!
//! `<PROGRAM>` is a corpus name (`dekker`, `handoff`, `mp-sync`,
//! `racy-counter`, `spinlock`, `iriw-sync`) or a path to a litmus file
//! parsed by `litmus::parse_program`. `--policy` is one of `sc`,
//! `relaxed`, `wo-def1`, `wo-def2` (default `wo-def2`).

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;

use litmus::parse::parse_program;
use litmus::{corpus, Program};
use memory_model::SyncMode;
use memsim::{presets, sweep, Policy, TraceItem, TraceReader, TraceWriter};
use wo_trace::{check_trace_file, write_synth, CheckerConfig, SynthConfig, TraceReport, Verdict};

fn usage() -> ! {
    eprintln!(
        "usage: wo_trace check <FILE> [--shards N] [--threads N] [--release-writes]\n\
         \x20                      [--batch N] [--max-locations N] [--max-sync N]\n\
         \x20      wo_trace stats <FILE>\n\
         \x20      wo_trace top <FILE> [--limit N] [checker flags]\n\
         \x20      wo_trace emit <PROGRAM> --out FILE [--procs N] [--seeds N] [--policy P]\n\
         \x20      wo_trace synth --out FILE [--events N] [--procs N] [--locations N]\n\
         \x20                     [--sync-locations N] [--sync-percent P] [--racy-percent P]\n\
         \x20                     [--seed S]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("wo_trace: bad value for {flag}: {raw}");
        usage()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "check" => cmd_check(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "emit" => cmd_emit(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "--help" | "-h" => usage(),
        other => {
            eprintln!("wo_trace: unknown command {other}");
            usage()
        }
    }
}

/// Parses the shared checker flags, returning leftover positional args.
fn checker_flags(args: &[String], cfg: &mut CheckerConfig) -> Vec<String> {
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("wo_trace: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--shards" => cfg.shards = parse_num(flag, value("--shards")),
            "--threads" => cfg.threads = parse_num(flag, value("--threads")),
            "--batch" => cfg.batch = parse_num(flag, value("--batch")),
            "--max-locations" => {
                cfg.max_tracked_locations = parse_num(flag, value("--max-locations"));
            }
            "--max-sync" => cfg.max_sync_locations = parse_num(flag, value("--max-sync")),
            "--release-writes" => cfg.mode = SyncMode::ReleaseWrites,
            other if other.starts_with("--") => {
                eprintln!("wo_trace: unknown flag {other}");
                usage()
            }
            _ => positional.push(flag.clone()),
        }
    }
    positional
}

fn check_file(args: &[String]) -> Result<(TraceReport, CheckerConfig), ExitCode> {
    let mut cfg = CheckerConfig::default();
    let positional = checker_flags(args, &mut cfg);
    let [file] = positional.as_slice() else { usage() };
    match check_trace_file(Path::new(file), cfg) {
        Ok(report) => Ok((report, cfg)),
        Err(e) => {
            eprintln!("wo_trace: {file}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn verdict_exit(verdict: Verdict) -> ExitCode {
    match verdict {
        Verdict::Drf0 => ExitCode::SUCCESS,
        Verdict::Racy => ExitCode::from(1),
        Verdict::Unknown(_) => ExitCode::from(3),
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (report, _) = match check_file(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    print!("{}", report.canonical_text());
    verdict_exit(report.verdict)
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut limit = 10usize;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--limit" {
            let raw = iter.next().unwrap_or_else(|| {
                eprintln!("wo_trace: --limit needs a value");
                usage()
            });
            limit = parse_num("--limit", raw);
        } else {
            rest.push(flag.clone());
        }
    }
    let (report, _) = match check_file(&rest) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let mut by_count: Vec<_> = report.racy_locations.clone();
    by_count.sort_by_key(|&(loc, count)| (std::cmp::Reverse(count), loc));
    println!("verdict: {}", report.verdict);
    println!("races: {}", report.total_races);
    for (loc, count) in by_count.into_iter().take(limit) {
        println!("{loc}: {count}");
    }
    verdict_exit(report.verdict)
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let [file] = args else { usage() };
    let reader = match File::open(file)
        .map_err(memsim::TraceError::from)
        .and_then(|f| TraceReader::new(BufReader::new(f)))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wo_trace: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = reader;
    let (mut segments, mut events, mut sync_events, mut max_procs) = (0u64, 0u64, 0u64, 0u16);
    loop {
        match reader.next_item() {
            Ok(None) => break,
            Ok(Some(TraceItem::SegmentStart { procs, label, .. })) => {
                segments += 1;
                max_procs = max_procs.max(procs);
                println!("segment {}: procs={procs} label={label:?}", segments - 1);
            }
            Ok(Some(TraceItem::Record(rec))) => {
                events += 1;
                if rec.op.kind.is_sync() {
                    sync_events += 1;
                }
            }
            Ok(Some(TraceItem::SegmentEnd { .. })) => {}
            Err(e) => {
                eprintln!("wo_trace: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!("segments: {segments}");
    println!("events: {events}");
    println!("sync-events: {sync_events}");
    println!("max-procs: {max_procs}");
    ExitCode::SUCCESS
}

fn corpus_program(name: &str) -> Option<Program> {
    Some(match name {
        "dekker" => corpus::fig1_dekker(),
        "handoff" => corpus::fig3_handoff(1),
        "mp-sync" => corpus::message_passing_sync(4),
        "mp-data" => corpus::message_passing_data(),
        "racy-counter" => corpus::racy_counter(2),
        "spinlock" => corpus::spinlock_bounded(2, 2, 4),
        "iriw-sync" => corpus::iriw_sync(),
        _ => return None,
    })
}

fn policy_by_name(name: &str) -> Policy {
    match name {
        "sc" => presets::sc(),
        "relaxed" => presets::relaxed(),
        "wo-def1" => presets::wo_def1(),
        "wo-def2" => presets::wo_def2(),
        other => {
            eprintln!("wo_trace: unknown policy {other} (sc|relaxed|wo-def1|wo-def2)");
            usage()
        }
    }
}

fn cmd_emit(args: &[String]) -> ExitCode {
    let mut out = None;
    let mut procs = 0usize;
    let mut seeds = 8u64;
    let mut policy = presets::wo_def2();
    let mut program_arg = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("wo_trace: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--out" => out = Some(value("--out").to_string()),
            "--procs" => procs = parse_num(flag, value("--procs")),
            "--seeds" => seeds = parse_num(flag, value("--seeds")),
            "--policy" => policy = policy_by_name(value("--policy")),
            other if other.starts_with("--") => {
                eprintln!("wo_trace: unknown flag {other}");
                usage()
            }
            _ => program_arg = Some(flag.clone()),
        }
    }
    let (Some(out), Some(program_arg)) = (out, program_arg) else { usage() };
    let program = match corpus_program(&program_arg) {
        Some(p) => p,
        None => match std::fs::read_to_string(&program_arg) {
            Ok(text) => match parse_program(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("wo_trace: {program_arg}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("wo_trace: {program_arg}: not a corpus name and not readable: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let procs = if procs == 0 { program.num_threads() } else { procs };
    let cells: Vec<sweep::Cell> = (0..seeds)
        .map(|seed| sweep::Cell {
            program: &program,
            config: presets::network_cached(procs, policy, seed),
        })
        .collect();
    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("wo_trace: {out}: {e}");
            return ExitCode::from(2);
        }
    };
    let run = (|| {
        let mut writer = TraceWriter::new(BufWriter::new(file))?;
        let outcomes = sweep::sweep_traced(&cells, 0, &mut writer)?;
        writer.finish()?;
        Ok::<_, std::io::Error>(outcomes)
    })();
    match run {
        Ok(outcomes) => {
            let ok = outcomes.iter().filter(|o| o.ok().is_some()).count();
            println!("emitted {ok}/{} runs of {program_arg} to {out}", outcomes.len());
            if ok == 0 {
                eprintln!("wo_trace: every cell failed; trace is empty");
                return ExitCode::from(2);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wo_trace: {out}: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_synth(args: &[String]) -> ExitCode {
    let mut out = None;
    let mut cfg = SynthConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("wo_trace: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--out" => out = Some(value("--out").to_string()),
            "--events" => cfg.events = parse_num(flag, value("--events")),
            "--procs" => cfg.procs = parse_num(flag, value("--procs")),
            "--locations" => cfg.locations = parse_num(flag, value("--locations")),
            "--sync-locations" => cfg.sync_locations = parse_num(flag, value("--sync-locations")),
            "--sync-percent" => cfg.sync_percent = parse_num(flag, value("--sync-percent")),
            "--racy-percent" => cfg.racy_percent = parse_num(flag, value("--racy-percent")),
            "--seed" => cfg.seed = parse_num(flag, value("--seed")),
            other => {
                eprintln!("wo_trace: unknown flag {other}");
                usage()
            }
        }
    }
    let Some(out) = out else { usage() };
    let run = File::create(&out).and_then(|file| {
        let mut writer = TraceWriter::new(BufWriter::new(file))?;
        write_synth(cfg, "synth", &mut writer)?;
        writer.finish().map(drop)
    });
    match run {
        Ok(()) => {
            println!("wrote {} synthetic events to {out}", cfg.events);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wo_trace: {out}: {e}");
            ExitCode::from(2)
        }
    }
}
