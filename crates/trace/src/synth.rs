//! Deterministic synthetic event streams for benchmarks and determinism
//! tests.
//!
//! A [`SynthStream`] produces a seeded, reproducible mix of data and
//! synchronization operations shaped like a lock-partitioned workload:
//! each sync location guards a disjoint slice of the data locations, and
//! processors acquire (sync read-modify-write), touch guarded data, and
//! release (sync write); a processor holding no lock touches only a
//! private per-processor scratch location. A tunable fraction of data
//! events ignore the locks entirely — those are the intended races, and
//! at `racy_percent: 0` the stream is DRF0 by construction. The stream
//! exists to exercise the *checker* at millions of events, not to
//! simulate real hardware; use memsim for that.

use memory_model::{Loc, OpId, OpKind, Operation, ProcId};
use simx::rng::Xoshiro256;

/// Shape of a synthetic stream.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Processors emitting events.
    pub procs: u16,
    /// Data locations (`Loc(0) ..`).
    pub locations: u32,
    /// Sync locations (placed after the data locations).
    pub sync_locations: u32,
    /// Total events to emit.
    pub events: u64,
    /// Percent of events that are synchronization operations.
    pub sync_percent: u8,
    /// Percent of *data* events that bypass the locking discipline
    /// (0 → the stream is DRF0 by construction; higher → racier).
    pub racy_percent: u8,
    /// RNG seed; equal configs produce byte-equal streams.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            procs: 4,
            locations: 1 << 12,
            sync_locations: 64,
            events: 1 << 20,
            sync_percent: 10,
            racy_percent: 0,
            seed: 0x5EED,
        }
    }
}

/// Per-processor lock discipline state.
#[derive(Clone, Copy)]
struct ProcState {
    /// The lock (sync-location index) the processor currently holds, if
    /// any.
    held: Option<u32>,
    /// Next per-processor sequence number (forms the [`OpId`]).
    seq: u32,
}

/// A deterministic iterator of [`Operation`]s. See the module docs.
///
/// # Examples
///
/// ```
/// use wo_trace::synth::{SynthConfig, SynthStream};
///
/// let cfg = SynthConfig { events: 100, ..SynthConfig::default() };
/// let ops: Vec<_> = SynthStream::new(cfg).collect();
/// assert_eq!(ops.len(), 100);
/// let again: Vec<_> = SynthStream::new(cfg).collect();
/// assert_eq!(ops, again); // same seed, same stream
/// ```
pub struct SynthStream {
    cfg: SynthConfig,
    rng: Xoshiro256,
    procs: Vec<ProcState>,
    /// Which sync locations are currently held by *some* processor —
    /// acquires respect mutual exclusion, so the guarded accesses of two
    /// holders of the same lock are always separated by a release →
    /// acquire synchronization edge.
    lock_free: Vec<bool>,
    emitted: u64,
}

impl SynthStream {
    /// Creates the stream for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `procs`, `locations`, or `sync_locations` is zero — an
    /// empty shape has no meaningful stream.
    #[must_use]
    pub fn new(cfg: SynthConfig) -> Self {
        assert!(cfg.procs > 0, "synth stream needs at least one processor");
        assert!(cfg.locations > 0, "synth stream needs at least one data location");
        assert!(cfg.sync_locations > 0, "synth stream needs at least one sync location");
        SynthStream {
            cfg,
            rng: Xoshiro256::seed_from(cfg.seed),
            procs: vec![ProcState { held: None, seq: 0 }; usize::from(cfg.procs)],
            lock_free: vec![true; cfg.sync_locations as usize],
            emitted: 0,
        }
    }

    /// The processor count the stream declares to a checker or writer.
    #[must_use]
    pub fn procs(&self) -> u16 {
        self.cfg.procs
    }

    fn op(&mut self, p: usize, kind: OpKind, loc: Loc) -> Operation {
        let state = &mut self.procs[p];
        let id = OpId::for_thread_op(ProcId(p as u16), state.seq);
        state.seq += 1;
        self.emitted += 1;
        // Values are irrelevant to race checking; a small counter keeps
        // them varied for format realism.
        let value = u64::from(state.seq % 7);
        Operation {
            id,
            proc: ProcId(p as u16),
            kind,
            loc,
            read_value: kind.is_read().then_some(value),
            write_value: kind.is_write().then_some(value),
        }
    }

    /// The data slice guarded by sync location `lock`.
    fn guarded_loc(&mut self, lock: u32) -> Loc {
        let span = (self.cfg.locations / self.cfg.sync_locations).max(1);
        let base = lock.wrapping_mul(span) % self.cfg.locations;
        let offset = (self.rng.next_u64() % u64::from(span)) as u32;
        Loc((base + offset) % self.cfg.locations)
    }
}

impl Iterator for SynthStream {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        if self.emitted >= self.cfg.events {
            return None;
        }
        let p = self.rng.index(self.procs.len());
        let sync_loc_base = self.cfg.locations;

        // Sync events follow an acquire → release alternation per
        // processor, so sync locations behave like locks.
        if self.rng.chance(u64::from(self.cfg.sync_percent), 100) {
            match self.procs[p].held {
                Some(lock) => {
                    self.procs[p].held = None;
                    self.lock_free[lock as usize] = true;
                    return Some(self.op(p, OpKind::SyncWrite, Loc(sync_loc_base + lock)));
                }
                None => {
                    // Scan from a random start for a *free* lock: mutual
                    // exclusion is what makes the guarded accesses
                    // race-free.
                    let n = self.cfg.sync_locations;
                    let start = (self.rng.next_u64() % u64::from(n)) as u32;
                    for i in 0..n {
                        let lock = (start + i) % n;
                        if self.lock_free[lock as usize] {
                            self.lock_free[lock as usize] = false;
                            self.procs[p].held = Some(lock);
                            return Some(self.op(p, OpKind::SyncRmw, Loc(sync_loc_base + lock)));
                        }
                    }
                    // Every lock is held by someone else: fall through to
                    // a data event on private scratch.
                }
            }
        }

        let kind = if self.rng.chance(1, 2) { OpKind::DataWrite } else { OpKind::DataRead };
        let racy = self.rng.chance(u64::from(self.cfg.racy_percent), 100);
        let loc = match self.procs[p].held {
            Some(lock) if !racy => self.guarded_loc(lock),
            // A processor holding no lock touches only its private
            // scratch location (placed after the sync range): nothing to
            // race with, so `racy_percent: 0` is DRF0 by construction.
            None if !racy => Loc(self.cfg.locations + self.cfg.sync_locations + p as u32),
            _ => Loc((self.rng.next_u64() % u64::from(self.cfg.locations)) as u32),
        };
        Some(self.op(p, kind, loc))
    }
}

/// Writes the whole stream for `cfg` as one segment of `writer` — the
/// synthetic end of the `emit → check` pipeline.
///
/// # Errors
///
/// Returns any I/O error from the sink.
pub fn write_synth<W: std::io::Write>(
    cfg: SynthConfig,
    label: &str,
    writer: &mut memsim::TraceWriter<W>,
) -> std::io::Result<()> {
    let mut stream = SynthStream::new(cfg);
    writer.begin_segment(stream.procs(), false, label)?;
    for op in &mut stream {
        writer.write_op(&op)?;
    }
    writer.end_segment()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerConfig;
    use crate::pipeline::check_ops;
    use crate::Verdict;

    #[test]
    fn stream_is_reproducible_and_sized() {
        let cfg = SynthConfig { events: 5_000, ..SynthConfig::default() };
        let a: Vec<_> = SynthStream::new(cfg).collect();
        let b: Vec<_> = SynthStream::new(cfg).collect();
        assert_eq!(a.len(), 5_000);
        assert_eq!(a, b);
        let other: Vec<_> = SynthStream::new(SynthConfig { seed: 9, ..cfg }).collect();
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn ids_are_unique_per_processor_program_order() {
        let cfg = SynthConfig { events: 2_000, procs: 3, ..SynthConfig::default() };
        let mut next_seq = [0u32; 3];
        for op in SynthStream::new(cfg) {
            let p = op.proc.index();
            assert_eq!(op.id.seq_part(), next_seq[p], "ids must be dense per processor");
            next_seq[p] += 1;
        }
    }

    #[test]
    fn locked_stream_is_drf0_by_construction() {
        let cfg = SynthConfig { events: 50_000, procs: 6, ..SynthConfig::default() };
        let ops: Vec<_> = SynthStream::new(cfg).collect();
        let report = check_ops(&ops, cfg.procs, CheckerConfig::default()).unwrap();
        assert_eq!(report.verdict, Verdict::Drf0, "{}", report.canonical_text());
    }

    #[test]
    fn racy_knob_controls_the_verdict() {
        let racy = SynthConfig {
            events: 20_000,
            locations: 64,
            racy_percent: 30,
            ..SynthConfig::default()
        };
        let ops: Vec<_> = SynthStream::new(racy).collect();
        let report = check_ops(&ops, racy.procs, CheckerConfig::default()).unwrap();
        assert_eq!(report.verdict, Verdict::Racy);
        assert!(report.total_races > 0);
    }

    #[test]
    fn roundtrips_through_the_trace_format() {
        let cfg = SynthConfig { events: 3_000, ..SynthConfig::default() };
        let mut writer = memsim::TraceWriter::new(Vec::new()).unwrap();
        write_synth(cfg, "synth", &mut writer).unwrap();
        let segments = memsim::read_trace(&writer.finish().unwrap()[..]).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].records.len(), 3_000);
        let direct: Vec<_> = SynthStream::new(cfg).collect();
        let decoded: Vec<_> = segments[0].records.iter().map(|r| r.op).collect();
        assert_eq!(direct, decoded);
    }
}
