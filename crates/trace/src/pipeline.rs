//! Drivers connecting event sources to the [`StreamChecker`]: trace files
//! (streamed, bounded memory), live machine runs, and raw operation
//! slices.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use memsim::{RunResult, TraceError, TraceItem, TraceReader};

use crate::checker::{CheckerConfig, IngestError, StreamChecker, TraceReport};

/// Why a pipeline run failed (as opposed to producing a degraded verdict,
/// which is a successful run with [`crate::Verdict::Unknown`]).
#[derive(Debug)]
pub enum PipelineError {
    /// Opening the input failed.
    Io(io::Error),
    /// The trace file was malformed (torn, corrupt, foreign).
    Trace(TraceError),
    /// A decoded event was semantically invalid for its segment.
    Ingest {
        /// The 0-based segment the event belonged to.
        segment: u64,
        /// What was wrong.
        error: IngestError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
            PipelineError::Trace(e) => write!(f, "{e}"),
            PipelineError::Ingest { segment, error } => {
                write!(f, "segment {segment}: {error}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

impl From<TraceError> for PipelineError {
    fn from(e: TraceError) -> Self {
        PipelineError::Trace(e)
    }
}

/// Streams every segment of an open [`TraceReader`] through a checker.
/// Memory stays bounded by the checker's caps plus one decode block — the
/// trace is never materialized.
///
/// # Errors
///
/// [`PipelineError`] on malformed input; decode errors surface exactly as
/// the reader reports them (torn tail → `Truncated`, flipped byte →
/// `Corrupt`), never as a panic.
pub fn check_reader<R: Read>(
    mut reader: TraceReader<R>,
    cfg: CheckerConfig,
) -> Result<TraceReport, PipelineError> {
    let mut checker = StreamChecker::new(cfg);
    let mut segment = 0u64;
    while let Some(item) = reader.next_item()? {
        match item {
            TraceItem::SegmentStart { procs, .. } => checker.begin_segment(procs),
            TraceItem::Record(rec) => checker
                .ingest(&rec.op)
                .map_err(|error| PipelineError::Ingest { segment, error })?,
            TraceItem::SegmentEnd { .. } => {
                checker.end_segment();
                segment += 1;
            }
        }
    }
    Ok(checker.finish())
}

/// Opens `path` and streams it through a checker — the
/// `simulate → stream → verdict` pipeline's consuming end.
///
/// # Errors
///
/// [`PipelineError`] on I/O failure or malformed input.
pub fn check_trace_file(
    path: &Path,
    cfg: CheckerConfig,
) -> Result<TraceReport, PipelineError> {
    let reader = TraceReader::new(BufReader::new(File::open(path)?))?;
    check_reader(reader, cfg)
}

/// Checks one live machine run without serializing it: the records are
/// reordered into [`memsim::checkable_order`] (a weakly ordered machine
/// records operations out of program order, which is not a valid
/// happens-before witness) and ingested directly. Produces the identical
/// report to writing the run with [`memsim::TraceWriter::write_run`] and
/// checking the file.
///
/// # Errors
///
/// [`IngestError`] if the run's records are malformed (a simulator bug,
/// surfaced structurally).
pub fn check_run(run: &RunResult, cfg: CheckerConfig) -> Result<TraceReport, IngestError> {
    let mut checker = StreamChecker::new(cfg);
    let procs = u16::try_from(run.outcome.regs.len()).unwrap_or(u16::MAX);
    checker.begin_segment(procs);
    for rec in &memsim::checkable_order(&run.records) {
        checker.ingest(&rec.op)?;
    }
    checker.end_segment();
    Ok(checker.finish())
}

/// Checks one already-materialized execution (operations in completion
/// order) as a single segment over `procs` processors.
///
/// # Errors
///
/// [`IngestError::ProcOutOfRange`] if an operation names a processor
/// outside `0..procs`.
pub fn check_ops(
    ops: &[memory_model::Operation],
    procs: u16,
    cfg: CheckerConfig,
) -> Result<TraceReport, IngestError> {
    let mut checker = StreamChecker::new(cfg);
    checker.begin_segment(procs);
    for op in ops {
        checker.ingest(op)?;
    }
    checker.end_segment();
    Ok(checker.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use litmus::corpus;
    use memsim::{presets, sweep, Machine, TraceWriter};

    #[test]
    fn live_run_and_trace_file_produce_identical_reports() {
        let program = corpus::fig3_handoff(1);
        let config = presets::network_cached(2, presets::wo_def2(), 7);
        let run = Machine::run_program(&program, &config).unwrap();

        let live = check_run(&run, CheckerConfig::default()).unwrap();

        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer.write_run("handoff", &run).unwrap();
        let bytes = writer.finish().unwrap();
        let streamed =
            check_reader(TraceReader::new(&bytes[..]).unwrap(), CheckerConfig::default())
                .unwrap();

        assert_eq!(live.canonical_text(), streamed.canonical_text());
        assert_eq!(live.verdict, Verdict::Drf0, "the hand-off synchronizes its data");
    }

    #[test]
    fn swept_trace_checks_per_cell_segments() {
        let program = corpus::racy_counter(2);
        let cells: Vec<sweep::Cell> = (0..3)
            .map(|seed| sweep::Cell {
                program: &program,
                config: presets::network_cached(2, presets::relaxed(), seed),
            })
            .collect();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        sweep::sweep_traced(&cells, 2, &mut writer).unwrap();
        let bytes = writer.finish().unwrap();
        let report =
            check_reader(TraceReader::new(&bytes[..]).unwrap(), CheckerConfig::default())
                .unwrap();
        assert_eq!(report.segments, 3);
        assert_eq!(report.verdict, Verdict::Racy, "unsynchronized counter increments race");
    }

    #[test]
    fn truncated_file_yields_structured_error() {
        let program = corpus::fig3_handoff(1);
        let config = presets::network_cached(2, presets::wo_def2(), 7);
        let run = Machine::run_program(&program, &config).unwrap();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer.write_run("torn", &run).unwrap();
        let bytes = writer.finish().unwrap();
        let torn = &bytes[..bytes.len() - 5];
        match check_reader(TraceReader::new(torn).unwrap(), CheckerConfig::default()) {
            Err(PipelineError::Trace(TraceError::Truncated { .. })) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
}
