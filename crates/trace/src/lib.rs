//! # wo-trace — streaming DRF0 race checking over million-event traces
//!
//! The explorer (`litmus::explore`) answers "is this *program* DRF0?" by
//! enumerating interleavings; the simulator (`memsim`) produces single
//! hardware executions. This crate closes the loop at scale: it ingests a
//! stream of memory-operation events — a [`memsim::TraceWriter`] file, a
//! live machine run, a synthetic workload — and maintains an **online**
//! race/DRF0 verdict with **bounded memory**, so million-event traces are
//! checked without materializing an execution.
//!
//! Three layers:
//!
//! * [`StreamChecker`] — the sharded incremental vector-clock engine
//!   (see [`checker`] for the two-phase batch algorithm and the proof
//!   sketch of shard-count independence). It reuses
//!   [`memory_model::race::LocationState`] — the same epoch-compressed
//!   per-location history the exploring `RaceDetector` uses — so the
//!   streaming and exploring checkers cannot drift apart.
//! * [`pipeline`] — drivers: [`check_trace_file`] (streamed, bounded),
//!   [`check_run`] (live [`memsim::RunResult`]), [`check_ops`] (slices).
//! * [`synth`] — deterministic synthetic streams for benchmarks and
//!   determinism tests.
//!
//! The verdict is deliberately three-valued ([`Verdict`]): when a memory
//! cap trims checker state, the report degrades to a structured
//! [`Verdict::Unknown`] with the reason — never a silently wrong `Drf0`
//! and never an abort — mirroring `wo-serve`'s partial-verdict
//! discipline.
//!
//! # Examples
//!
//! Simulate → stream → verdict, end to end:
//!
//! ```
//! use litmus::corpus;
//! use memsim::{presets, sweep, TraceReader, TraceWriter};
//! use wo_trace::{check_reader, CheckerConfig, Verdict};
//!
//! // Simulate: three seeds of the Figure 3 hand-off, traced.
//! let program = corpus::fig3_handoff(1);
//! let cells: Vec<sweep::Cell> = (0..3)
//!     .map(|seed| sweep::Cell {
//!         program: &program,
//!         config: presets::network_cached(2, presets::wo_def2(), seed),
//!     })
//!     .collect();
//! let mut writer = TraceWriter::new(Vec::new()).unwrap();
//! sweep::sweep_traced(&cells, 2, &mut writer).unwrap();
//! let bytes = writer.finish().unwrap();
//!
//! // Stream → verdict: the hand-off synchronizes its data accesses.
//! let reader = TraceReader::new(&bytes[..]).unwrap();
//! let report = check_reader(reader, CheckerConfig::default()).unwrap();
//! assert_eq!(report.verdict, Verdict::Drf0);
//! assert_eq!(report.segments, 3);
//! ```

#![deny(missing_docs)]

pub mod checker;
pub mod pipeline;
pub mod synth;

pub use checker::{
    CheckerConfig, IngestError, StreamChecker, TraceReport, UnknownReason, Verdict,
};
pub use pipeline::{check_ops, check_reader, check_run, check_trace_file, PipelineError};
pub use synth::{write_synth, SynthConfig, SynthStream};
