//! Determinism tests: the checker's canonical report must be
//! byte-identical at any shard and thread count — including when memory
//! caps degrade the verdict.

use wo_trace::synth::{SynthConfig, SynthStream};
use wo_trace::{check_ops, CheckerConfig, UnknownReason, Verdict};

/// `(shards, threads)` grid the reports must agree across.
const GRID: [(usize, usize); 4] = [(1, 1), (2, 2), (5, 4), (8, 3)];

fn report_text(ops: &[memory_model::Operation], procs: u16, base: CheckerConfig) -> Vec<String> {
    GRID.iter()
        .map(|&(shards, threads)| {
            let cfg = CheckerConfig { shards, threads, ..base };
            check_ops(ops, procs, cfg).unwrap().canonical_text()
        })
        .collect()
}

#[test]
fn locked_stream_verdict_is_shard_and_thread_independent() {
    let synth = SynthConfig {
        events: 200_000,
        procs: 6,
        locations: 1 << 10,
        sync_locations: 32,
        sync_percent: 12,
        racy_percent: 0,
        seed: 11,
    };
    let ops: Vec<_> = SynthStream::new(synth).collect();
    let texts = report_text(&ops, synth.procs, CheckerConfig::default());
    for (i, text) in texts.iter().enumerate().skip(1) {
        assert_eq!(
            text, &texts[0],
            "grid point {:?} diverged from serial",
            GRID[i]
        );
    }
    assert!(texts[0].starts_with("verdict: DRF0\n"), "{}", texts[0]);
    assert!(texts[0].contains("events: 200000"), "{}", texts[0]);
}

#[test]
fn racy_stream_reports_identical_races_at_any_parallelism() {
    let synth = SynthConfig {
        events: 150_000,
        procs: 4,
        locations: 256,
        sync_locations: 16,
        sync_percent: 10,
        racy_percent: 25,
        seed: 77,
    };
    let ops: Vec<_> = SynthStream::new(synth).collect();
    let texts = report_text(&ops, synth.procs, CheckerConfig::default());
    assert!(texts[0].starts_with("verdict: RACY\n"), "{}", texts[0]);
    for (i, text) in texts.iter().enumerate().skip(1) {
        assert_eq!(text, &texts[0], "grid point {:?} diverged", GRID[i]);
    }
}

#[test]
fn degraded_verdicts_are_equally_deterministic() {
    // The location cap drops most locations: which ones are dropped must
    // depend only on first-appearance order, never on the shard count.
    let synth = SynthConfig {
        events: 60_000,
        procs: 4,
        locations: 2_000,
        sync_locations: 16,
        sync_percent: 8,
        racy_percent: 0,
        seed: 5,
    };
    let ops: Vec<_> = SynthStream::new(synth).collect();
    let capped = CheckerConfig { max_tracked_locations: 100, ..CheckerConfig::default() };
    let texts = report_text(&ops, synth.procs, capped);
    for (i, text) in texts.iter().enumerate().skip(1) {
        assert_eq!(text, &texts[0], "grid point {:?} diverged under the cap", GRID[i]);
    }
    let report = check_ops(&ops, synth.procs, capped).unwrap();
    assert!(report.dropped_locations > 0, "the cap should have bitten");
    assert_eq!(report.tracked_locations_high_water, 100);
    match report.verdict {
        Verdict::Racy | Verdict::Unknown(UnknownReason::LocationCapExceeded) => {}
        other => panic!("cap must leave Racy or degrade to Unknown, got {other:?}"),
    }
}

#[test]
fn racy_verdict_survives_the_location_cap_when_tracked_locations_race() {
    // All races on one hot location, admitted first: capping the tail
    // locations must not lose the Racy verdict (dropped locations only
    // hide their own races).
    let synth = SynthConfig {
        events: 50_000,
        procs: 4,
        locations: 64,
        sync_locations: 8,
        sync_percent: 10,
        racy_percent: 40,
        seed: 13,
    };
    let ops: Vec<_> = SynthStream::new(synth).collect();
    // Keep every race: the subset check below needs untruncated lists.
    let uncapped_races = CheckerConfig { max_kept_races: usize::MAX, ..CheckerConfig::default() };
    let full = check_ops(&ops, synth.procs, uncapped_races).unwrap();
    assert_eq!(full.verdict, Verdict::Racy);
    assert!(!full.races_truncated);

    // Cap to the first 32 first-seen locations; this deterministic stream
    // still races inside the tracked set.
    let capped_cfg = CheckerConfig { max_tracked_locations: 32, ..uncapped_races };
    let capped = check_ops(&ops, synth.procs, capped_cfg).unwrap();
    assert_eq!(capped.verdict, Verdict::Racy);
    assert!(capped.dropped_events > 0);
    assert!(
        capped.total_races <= full.total_races,
        "dropping locations can only lose races, never invent them"
    );
    // Every race the capped run reports is one the full run found too.
    let full_set: std::collections::HashSet<_> = full.races.iter().copied().collect();
    for race in &capped.races {
        assert!(full_set.contains(race), "capped run invented {race:?}");
    }
}

#[test]
fn batch_size_never_changes_the_report() {
    let synth = SynthConfig {
        events: 30_000,
        procs: 3,
        locations: 128,
        sync_locations: 8,
        sync_percent: 15,
        racy_percent: 10,
        seed: 21,
    };
    let ops: Vec<_> = SynthStream::new(synth).collect();
    let baseline = check_ops(&ops, synth.procs, CheckerConfig::default())
        .unwrap()
        .canonical_text();
    for batch in [1, 7, 1 << 10] {
        let cfg = CheckerConfig { batch, shards: 3, threads: 2, ..CheckerConfig::default() };
        let text = check_ops(&ops, synth.procs, cfg).unwrap().canonical_text();
        assert_eq!(text, baseline, "batch {batch} diverged");
    }
}
