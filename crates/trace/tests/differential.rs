//! Differential test: the streamed race checker against the exploring
//! detector, over fuzz-generated programs.
//!
//! For every kept execution of every generated program, the race set the
//! [`wo_trace::StreamChecker`] computes from the execution's event stream
//! must **exactly equal** the set the sequential
//! [`memory_model::race::RaceDetector`] computes (via `races_of`) — at
//! any shard count. The explorer's aggregate race set must equal the
//! union over executions whenever the exploration completed. Trace-format
//! robustness rides along: a generated trace torn at any byte or with a
//! flipped byte must fail *structurally*, never panic.
//!
//! Seeds default to 500; override with `WO_TRACE_DIFF_SEEDS` (CI smoke
//! uses a smaller corpus).

use std::collections::HashSet;

use litmus::explore::{explore_dpor, ExploreConfig};
use memory_model::drf0::Race;
use memory_model::race::races_of;
use memory_model::SyncMode;
use memsim::{read_trace, TraceError, TraceWriter};
use wo_fuzz::{generate, GenConfig};
use wo_trace::{check_ops, CheckerConfig, Verdict};

fn seeds() -> u64 {
    std::env::var("WO_TRACE_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}

fn explore_cfg() -> ExploreConfig {
    ExploreConfig {
        max_ops_per_execution: 48,
        max_executions: 64,
        keep_executions: true,
        sync_mode: SyncMode::Drf0,
        ..ExploreConfig::default()
    }
}

fn canonical(mut races: Vec<Race>) -> Vec<Race> {
    races.sort_unstable_by_key(|r| (r.first, r.second, r.loc));
    races
}

#[test]
fn streamed_race_sets_match_the_explorer_exactly() {
    let gen_cfg = GenConfig::default();
    let mut checked_execs = 0u64;
    let mut racy_execs = 0u64;
    for seed in 0..seeds() {
        let program = generate(seed, &gen_cfg);
        let report = explore_dpor(&program.program, &explore_cfg());
        let procs = u16::try_from(program.program.num_threads()).unwrap();

        let mut union: HashSet<Race> = HashSet::new();
        for exec in &report.executions {
            let ops = exec.ops().to_vec();
            let expected = canonical(races_of(exec, SyncMode::Drf0));
            union.extend(expected.iter().copied());
            for shards in [1, 3] {
                let cfg = CheckerConfig {
                    shards,
                    threads: 1,
                    // A tiny batch forces multi-batch processing even on
                    // short executions.
                    batch: 16,
                    ..CheckerConfig::default()
                };
                let streamed = check_ops(&ops, procs, cfg).unwrap();
                assert_eq!(
                    streamed.races, expected,
                    "seed {seed} shards {shards}: streamed race set diverged\nprogram:\n{}",
                    program.program
                );
                let expected_verdict =
                    if expected.is_empty() { Verdict::Drf0 } else { Verdict::Racy };
                assert_eq!(streamed.verdict, expected_verdict, "seed {seed}");
            }
            checked_execs += 1;
            if !expected.is_empty() {
                racy_execs += 1;
            }
        }

        // The explorer's aggregate race set is the union over executions
        // whenever every path completed (nothing truncated or capped).
        if report.complete {
            assert_eq!(
                union, report.races,
                "seed {seed}: union of per-execution race sets diverged from the explorer"
            );
        }
    }
    assert!(checked_execs > 0, "the corpus generated no executions");
    assert!(racy_execs > 0, "the corpus never raced — differential power is zero");
}

/// Robustness rider: torn and corrupted generated traces fail
/// structurally.
#[test]
fn generated_trace_survives_tearing_and_corruption_structurally() {
    let program = generate(3, &GenConfig::default());
    let report = explore_dpor(&program.program, &explore_cfg());
    let exec = report.executions.first().expect("at least one execution");
    let ops = exec.ops().to_vec();
    let procs = u16::try_from(program.program.num_threads()).unwrap();

    let mut writer = TraceWriter::new(Vec::new()).unwrap();
    writer.write_execution(&format!("seed{}", program.seed), procs, &ops).unwrap();
    let bytes = writer.finish().unwrap();

    // Torn at every byte past the header: Truncated, never a panic.
    for cut in 13..bytes.len() {
        match read_trace(&bytes[..cut]) {
            Err(TraceError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }

    // Every single-byte corruption: a structured error, never a panic and
    // never silent acceptance of altered bytes.
    for i in 12..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        match read_trace(&bad[..]) {
            Err(TraceError::Corrupt { .. } | TraceError::Truncated { .. }) => {}
            other => panic!("flip at {i}: expected structured error, got {other:?}"),
        }
    }
}
