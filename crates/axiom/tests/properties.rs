//! Properties of the relation enumeration, checked through witnesses.
//!
//! Every witness the engine retains is a claim: *these events, with this
//! reads-from choice, form an SC execution realized by this linearization
//! of the committed relation.* The tests here replay that claim through
//! the operational single-copy memory semantics — the round-trip from
//! "acyclic `po ∪ rf ∪ co ∪ fr`" back to "serializable" that the
//! axiomatic formulation rests on:
//!
//! * reads-from maps every read to a same-location, same-value write (or
//!   the initial value) — well-formedness;
//! * the linearization preserves program order and validates under
//!   atomic memory semantics — so per location the writes really are
//!   totally ordered (coherence) and each read sees exactly its source
//!   with no interposing write (from-reads, and RMW atomicity);
//! * the replayed result is one the engine emitted.

use litmus::corpus;
use litmus::{Program, Reg, Thread};
use memory_model::{Execution, Loc};
use wo_axiom::{analyze, AxiomConfig, Witness};

fn cfg() -> AxiomConfig {
    AxiomConfig {
        max_work: 50_000_000,
        collect_witnesses: 64,
        ..AxiomConfig::default()
    }
}

/// Every program whose witnesses the properties sweep.
fn programs() -> Vec<(String, Program)> {
    let mut out: Vec<(String, Program)> = Vec::new();
    for (name, p) in corpus::drf0_suite() {
        out.push((name.to_string(), p));
    }
    for (name, p) in corpus::racy_suite() {
        out.push((name.to_string(), p));
    }
    // A mixed sync/data program exercising the racy-hunt data rounds.
    out.push((
        "mixed_handoff_plus_noise".into(),
        Program::new(vec![
            Thread::new().write(Loc(1), 5).sync_write(Loc(0), 1).write(Loc(2), 7),
            Thread::new()
                .sync_read(Loc(0), Reg(0))
                .read(Loc(1), Reg(1))
                .write(Loc(2), 9),
        ])
        .unwrap(),
    ));
    out
}

fn check_witness(name: &str, program: &Program, w: &Witness) {
    let initial = program.initial_memory();
    let n = w.events.len();

    // rf well-formedness: same location, same value, write source.
    let mut readers: Vec<usize> = Vec::new();
    for &(r, src) in &w.rf {
        let read = &w.events[r];
        let v = read.read_value.unwrap_or_else(|| panic!("{name}: rf entry on a non-read"));
        match src {
            None => assert_eq!(
                v,
                initial.read(read.loc),
                "{name}: init-rf value mismatch at {:?}",
                read.id
            ),
            Some(s) => {
                let write = &w.events[s];
                assert_eq!(write.loc, read.loc, "{name}: rf crosses locations");
                assert_eq!(
                    write.write_value,
                    Some(v),
                    "{name}: rf value mismatch at {:?}",
                    read.id
                );
            }
        }
        readers.push(r);
    }
    // Every read has exactly one rf entry.
    let mut expect: Vec<usize> = (0..n).filter(|&i| w.events[i].read_value.is_some()).collect();
    readers.sort_unstable();
    expect.sort_unstable();
    assert_eq!(readers, expect, "{name}: rf does not cover the reads exactly once");

    // The linearization is a permutation of the events...
    let mut seen = vec![false; n];
    for &i in &w.linearization {
        assert!(!std::mem::replace(&mut seen[i], true), "{name}: duplicate in linearization");
    }
    assert!(seen.iter().all(|&s| s), "{name}: linearization misses events");
    // ...that preserves program order (events are per-thread runs in
    // index order within each proc).
    let pos: Vec<usize> = {
        let mut pos = vec![0; n];
        for (at, &i) in w.linearization.iter().enumerate() {
            pos[i] = at;
        }
        pos
    };
    for i in 0..n {
        for j in i + 1..n {
            if w.events[i].proc == w.events[j].proc {
                assert!(pos[i] < pos[j], "{name}: linearization violates program order");
            }
        }
    }

    // Replay under single-copy atomic memory semantics: this is the
    // serializability round-trip. It also certifies coherence (the
    // location's writes apply in a total order) and that each read sees
    // exactly its rf source (no interposing write — RMW atomicity).
    let ordered: Vec<_> = w.linearization.iter().map(|&i| w.events[i]).collect();
    let exec = Execution::new(ordered).unwrap_or_else(|e| panic!("{name}: {e:?}"));
    exec.validate_atomic_semantics(&initial)
        .unwrap_or_else(|v| panic!("{name}: linearization not SC-realizable: {v}"));

    // And the last same-location write before each read must be its
    // declared rf source — the from-reads saturation made real.
    for &(r, src) in &w.rf {
        let loc = w.events[r].loc;
        let mut last: Option<usize> = None;
        for &i in &w.linearization {
            if i == r {
                break;
            }
            if w.events[i].loc == loc && w.events[i].write_value.is_some() {
                last = Some(i);
            }
        }
        assert_eq!(last, src, "{name}: rf source is not the latest visible write");
    }
}

#[test]
fn witnesses_replay_operationally() {
    let mut checked = 0;
    for (name, program) in programs() {
        let report = analyze(&program, &cfg());
        assert!(
            report.witnesses.len() <= report.results.len(),
            "{name}: more witnesses than distinct results"
        );
        for w in &report.witnesses {
            check_witness(&name, &program, w);
            let ordered: Vec<_> = w.linearization.iter().map(|&i| w.events[i]).collect();
            let replayed = Execution::new(ordered)
                .unwrap()
                .result(&program.initial_memory());
            assert!(
                report.results.contains(&replayed),
                "{name}: witness replays to a result the engine did not emit"
            );
            checked += 1;
        }
    }
    assert!(checked >= 40, "only {checked} witnesses checked — sweep too thin");
}

#[test]
fn every_emitted_result_can_be_witnessed() {
    // With the witness cap above the result count, each distinct result
    // gets a certificate, and replaying all of them reproduces the result
    // set exactly.
    for (name, program) in programs() {
        let report = analyze(&program, &cfg());
        if report.results.len() > 64 {
            continue;
        }
        let replayed: std::collections::HashSet<_> = report
            .witnesses
            .iter()
            .map(|w| {
                let ordered: Vec<_> = w.linearization.iter().map(|&i| w.events[i]).collect();
                Execution::new(ordered).unwrap().result(&program.initial_memory())
            })
            .collect();
        assert_eq!(replayed, report.results, "{name}: witness set ≠ result set");
    }
}
