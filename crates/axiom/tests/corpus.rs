//! The axiomatic engine against the operational explorer, program by
//! program over the litmus corpus: verdicts must agree whenever both
//! sides are definitive, and SC outcome sets must be *equal* whenever
//! both sides are complete. This is the in-crate slice of the
//! differential contract; `wo-fuzz` extends it to generated programs.

use litmus::corpus;
use litmus::explore::{drf0_verdict, sc_outcomes, Drf0Verdict, ExploreConfig};
use litmus::Program;
use wo_axiom::{analyze, decide_drf0, AxiomConfig, AxiomVerdict};

fn axiom_cfg() -> AxiomConfig {
    AxiomConfig { max_work: 50_000_000, ..AxiomConfig::default() }
}

fn explore_cfg() -> ExploreConfig {
    ExploreConfig {
        max_executions: 1_000_000,
        max_total_steps: 100_000_000,
        ..ExploreConfig::default()
    }
}

/// Differential check for one program; returns whether the axiomatic
/// side was definitive (so suites can assert coverage floors).
fn check(name: &str, program: &Program) -> bool {
    let ax = analyze(program, &axiom_cfg());
    let op = drf0_verdict(program, &explore_cfg());
    match (ax.verdict, op) {
        (AxiomVerdict::Drf0, Drf0Verdict::Drf0) | (AxiomVerdict::Racy, Drf0Verdict::Racy) => {}
        (AxiomVerdict::Unknown(_), _) | (_, Drf0Verdict::BudgetExceeded(_)) => {}
        (a, o) => panic!("{name}: axiomatic {a} vs operational {o}"),
    }
    let sc = sc_outcomes(program, &explore_cfg());
    if ax.complete && sc.complete {
        assert_eq!(
            ax.results, sc.results,
            "{name}: SC outcome sets differ (axiomatic {} vs operational {})",
            ax.results.len(),
            sc.results.len()
        );
    }
    // decide_drf0 must agree with analyze on the verdict whenever it is
    // definitive (it may go Unknown earlier — it shares the work budget
    // with no results to amortize — but must never flip a verdict).
    let quick = decide_drf0(program, &axiom_cfg());
    match (quick.verdict, ax.verdict) {
        (AxiomVerdict::Racy, x) => assert_eq!(x, AxiomVerdict::Racy, "{name}"),
        (AxiomVerdict::Drf0, x) => assert_eq!(x, AxiomVerdict::Drf0, "{name}"),
        (AxiomVerdict::Unknown(_), _) => {}
    }
    !matches!(ax.verdict, AxiomVerdict::Unknown(_))
}

#[test]
fn drf0_suite_agrees() {
    let mut definitive = 0;
    let suite = corpus::drf0_suite();
    for (name, program) in &suite {
        if check(name, program) {
            definitive += 1;
        }
    }
    // The axiomatic engine must actually decide most of the certified
    // suite, not dodge it via Unknown.
    assert!(
        definitive * 10 >= suite.len() * 8,
        "only {definitive}/{} definitive",
        suite.len()
    );
}

#[test]
fn racy_suite_agrees() {
    let mut definitive = 0;
    let suite = corpus::racy_suite();
    for (name, program) in &suite {
        if check(name, program) {
            definitive += 1;
        }
    }
    assert!(
        definitive * 10 >= suite.len() * 8,
        "only {definitive}/{} definitive",
        suite.len()
    );
}

#[test]
fn named_classics_are_exact() {
    // Pin a few classics with their known verdicts so a regression names
    // the program instead of a suite index.
    let cases: Vec<(&str, Program, AxiomVerdict)> = vec![
        ("fig1_dekker", corpus::fig1_dekker(), AxiomVerdict::Racy),
        ("fig1_dekker_fenced", corpus::fig1_dekker_fenced(), AxiomVerdict::Racy),
        ("message_passing_data", corpus::message_passing_data(), AxiomVerdict::Racy),
        ("message_passing_sync", corpus::message_passing_sync(2), AxiomVerdict::Drf0),
        ("iriw_sync", corpus::iriw_sync(), AxiomVerdict::Drf0),
        ("sync_only_tas", corpus::sync_only_tas(), AxiomVerdict::Drf0),
        ("spinlock_bounded", corpus::spinlock_bounded(2, 1, 2), AxiomVerdict::Drf0),
        ("racy_counter", corpus::racy_counter(2), AxiomVerdict::Racy),
    ];
    for (name, program, want) in cases {
        let ax = analyze(&program, &axiom_cfg());
        assert_eq!(ax.verdict, want, "{name}");
        let sc = sc_outcomes(&program, &explore_cfg());
        assert!(ax.complete, "{name}: axiomatic run incomplete");
        assert!(sc.complete, "{name}: operational run incomplete");
        assert_eq!(ax.results, sc.results, "{name}: SC outcome sets differ");
    }
}
