//! Per-thread symbolic path enumeration.
//!
//! The relational engine never interleaves threads. Instead it asks, for
//! each thread in isolation: *which sequences of memory operations could
//! this thread perform, as a function of the values its reads return?*
//! Each read branches over a **value oracle** — the set of values any
//! write (or the initial memory) could supply for that location — and all
//! non-memory instructions are folded away exactly as the idealized
//! interpreter folds them (same register semantics, same cumulative
//! local-step budget, same per-execution op cap).
//!
//! The oracle starts at the initial memory values and grows by fixpoint:
//! enumerate paths, collect every value those paths write, re-enumerate.
//! A value written by the *i*-th memory operation of a real execution has
//! derivation depth at most *i*, and executions are capped at
//! `max_ops_per_execution` operations, so the fixpoint (bounded by that
//! many rounds) covers every realizable value. Extra oracle values that no
//! real execution produces only create candidate tuples the relational
//! phase prunes as inadmissible — the over-approximation is sound.
//!
//! The oracle is additionally **depth-capped per location**: each value
//! carries the length of the shortest same-location write chain that can
//! produce it, and values whose chain is longer than the location's write
//! capacity (the most writes any one execution could issue to it) are
//! never admitted. Without the cap, RMW increment chains let two threads
//! ping-pong the oracle up to the op budget — `fetch_add(+1)` loops make
//! value *n* "available" after *n* rounds even when no execution has *n*
//! writes — and path counts explode combinatorially in values no tuple
//! survives. See `derive` for the soundness argument.

use std::collections::BTreeMap;
#[cfg(test)]
use std::collections::BTreeSet;

use litmus::{Instr, Operand, Program, NUM_REGS};
use memory_model::{Loc, OpId, Operation, ProcId, Value};

use crate::{AxiomConfig, Budget, Stop};

/// The value oracle: for each location, the values a read of it may see,
/// each mapped to the shortest known same-location write-chain depth that
/// produces it (0 for the initial value).
pub type ValueOracle = BTreeMap<Loc, BTreeMap<Value, u32>>;

/// All candidate per-thread paths of a program.
#[derive(Debug, Clone)]
pub struct PathSet {
    /// `per_thread[t]` holds thread `t`'s complete paths, each a sequence
    /// of [`Operation`]s with ids from [`OpId::for_thread_op`].
    pub per_thread: Vec<Vec<Vec<Operation>>>,
    /// Whether some path was cut short by the per-execution op cap or the
    /// local-step limit: the enumeration then under-approximates the
    /// executions of the program and no `Drf0` certificate may be issued.
    pub truncated: bool,
}

/// Enumerates every thread's paths under the value-oracle fixpoint.
///
/// # Errors
///
/// Propagates [`Stop`] when the work budget or deadline gives out.
pub fn stable_paths(
    program: &Program,
    cfg: &AxiomConfig,
    budget: &mut Budget,
) -> Result<PathSet, Stop> {
    let mut oracle: ValueOracle = ValueOracle::new();
    let initial = program.initial_memory();
    for loc in program.locations() {
        oracle.entry(loc).or_default().insert(initial.read(loc), 0);
    }
    // One round per possible derivation depth, plus the final re-enumeration.
    for _ in 0..=cfg.max_ops_per_execution {
        let ps = enumerate_all(program, &oracle, cfg, budget)?;
        let caps = write_caps(&ps, cfg);
        let mut grew = false;
        for paths in &ps.per_thread {
            for path in paths {
                grew |= derive(path, &mut oracle, &caps);
            }
        }
        if !grew {
            return Ok(ps);
        }
    }
    // The loop ran max_ops+1 rounds without converging: the oracle now
    // covers every derivation depth a bounded execution can reach, so one
    // final enumeration under it is complete for realizable paths.
    enumerate_all(program, &oracle, cfg, budget)
}

/// Per-location write capacity of the current path set: an execution
/// takes one path per thread, so it writes a location at most the sum of
/// the per-thread maxima — and never more often than the op cap allows.
fn write_caps(ps: &PathSet, cfg: &AxiomConfig) -> BTreeMap<Loc, u32> {
    let mut caps: BTreeMap<Loc, u32> = BTreeMap::new();
    for paths in &ps.per_thread {
        let mut thread_max: BTreeMap<Loc, u32> = BTreeMap::new();
        for path in paths {
            let mut counts: BTreeMap<Loc, u32> = BTreeMap::new();
            for op in path {
                if op.write_value.is_some() {
                    *counts.entry(op.loc).or_default() += 1;
                }
            }
            for (loc, c) in counts {
                let slot = thread_max.entry(loc).or_default();
                *slot = (*slot).max(c);
            }
        }
        for (loc, c) in thread_max {
            *caps.entry(loc).or_default() += c;
        }
    }
    for c in caps.values_mut() {
        *c = (*c).min(cfg.max_ops_per_execution as u32);
    }
    caps
}

/// Folds one path's written values into the oracle, pruning by chain
/// depth. A write's depth is one more than the deepest same-location
/// value any read at-or-before it in the path consumed: for the path to
/// run at all, every one of those reads must be satisfied, and the chain
/// of writes supporting the deepest of them all executed — as distinct
/// events — before this write did. A value whose shortest chain exceeds
/// the location's write capacity therefore occurs in no execution and is
/// not admitted. Reads at *other* locations don't consume this
/// location's capacity; cross-location laundering is instead bounded by
/// the global fixpoint round count (one round per derivation depth, at
/// most `max_ops_per_execution` of them).
fn derive(path: &[Operation], oracle: &mut ValueOracle, caps: &BTreeMap<Loc, u32>) -> bool {
    let mut grew = false;
    for (i, op) in path.iter().enumerate() {
        let Some(v) = op.write_value else { continue };
        let consumed = path[..=i]
            .iter()
            .filter(|r| r.loc == op.loc)
            .filter_map(|r| r.read_value)
            .map(|rv| {
                oracle.get(&op.loc).and_then(|m| m.get(&rv)).copied().unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        let depth = consumed + 1;
        if depth > caps.get(&op.loc).copied().unwrap_or(0) {
            continue;
        }
        let slot = oracle.entry(op.loc).or_default();
        match slot.get(&v) {
            Some(&old) if old <= depth => {}
            _ => {
                slot.insert(v, depth);
                grew = true;
            }
        }
    }
    grew
}

fn enumerate_all(
    program: &Program,
    oracle: &ValueOracle,
    cfg: &AxiomConfig,
    budget: &mut Budget,
) -> Result<PathSet, Stop> {
    let mut per_thread = Vec::with_capacity(program.num_threads());
    let mut truncated = false;
    for t in 0..program.num_threads() {
        let mut walker = Walker {
            instrs: program.threads()[t].instrs(),
            proc: ProcId(t as u16),
            oracle,
            cfg,
            budget,
            paths: Vec::new(),
            truncated: false,
        };
        walker.walk(0, [0; NUM_REGS], 0, &mut Vec::new())?;
        truncated |= walker.truncated;
        per_thread.push(walker.paths);
    }
    Ok(PathSet { per_thread, truncated })
}

struct Walker<'a> {
    instrs: &'a [Instr],
    proc: ProcId,
    oracle: &'a ValueOracle,
    cfg: &'a AxiomConfig,
    budget: &'a mut Budget,
    paths: Vec<Vec<Operation>>,
    truncated: bool,
}

impl Walker<'_> {
    /// Runs from `pc` mirroring `IdealState::step_inner` exactly: local
    /// instructions execute in place against `regs` under the cumulative
    /// `local_steps` budget; each memory operation appends to `ops`,
    /// branching over the oracle at every read component.
    fn walk(
        &mut self,
        mut pc: usize,
        mut regs: [Value; NUM_REGS],
        mut local_steps: u64,
        ops: &mut Vec<Operation>,
    ) -> Result<(), Stop> {
        // Writes are appended in place as the frame advances `pc`, so the
        // frame must restore `ops` to its entry length on the way out or
        // sibling read branches in the caller would inherit them.
        let base = ops.len();
        loop {
            if pc >= self.instrs.len() {
                self.budget.spend(1)?;
                self.paths.push(ops.clone());
                ops.truncate(base);
                return Ok(());
            }
            let instr = self.instrs[pc];
            if instr.is_memory_op() {
                if ops.len() >= self.cfg.max_ops_per_execution {
                    // This path alone would blow the per-execution cap; any
                    // execution through here is one the operational
                    // explorer truncates too.
                    self.truncated = true;
                    ops.truncate(base);
                    return Ok(());
                }
                self.budget.spend(1)?;
                let id = OpId::for_thread_op(self.proc, ops.len() as u32);
                match instr {
                    Instr::Write { loc, src } => {
                        let v = eval(&regs, src);
                        ops.push(Operation::data_write(id, self.proc, loc, v));
                        pc += 1;
                        continue;
                    }
                    Instr::SyncWrite { loc, src } => {
                        let v = eval(&regs, src);
                        ops.push(Operation::sync_write(id, self.proc, loc, v));
                        pc += 1;
                        continue;
                    }
                    Instr::Read { loc, dst } => {
                        for &v in self.oracle[&loc].keys() {
                            ops.push(Operation::data_read(id, self.proc, loc, v));
                            let mut r = regs;
                            r[dst.index()] = v;
                            self.walk(pc + 1, r, local_steps, ops)?;
                            ops.pop();
                        }
                        ops.truncate(base);
                        return Ok(());
                    }
                    Instr::SyncRead { loc, dst } => {
                        for &v in self.oracle[&loc].keys() {
                            ops.push(Operation::sync_read(id, self.proc, loc, v));
                            let mut r = regs;
                            r[dst.index()] = v;
                            self.walk(pc + 1, r, local_steps, ops)?;
                            ops.pop();
                        }
                        ops.truncate(base);
                        return Ok(());
                    }
                    Instr::TestAndSet { loc, dst } => {
                        for &v in self.oracle[&loc].keys() {
                            ops.push(Operation::sync_rmw(id, self.proc, loc, v, 1));
                            let mut r = regs;
                            r[dst.index()] = v;
                            self.walk(pc + 1, r, local_steps, ops)?;
                            ops.pop();
                        }
                        ops.truncate(base);
                        return Ok(());
                    }
                    Instr::FetchAdd { loc, dst, add } => {
                        let delta = eval(&regs, add);
                        for &v in self.oracle[&loc].keys() {
                            let new = v.wrapping_add(delta);
                            ops.push(Operation::sync_rmw(id, self.proc, loc, v, new));
                            let mut r = regs;
                            r[dst.index()] = v;
                            self.walk(pc + 1, r, local_steps, ops)?;
                            ops.pop();
                        }
                        ops.truncate(base);
                        return Ok(());
                    }
                    _ => unreachable!("memory ops are exactly the six kinds"),
                }
            }
            if local_steps >= self.cfg.local_step_limit {
                self.truncated = true;
                ops.truncate(base);
                return Ok(());
            }
            local_steps += 1;
            self.budget.spend(1)?;
            match instr {
                Instr::Move { dst, src } => {
                    regs[dst.index()] = eval(&regs, src);
                    pc += 1;
                }
                Instr::Add { dst, a, b } => {
                    regs[dst.index()] = eval(&regs, a).wrapping_add(eval(&regs, b));
                    pc += 1;
                }
                Instr::BranchEq { a, b, target } => {
                    pc = if eval(&regs, a) == eval(&regs, b) { target } else { pc + 1 };
                }
                Instr::BranchNe { a, b, target } => {
                    pc = if eval(&regs, a) != eval(&regs, b) { target } else { pc + 1 };
                }
                Instr::Jump { target } => pc = target,
                Instr::Fence => pc += 1,
                _ => unreachable!("memory ops handled above"),
            }
        }
    }
}

fn eval(regs: &[Value; NUM_REGS], operand: Operand) -> Value {
    match operand {
        Operand::Const(v) => v,
        Operand::Reg(r) => regs[r.index()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::{Reg, Thread};

    fn cfg() -> AxiomConfig {
        AxiomConfig::default()
    }

    fn budget() -> Budget {
        Budget::new(u64::MAX, None)
    }

    #[test]
    fn straight_line_writer_has_one_path() {
        let p = Program::new(vec![
            Thread::new().write(Loc(0), 1).write(Loc(1), 2),
            Thread::new().read(Loc(9), Reg(0)),
        ])
        .unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        assert!(!ps.truncated);
        assert_eq!(ps.per_thread[0].len(), 1);
        let path = &ps.per_thread[0][0];
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].write_value, Some(1));
        assert_eq!(path[1].id, OpId::for_thread_op(ProcId(0), 1));
        // Loc 9 is never written: the read branches only over the initial 0.
        assert_eq!(ps.per_thread[1].len(), 1);
        assert_eq!(ps.per_thread[1][0][0].read_value, Some(0));
    }

    #[test]
    fn reads_branch_over_fixpoint_values() {
        // Thread 1 reads what thread 0 may or may not have written.
        let p = Program::new(vec![
            Thread::new().write(Loc(0), 7),
            Thread::new().read(Loc(0), Reg(0)).write(Loc(1), Reg(0)),
        ])
        .unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        let reads: BTreeSet<Value> = ps.per_thread[1]
            .iter()
            .map(|path| path[0].read_value.unwrap())
            .collect();
        assert_eq!(reads, BTreeSet::from([0, 7]));
        // The copied value propagates into the write of each path.
        for path in &ps.per_thread[1] {
            assert_eq!(path[1].write_value, path[0].read_value);
        }
    }

    #[test]
    fn derived_values_reach_the_oracle_transitively() {
        // t0 writes 5 to m0; t1 copies m0 into m1; t2 reads m1. The value 5
        // reaches m1's oracle only on the second fixpoint round.
        let p = Program::new(vec![
            Thread::new().write(Loc(0), 5),
            Thread::new().read(Loc(0), Reg(0)).write(Loc(1), Reg(0)),
            Thread::new().read(Loc(1), Reg(0)),
        ])
        .unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        let reads: BTreeSet<Value> = ps.per_thread[2]
            .iter()
            .map(|path| path[0].read_value.unwrap())
            .collect();
        assert_eq!(reads, BTreeSet::from([0, 5]));
    }

    #[test]
    fn bounded_spin_paths_follow_branch_semantics() {
        // spin: up to 2 sync-reads of the flag, exiting early on nonzero
        // by branching past the last instruction (pc == len halts).
        let mut t = Thread::new();
        for _ in 0..2 {
            t = t.sync_read(Loc(0), Reg(0));
            t = t.branch_ne(Reg(0), 0u64, 4);
        }
        let p = Program::new(vec![Thread::new().sync_write(Loc(0), 1), t]).unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        assert!(!ps.truncated);
        // Spin paths: [1], [0,1], [0,0] — value branching at each read.
        let seqs: BTreeSet<Vec<Value>> = ps.per_thread[1]
            .iter()
            .map(|path| path.iter().map(|op| op.read_value.unwrap()).collect())
            .collect();
        assert_eq!(
            seqs,
            BTreeSet::from([vec![1], vec![0, 1], vec![0, 0]])
        );
    }

    #[test]
    fn unbounded_local_loop_truncates() {
        let p = Program::new(vec![
            Thread::new().jump(0),
            Thread::new().write(Loc(0), 1),
        ])
        .unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        assert!(ps.truncated);
        assert!(ps.per_thread[0].is_empty());
    }

    #[test]
    fn op_cap_truncates_long_paths() {
        let mut t = Thread::new();
        for i in 0..10 {
            t = t.write(Loc(i), 1);
        }
        let p = Program::new(vec![t]).unwrap();
        let tight = AxiomConfig { max_ops_per_execution: 4, ..cfg() };
        let ps = stable_paths(&p, &tight, &mut budget()).unwrap();
        assert!(ps.truncated);
        assert!(ps.per_thread[0].is_empty());
    }

    #[test]
    fn work_budget_stops_enumeration() {
        let p = Program::new(vec![Thread::new().write(Loc(0), 1)]).unwrap();
        let mut b = Budget::new(0, None);
        assert!(matches!(stable_paths(&p, &cfg(), &mut b), Err(Stop::Work)));
    }

    #[test]
    fn fetch_add_wraps_and_branches() {
        let p = Program::new(vec![
            Thread::new().fetch_add(Loc(0), Reg(0), 1u64),
            Thread::new().fetch_add(Loc(0), Reg(0), 1u64),
        ])
        .unwrap();
        let ps = stable_paths(&p, &cfg(), &mut budget()).unwrap();
        // Two single-RMW threads give the location a write capacity of 2,
        // so the depth-capped oracle is exactly {0, 1, 2}: value 3 would
        // need a three-write chain no execution has. (The value 2 is an
        // over-approximation — only the *other* thread can observe it —
        // and the relational phase prunes tuples built from it.)
        let olds: BTreeSet<Value> = ps.per_thread[0]
            .iter()
            .map(|path| path[0].read_value.unwrap())
            .collect();
        assert_eq!(olds, BTreeSet::from([0, 1, 2]));
        for path in &ps.per_thread[0] {
            let op = &path[0];
            assert_eq!(op.write_value, Some(op.read_value.unwrap() + 1));
        }
    }
}
