//! # wo-axiom — a herd-style axiomatic second opinion
//!
//! The operational explorer (`litmus::explore`) decides SC outcome sets
//! and DRF0 verdicts by enumerating interleavings. This crate decides the
//! *same questions* from an entirely different formulation — candidate
//! executions as **relations** — so the two can be differentially tested
//! against each other with no shared code on the deciding path.
//!
//! An execution candidate is a tuple of per-thread symbolic paths
//! ([`paths`]) plus a reads-from choice for every read and a coherence
//! order per location ([`engine`], private). Sequential consistency is the
//! acyclicity of `po ∪ rf ∪ co ∪ fr` ([`relations::Rel`] maintains the
//! transitive closure incrementally and rejects cycles on edge insert),
//! and DRF0 is decided from the derived happens-before — including the
//! Adve–Hill Lemma 1 fast path: when the synchronization skeleton alone
//! orders every conflicting pair, the candidate is certified race-free and
//! its data reads are value-forced, so its unique SC result is emitted
//! with no data-relation enumeration at all.
//!
//! The engine is exact relative to the explorer whenever both sides are
//! definitive: equal DRF0 verdicts, and equal SC outcome sets whenever
//! both report completeness. `wo-fuzz` enforces this differentially; the
//! `wo-serve` daemon answers axiomatically first and falls back to the
//! explorer on [`AxiomVerdict::Unknown`].

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use litmus::explore::ExploreConfig;
use litmus::ideal::IdealState;
use litmus::Program;
use memory_model::{ExecutionResult, Loc, OpId, Operation, SyncMode};

pub mod paths;
pub mod relations;

mod engine;

/// Tuning knobs for the axiomatic search.
#[derive(Debug, Clone)]
pub struct AxiomConfig {
    /// Cap on memory operations per candidate execution — mirrors the
    /// operational explorer's cap so both truncate at the same boundary.
    pub max_ops_per_execution: usize,
    /// Abstract work budget (path steps, relation commits, candidates);
    /// comparable in spirit to the explorer's `max_total_steps`.
    pub max_work: u64,
    /// Which operations synchronize, per the paper's DRF0 vs the
    /// release-writes-only variant.
    pub sync_mode: SyncMode,
    /// Per-thread local-instruction budget, mirroring the interpreter.
    pub local_step_limit: u64,
    /// Wall-clock deadline for the whole analysis.
    pub deadline: Option<Instant>,
    /// How many distinct-result witnesses to retain (0 = none).
    pub collect_witnesses: usize,
    /// Deliberately skip the happens-before check on write/write conflict
    /// pairs in the Lemma 1 fast path — an injectable defect that the fuzz
    /// campaign's self-test uses to prove the differential gate would
    /// catch a real bug here.
    pub inject_hb_bug: bool,
}

impl Default for AxiomConfig {
    fn default() -> Self {
        AxiomConfig {
            max_ops_per_execution: 64,
            max_work: 5_000_000,
            sync_mode: SyncMode::Drf0,
            local_step_limit: IdealState::DEFAULT_LOCAL_STEP_LIMIT,
            deadline: None,
            collect_witnesses: 0,
            inject_hb_bug: false,
        }
    }
}

impl AxiomConfig {
    /// Derives an axiomatic budget from an explorer configuration, so a
    /// caller that would have explored under `cfg` gets comparable limits
    /// (same op cap, same sync mode, same deadline, `max_total_steps` as
    /// the work budget).
    #[must_use]
    pub fn from_explore(cfg: &ExploreConfig) -> Self {
        AxiomConfig {
            max_ops_per_execution: cfg.max_ops_per_execution,
            max_work: cfg.max_total_steps as u64,
            sync_mode: cfg.sync_mode,
            deadline: cfg.deadline,
            ..AxiomConfig::default()
        }
    }
}

/// Why the search stopped before exhausting the candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The abstract work budget ran out.
    Work,
    /// The wall-clock deadline passed.
    Deadline,
    /// A race was found and the caller asked for verdict-only search.
    RaceFound,
}

/// The work/deadline accountant threaded through every phase.
#[derive(Debug)]
pub struct Budget {
    max: u64,
    spent: u64,
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget of `max` abstract work units with an optional deadline.
    #[must_use]
    pub fn new(max: u64, deadline: Option<Instant>) -> Self {
        Budget { max, spent: 0, deadline }
    }

    /// Work units consumed so far.
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Consumes `n` units.
    ///
    /// # Errors
    ///
    /// [`Stop::Work`] when the budget is exhausted; [`Stop::Deadline`]
    /// when the deadline has passed (polled every 1024 units to keep the
    /// clock off the hot path).
    pub fn spend(&mut self, n: u64) -> Result<(), Stop> {
        let before = self.spent >> 10;
        self.spent = self.spent.saturating_add(n);
        if self.spent > self.max {
            return Err(Stop::Work);
        }
        if let Some(d) = self.deadline {
            if self.spent >> 10 != before && Instant::now() >= d {
                return Err(Stop::Deadline);
            }
        }
        Ok(())
    }
}

/// Why the engine could not return a definitive verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The work budget ran out mid-search.
    WorkBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// Some execution outgrew the per-execution op cap or local-step
    /// limit, so the candidate space is under-approximated.
    Truncated,
    /// Some candidate had more undecided synchronization orientations
    /// than the sweep cap.
    OrientationCap,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnknownReason::WorkBudget => "work_budget",
            UnknownReason::Deadline => "deadline",
            UnknownReason::Truncated => "truncated",
            UnknownReason::OrientationCap => "orientation_cap",
        })
    }
}

/// The axiomatic DRF0 verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxiomVerdict {
    /// Every candidate execution is free of data races: certified DRF0.
    Drf0,
    /// Some sequentially consistent execution exhibits a data race.
    Racy,
    /// The search could not certify either way.
    Unknown(UnknownReason),
}

impl fmt::Display for AxiomVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomVerdict::Drf0 => f.write_str("drf0"),
            AxiomVerdict::Racy => f.write_str("racy"),
            AxiomVerdict::Unknown(r) => write!(f, "unknown({r})"),
        }
    }
}

/// A checkable certificate for one emitted result: the event list of the
/// candidate, its reads-from choice, and a linearization of the committed
/// relation. Property tests replay the linearization through the
/// operational memory semantics and demand the same result.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The candidate's events, per-thread paths concatenated in thread
    /// order (so program order is contiguous runs of equal `proc`).
    pub events: Vec<Operation>,
    /// `(reader_index, source)` per read, `None` meaning the initial
    /// memory value.
    pub rf: Vec<(usize, Option<usize>)>,
    /// A topological order of `po ∪ rf ∪ co ∪ fr` — an SC schedule that
    /// realizes the candidate.
    pub linearization: Vec<usize>,
}

/// Everything the axiomatic analysis concluded.
#[derive(Debug)]
pub struct AxiomReport {
    /// The DRF0 verdict. `Racy` is definitive even when the search was
    /// otherwise cut short; `Drf0` is only issued for exhaustive searches.
    pub verdict: AxiomVerdict,
    /// Distinct SC results over all admissible candidates.
    pub results: HashSet<ExecutionResult>,
    /// Whether `results` is the *complete* SC outcome set (no truncation,
    /// no budget stop).
    pub complete: bool,
    /// Admissible candidate executions committed.
    pub candidates: u64,
    /// Per-thread path tuples examined.
    pub tuples: u64,
    /// Abstract work units consumed.
    pub work: u64,
    /// An example race when `verdict == Racy`: the two conflicting
    /// operations and their location.
    pub race: Option<(OpId, OpId, Loc)>,
    /// Up to [`AxiomConfig::collect_witnesses`] certificates for distinct
    /// results.
    pub witnesses: Vec<Witness>,
}

/// Runs the full analysis: DRF0 verdict *and* the SC outcome set.
#[must_use]
pub fn analyze(program: &Program, cfg: &AxiomConfig) -> AxiomReport {
    run(program, cfg, false)
}

/// Decides DRF0 only, stopping at the first race witness — the cheap path
/// for callers that do not need outcome sets.
#[must_use]
pub fn decide_drf0(program: &Program, cfg: &AxiomConfig) -> AxiomReport {
    run(program, cfg, true)
}

fn run(program: &Program, cfg: &AxiomConfig, stop_on_race: bool) -> AxiomReport {
    let mut search = engine::Search::new(program, cfg, stop_on_race);
    let stop = search.sweep(program).err();
    let complete = stop.is_none() && !search.truncated;
    let verdict = if search.racy {
        AxiomVerdict::Racy
    } else if let Some(stop) = stop {
        AxiomVerdict::Unknown(match stop {
            Stop::Work => UnknownReason::WorkBudget,
            Stop::Deadline => UnknownReason::Deadline,
            Stop::RaceFound => unreachable!("RaceFound sets racy"),
        })
    } else if search.truncated {
        AxiomVerdict::Unknown(UnknownReason::Truncated)
    } else if search.orientation_capped {
        AxiomVerdict::Unknown(UnknownReason::OrientationCap)
    } else {
        AxiomVerdict::Drf0
    };
    AxiomReport {
        verdict,
        complete,
        candidates: search.candidates,
        tuples: search.tuples,
        work: search.budget.spent(),
        race: search.race,
        witnesses: std::mem::take(&mut search.witnesses),
        results: search.results,
    }
}
