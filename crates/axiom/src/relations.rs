//! Dense strict partial orders with incremental transitive closure.
//!
//! The axiomatic engine's candidate executions are built by committing
//! relation edges one at a time — a reads-from choice here, a coherence
//! orientation there — and each commitment must immediately expose every
//! ordering consequence (so saturation can derive from-reads edges) and
//! reject cycles (the acyclicity check of the SC axiom). [`Rel`] therefore
//! maintains the *closure* eagerly: `add_edge` unions reachability sets in
//! O(n²/64) words instead of deferring to a per-query graph walk, and a
//! cycle is detected the moment the offending edge is proposed.
//!
//! Candidate executions are small (bounded by the explorer's per-execution
//! op budget, 64 by default), so a row is one or two `u64` words and a
//! whole relation clones in a few cache lines — cheap enough to clone at
//! every branch point of the search instead of threading an undo log.

/// The error returned when an edge would close a cycle: the proposed
/// `a → b` contradicts an already-derived `b → a` (or `a == b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cycle;

/// A strict partial order over `0..n`, stored closed under transitivity.
///
/// Both successor and predecessor bitsets are kept so that edge insertion
/// can union `pred(a) ∪ {a}` against `succ(b) ∪ {b}` directly.
///
/// # Examples
///
/// ```
/// use wo_axiom::relations::Rel;
///
/// let mut r = Rel::new(3);
/// r.add_edge(0, 1).unwrap();
/// r.add_edge(1, 2).unwrap();
/// assert!(r.ordered(0, 2), "closure is maintained eagerly");
/// assert!(r.add_edge(2, 0).is_err(), "cycles are rejected");
/// assert_eq!(r.topo(), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rel {
    n: usize,
    words: usize,
    /// `succ[i*words..]`: bitset of nodes strictly after `i`.
    succ: Vec<u64>,
    /// `pred[i*words..]`: bitset of nodes strictly before `i`.
    pred: Vec<u64>,
}

impl Rel {
    /// The empty order over `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        Rel { n, words, succ: vec![0; n * words], pred: vec![0; n * words] }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the order is over zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn bit(row: &[u64], j: usize) -> bool {
        row[j / 64] & (1 << (j % 64)) != 0
    }

    #[inline]
    fn row<'a>(&self, m: &'a [u64], i: usize) -> &'a [u64] {
        &m[i * self.words..(i + 1) * self.words]
    }

    /// Whether `a` is strictly before `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        Self::bit(self.row(&self.succ, a), b)
    }

    /// Whether `a` and `b` are ordered in either direction.
    #[must_use]
    pub fn comparable(&self, a: usize, b: usize) -> bool {
        self.ordered(a, b) || self.ordered(b, a)
    }

    /// Adds `a → b` and closes transitively.
    ///
    /// Returns `Ok(true)` when the edge added new ordering, `Ok(false)`
    /// when `a → b` was already derived.
    ///
    /// # Errors
    ///
    /// Returns [`Cycle`] (leaving the relation unchanged) when `a == b` or
    /// `b → a` already holds.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<bool, Cycle> {
        if a == b || self.ordered(b, a) {
            return Err(Cycle);
        }
        if self.ordered(a, b) {
            return Ok(false);
        }
        // from = pred(a) ∪ {a}, to = succ(b) ∪ {b}: every element at or
        // before `a` now precedes every element at or after `b`.
        let mut from = self.row(&self.pred, a).to_vec();
        from[a / 64] |= 1 << (a % 64);
        let mut to = self.row(&self.succ, b).to_vec();
        to[b / 64] |= 1 << (b % 64);
        for i in iter_bits(&from) {
            let row = &mut self.succ[i * self.words..(i + 1) * self.words];
            for (dst, src) in row.iter_mut().zip(&to) {
                *dst |= src;
            }
        }
        for j in iter_bits(&to) {
            let row = &mut self.pred[j * self.words..(j + 1) * self.words];
            for (dst, src) in row.iter_mut().zip(&from) {
                *dst |= src;
            }
        }
        Ok(true)
    }

    /// Elements strictly before `i`, ascending.
    #[must_use]
    pub fn predecessors(&self, i: usize) -> Vec<usize> {
        iter_bits(self.row(&self.pred, i)).collect()
    }

    /// Elements strictly after `i`, ascending.
    #[must_use]
    pub fn successors(&self, i: usize) -> Vec<usize> {
        iter_bits(self.row(&self.succ, i)).collect()
    }

    /// Number of ordered pairs.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The deterministic minimum-index-first topological linearization:
    /// among the elements whose predecessors have all been placed, the
    /// smallest index goes next. Always succeeds — the relation is acyclic
    /// by construction.
    ///
    /// # Panics
    ///
    /// Panics if the closure invariant is broken (impossible through the
    /// public API).
    #[must_use]
    pub fn topo(&self) -> Vec<usize> {
        let mut placed = vec![false; self.n];
        let mut out = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let next = (0..self.n)
                .find(|&i| {
                    !placed[i]
                        && iter_bits(self.row(&self.pred, i)).all(|p| placed[p])
                })
                .expect("acyclic relation always has a minimal element");
            placed[next] = true;
            out.push(next);
        }
        out
    }
}

/// Ascending indices of set bits.
fn iter_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(w, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_len() {
        let r = Rel::new(0);
        assert!(r.is_empty());
        assert_eq!(r.topo(), Vec::<usize>::new());
        let r = Rel::new(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.edge_count(), 0);
    }

    #[test]
    fn closure_is_eager() {
        let mut r = Rel::new(4);
        assert_eq!(r.add_edge(0, 1), Ok(true));
        assert_eq!(r.add_edge(2, 3), Ok(true));
        assert!(!r.ordered(0, 3));
        // Bridging 1 → 2 must connect both sides transitively at once.
        assert_eq!(r.add_edge(1, 2), Ok(true));
        assert!(r.ordered(0, 3));
        assert!(r.ordered(0, 2));
        assert!(r.ordered(1, 3));
        assert_eq!(r.add_edge(0, 3), Ok(false), "already derived");
    }

    #[test]
    fn cycles_are_rejected_and_state_unchanged() {
        let mut r = Rel::new(3);
        r.add_edge(0, 1).unwrap();
        r.add_edge(1, 2).unwrap();
        let before = r.clone();
        assert_eq!(r.add_edge(2, 0), Err(Cycle));
        assert_eq!(r.add_edge(1, 1), Err(Cycle), "irreflexive");
        assert_eq!(r, before);
    }

    #[test]
    fn predecessors_and_successors() {
        let mut r = Rel::new(4);
        r.add_edge(0, 2).unwrap();
        r.add_edge(1, 2).unwrap();
        r.add_edge(2, 3).unwrap();
        assert_eq!(r.predecessors(3), vec![0, 1, 2]);
        assert_eq!(r.successors(0), vec![2, 3]);
        assert_eq!(r.predecessors(0), Vec::<usize>::new());
    }

    #[test]
    fn topo_is_deterministic_min_index_first() {
        let mut r = Rel::new(4);
        r.add_edge(3, 1).unwrap();
        // 0, 2 unconstrained; 3 before 1.
        assert_eq!(r.topo(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn topo_respects_all_edges() {
        let mut r = Rel::new(6);
        let edges = [(5, 0), (0, 3), (3, 1), (5, 4)];
        for (a, b) in edges {
            r.add_edge(a, b).unwrap();
        }
        let order = r.topo();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        for (a, b) in edges {
            assert!(pos(a) < pos(b));
        }
    }

    #[test]
    fn wide_relations_cross_word_boundaries() {
        let n = 130;
        let mut r = Rel::new(n);
        for i in 0..n - 1 {
            r.add_edge(i, i + 1).unwrap();
        }
        assert!(r.ordered(0, n - 1));
        assert_eq!(r.add_edge(n - 1, 0), Err(Cycle));
        assert_eq!(r.topo(), (0..n).collect::<Vec<_>>());
        assert_eq!(r.edge_count(), n * (n - 1) / 2);
    }
}
