//! The relational search: tuples → rf/co enumeration → verdicts.
//!
//! For each tuple of per-thread paths (one candidate control-flow +
//! value assignment per thread) the engine commits relations over the
//! combined event list:
//!
//! 1. **Synchronization skeleton.** Reads-from is enumerated for every
//!    read on a *sync-involved* location (a location some sync operation
//!    in the tuple touches), coherence is completed over those locations,
//!    and every choice is closed transitively with from-reads saturation
//!    (`fr = rf⁻¹ ; co`): a cycle in `po ∪ rf ∪ co ∪ fr` kills the branch
//!    — that acyclicity check *is* the SC axiom, and single-event
//!    modeling of read-modify-writes makes their atomicity fall out of it
//!    (a write slotted co-between an RMW's source and the RMW closes an
//!    `fr ; co` cycle).
//! 2. **Lemma 1 fast path.** With the skeleton fixed, happens-before is
//!    derived from program order plus the committed synchronization-order
//!    orientations. If every conflicting pair is hb-ordered the candidate
//!    is race-free, so each remaining data read's value is *forced* to be
//!    the hb-latest write before it (or the initial value): no data
//!    enumeration, no orientation sweep — one admissible check emits the
//!    candidate's unique SC result directly.
//! 3. **Race hunt.** Otherwise data-location rf/co is enumerated with the
//!    same machinery, each admissible completion emits its SC result, and
//!    the still-unordered synchronization pairs are swept over both
//!    orientations: any completion leaving a conflicting pair hb-unordered
//!    witnesses a data race (realizable — every completion linearizes).
//!
//! Both directions of the verdict are exact relative to the operational
//! explorer whenever both are definitive; the `wo-fuzz` differential gate
//! enforces this over the corpus and 500 generated programs.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use litmus::Program;
use memory_model::{ExecutionResult, Loc, Memory, OpId, Operation, SyncMode, Value};

use crate::paths::{stable_paths, PathSet};
use crate::relations::Rel;
use crate::{AxiomConfig, Budget, Stop, Witness};

/// Cap on undecided synchronization-pair orientations swept per candidate
/// (2^16 completions worst case, and the work budget bounds it anyway).
const MAX_ORIENTATION_PAIRS: usize = 16;

/// Where a read's value comes from in a candidate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RfSource {
    /// The initial memory value (every same-location write is after it).
    Init,
    /// The write event at this index.
    Write(usize),
}

/// Which enumeration round is running: the synchronization skeleton or
/// the data-location completion of the race hunt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Round {
    Sync,
    Data,
}

pub(crate) struct Search<'c> {
    cfg: &'c AxiomConfig,
    pub budget: Budget,
    stop_on_race: bool,
    initial: Memory,
    pub results: HashSet<ExecutionResult>,
    pub witnesses: Vec<Witness>,
    pub candidates: u64,
    pub tuples: u64,
    pub racy: bool,
    pub race: Option<(OpId, OpId, Loc)>,
    pub truncated: bool,
    pub orientation_capped: bool,
}

/// Per-tuple derived structure: event classification and the relation
/// skeleton shared by every branch of the search.
struct TupleCtx {
    events: Vec<Operation>,
    /// Writers per location, ascending event index.
    writes_by_loc: BTreeMap<Loc, Vec<usize>>,
    /// Locations touched by at least one synchronization operation.
    sync_locs: BTreeSet<Loc>,
    /// Reads (including RMW read components) on sync-involved locations.
    sync_reads: Vec<usize>,
    /// Reads on pure-data locations.
    data_reads: Vec<usize>,
    /// Cross-processor conflicting pairs that are *not* sync/sync — the
    /// pairs DRF0 calls races when hb leaves them unordered.
    conflicts: Vec<(usize, usize)>,
    /// Cross-processor same-location sync pairs — the carriers of `so`.
    so_pairs: Vec<(usize, usize)>,
    /// Program order as a closed relation (the base every branch clones).
    po: Rel,
}

impl TupleCtx {
    fn new(events: Vec<Operation>) -> Self {
        let n = events.len();
        let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
        let mut sync_locs = BTreeSet::new();
        for (i, e) in events.iter().enumerate() {
            if e.write_value.is_some() {
                writes_by_loc.entry(e.loc).or_default().push(i);
            }
            if e.kind.is_sync() {
                sync_locs.insert(e.loc);
            }
        }
        let mut sync_reads = Vec::new();
        let mut data_reads = Vec::new();
        for (i, e) in events.iter().enumerate() {
            if e.read_value.is_some() {
                if sync_locs.contains(&e.loc) {
                    sync_reads.push(i);
                } else {
                    data_reads.push(i);
                }
            }
        }
        let mut conflicts = Vec::new();
        let mut so_pairs = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (&events[i], &events[j]);
                if a.proc == b.proc {
                    continue;
                }
                if a.so_related(b) {
                    so_pairs.push((i, j));
                } else if a.conflicts_with(b) {
                    conflicts.push((i, j));
                }
            }
        }
        let mut po = Rel::new(n);
        for i in 1..n {
            if events[i].proc == events[i - 1].proc {
                po.add_edge(i - 1, i).expect("po chains are acyclic");
            }
        }
        TupleCtx {
            events,
            writes_by_loc,
            sync_locs,
            sync_reads,
            data_reads,
            conflicts,
            so_pairs,
            po,
        }
    }

    fn round_reads(&self, round: Round) -> &[usize] {
        match round {
            Round::Sync => &self.sync_reads,
            Round::Data => &self.data_reads,
        }
    }

    fn round_locs(&self, round: Round) -> Vec<Loc> {
        self.writes_by_loc
            .keys()
            .copied()
            .filter(|loc| match round {
                Round::Sync => self.sync_locs.contains(loc),
                Round::Data => !self.sync_locs.contains(loc),
            })
            .collect()
    }
}

impl<'c> Search<'c> {
    pub(crate) fn new(program: &Program, cfg: &'c AxiomConfig, stop_on_race: bool) -> Self {
        Search {
            cfg,
            budget: Budget::new(cfg.max_work, cfg.deadline),
            stop_on_race,
            initial: program.initial_memory(),
            results: HashSet::new(),
            witnesses: Vec::new(),
            candidates: 0,
            tuples: 0,
            racy: false,
            race: None,
            truncated: false,
            orientation_capped: false,
        }
    }

    /// Enumerates per-thread path tuples through a pruned recursive join
    /// and processes each survivor through the relational pipeline.
    ///
    /// The join commits one thread's path at a time and abandons a prefix
    /// the moment some read value in it can no longer be supplied by the
    /// initial memory, a write already committed, or *any* path of a
    /// thread still to be chosen. A flat cross-product would visit every
    /// combination of the uncommitted threads behind each such dead
    /// prefix; multi-location sync programs make that the dominant cost
    /// (hundreds of thousands of tuples enumerated to find a few dozen
    /// admissible candidates).
    pub(crate) fn sweep(&mut self, program: &Program) -> Result<(), Stop> {
        let ps = stable_paths(program, self.cfg, &mut self.budget)?;
        self.truncated |= ps.truncated;
        if ps.per_thread.iter().any(Vec::is_empty) {
            // Some thread has no complete path within budget; `truncated`
            // is already set by the walker that gave up.
            return Ok(());
        }
        let n = ps.per_thread.len();
        // `suffix[t]`: per (location, value), the most writes threads
        // `>= t` could still contribute — each thread counted at the max
        // over its own paths, since an execution picks one path apiece.
        let mut suffix: Vec<BTreeMap<Loc, BTreeMap<Value, u32>>> = vec![BTreeMap::new(); n + 1];
        for t in (0..n).rev() {
            let mut thread_max: BTreeMap<Loc, BTreeMap<Value, u32>> = BTreeMap::new();
            for path in &ps.per_thread[t] {
                let mut counts: BTreeMap<Loc, BTreeMap<Value, u32>> = BTreeMap::new();
                for op in path {
                    if let Some(v) = op.write_value {
                        *counts.entry(op.loc).or_default().entry(v).or_default() += 1;
                    }
                }
                for (loc, per_value) in counts {
                    let slot = thread_max.entry(loc).or_default();
                    for (v, c) in per_value {
                        let e = slot.entry(v).or_default();
                        *e = (*e).max(c);
                    }
                }
            }
            let mut acc = suffix[t + 1].clone();
            for (loc, per_value) in thread_max {
                let slot = acc.entry(loc).or_default();
                for (v, c) in per_value {
                    *slot.entry(v).or_default() += c;
                }
            }
            suffix[t] = acc;
        }
        // `min_rest[t]`: fewest ops threads `>= t` can still contribute.
        let mut min_rest = vec![0usize; n + 1];
        for t in (0..n).rev() {
            let shortest = ps.per_thread[t].iter().map(Vec::len).min().unwrap_or(0);
            min_rest[t] = min_rest[t + 1] + shortest;
        }
        self.join(&ps, &suffix, &min_rest, 0, &mut Vec::new())
    }

    fn join(
        &mut self,
        ps: &PathSet,
        suffix: &[BTreeMap<Loc, BTreeMap<Value, u32>>],
        min_rest: &[usize],
        t: usize,
        events: &mut Vec<Operation>,
    ) -> Result<(), Stop> {
        if t == ps.per_thread.len() {
            return self.process_tuple(events.clone());
        }
        for path in &ps.per_thread[t] {
            self.budget.spend(1)?;
            let base = events.len();
            events.extend(path.iter().copied());
            if events.len() + min_rest[t + 1] > self.cfg.max_ops_per_execution {
                // Every completion of this prefix outgrows the op budget —
                // the same boundary the operational explorer truncates at.
                self.truncated = true;
            } else if self.feasible_prefix(events, &suffix[t + 1]) {
                self.join(ps, suffix, min_rest, t + 1, events)?;
            }
            events.truncate(base);
        }
        Ok(())
    }

    /// Whether every read in the committed prefix can still be supplied.
    ///
    /// A plain or sync read of `v` needs *some* source: the initial
    /// memory, a write of `v` in the prefix, or a write of `v` some
    /// unchosen path could contribute. An RMW read is stricter — RMW
    /// atomicity means a same-location write (or the initial value) feeds
    /// **at most one** RMW read, because a second RMW reading the same
    /// source would have the first's write slotted co-between its source
    /// and itself, an `fr ; co` cycle. So per (location, value) the RMW
    /// reads are counted against the writes by pigeonhole, which is what
    /// prunes, e.g., two barrier arrivals both claiming ticket 0. The
    /// check is one-shot, not transitive; with an empty `rest` (at the
    /// leaf) it is exactly the whole-tuple admissibility prefilter.
    fn feasible_prefix(
        &self,
        events: &[Operation],
        rest: &BTreeMap<Loc, BTreeMap<Value, u32>>,
    ) -> bool {
        let mut written: BTreeMap<Loc, BTreeMap<Value, u32>> = BTreeMap::new();
        let mut rmw_reads: BTreeMap<Loc, BTreeMap<Value, u32>> = BTreeMap::new();
        for e in events {
            if let Some(v) = e.write_value {
                *written.entry(e.loc).or_default().entry(v).or_default() += 1;
            }
            if let (Some(v), true) = (e.read_value, e.write_value.is_some()) {
                *rmw_reads.entry(e.loc).or_default().entry(v).or_default() += 1;
            }
        }
        let avail = |loc: Loc, v: Value| -> u32 {
            written.get(&loc).and_then(|m| m.get(&v)).copied().unwrap_or(0)
                + rest.get(&loc).and_then(|m| m.get(&v)).copied().unwrap_or(0)
        };
        for (&loc, per_value) in &rmw_reads {
            for (&v, &n) in per_value {
                if n > avail(loc, v) + u32::from(v == self.init_value(loc)) {
                    return false;
                }
            }
        }
        events.iter().all(|e| match e.read_value {
            Some(v) if e.write_value.is_none() => {
                v == self.init_value(e.loc) || avail(e.loc, v) > 0
            }
            _ => true,
        })
    }

    fn init_value(&self, loc: Loc) -> Value {
        self.initial.read(loc)
    }

    /// Runs one admissible tuple through the relational pipeline. The
    /// join's leaf-level `feasible_prefix` (with an empty suffix) already
    /// established whole-tuple value availability and the RMW pigeonhole.
    fn process_tuple(&mut self, events: Vec<Operation>) -> Result<(), Stop> {
        self.tuples += 1;
        self.budget.spend(events.len() as u64 + 1)?;
        let t = TupleCtx::new(events);
        let rel = t.po.clone();
        let rf = vec![None; t.events.len()];
        self.rf_search(&t, Round::Sync, 0, rel, rf)
    }

    /// Enumerates reads-from for the `round`'s reads, then hands the
    /// branch to coherence completion.
    fn rf_search(
        &mut self,
        t: &TupleCtx,
        round: Round,
        i: usize,
        rel: Rel,
        rf: Vec<Option<RfSource>>,
    ) -> Result<(), Stop> {
        let reads = t.round_reads(round);
        if i == reads.len() {
            return self.co_search(t, round, rel, rf);
        }
        self.budget.spend(1)?;
        let r = reads[i];
        let ev = t.events[r];
        let v = ev.read_value.expect("round lists hold reads");
        static NO_WRITES: Vec<usize> = Vec::new();
        let writes = t.writes_by_loc.get(&ev.loc).unwrap_or(&NO_WRITES);
        for &w in writes {
            if w == r || t.events[w].write_value != Some(v) {
                continue;
            }
            let mut rel2 = rel.clone();
            if rel2.add_edge(w, r).is_err() {
                continue;
            }
            let mut rf2 = rf.clone();
            rf2[r] = Some(RfSource::Write(w));
            self.rf_search(t, round, i + 1, rel2, rf2)?;
        }
        if v == self.init_value(ev.loc) {
            // Reading the initial value forces every same-location write
            // after the read (`fr` against the hypothetical init write).
            let mut rel2 = rel.clone();
            if writes.iter().all(|&w| w == r || rel2.add_edge(r, w).is_ok()) {
                let mut rf2 = rf;
                rf2[r] = Some(RfSource::Init);
                self.rf_search(t, round, i + 1, rel2, rf2)?;
            }
        }
        Ok(())
    }

    /// Saturates from-reads: whenever coherence orders `w1` before `w2`,
    /// every reader of `w1` must complete before `w2`. Returns `false`
    /// when the branch closes a cycle (candidate inadmissible).
    fn saturate(&mut self, t: &TupleCtx, rel: &mut Rel, rf: &[Option<RfSource>]) -> Result<bool, Stop> {
        loop {
            self.budget.spend(1)?;
            let mut changed = false;
            for writes in t.writes_by_loc.values() {
                for &w1 in writes {
                    for &w2 in writes {
                        if w1 == w2 || !rel.ordered(w1, w2) {
                            continue;
                        }
                        for (r, src) in rf.iter().enumerate() {
                            // `r == w2` is an RMW reading from w1: its own
                            // write needs no fr edge to itself.
                            if *src != Some(RfSource::Write(w1)) || r == w2 {
                                continue;
                            }
                            match rel.add_edge(r, w2) {
                                Err(_) => return Ok(false),
                                Ok(added) => changed |= added,
                            }
                        }
                    }
                }
            }
            if !changed {
                return Ok(true);
            }
        }
    }

    /// Completes coherence over the `round`'s locations: saturate, then
    /// branch on the first still-unordered write pair.
    fn co_search(
        &mut self,
        t: &TupleCtx,
        round: Round,
        mut rel: Rel,
        rf: Vec<Option<RfSource>>,
    ) -> Result<(), Stop> {
        if !self.saturate(t, &mut rel, &rf)? {
            return Ok(());
        }
        for loc in t.round_locs(round) {
            let writes = &t.writes_by_loc[&loc];
            for (x, &w1) in writes.iter().enumerate() {
                for &w2 in &writes[x + 1..] {
                    if rel.comparable(w1, w2) {
                        continue;
                    }
                    self.budget.spend(1)?;
                    let mut fwd = rel.clone();
                    if fwd.add_edge(w1, w2).is_ok() {
                        self.co_search(t, round, fwd, rf.clone())?;
                    }
                    let mut back = rel;
                    if back.add_edge(w2, w1).is_ok() {
                        self.co_search(t, round, back, rf)?;
                    }
                    return Ok(());
                }
            }
        }
        match round {
            Round::Sync => self.stage_b(t, rel, rf),
            Round::Data => {
                self.emit(t, &rel, &rf);
                self.race_sweep(t, &rel)
            }
        }
    }

    /// Happens-before from program order plus the synchronization-order
    /// orientations already committed in `rel`, filtered by [`SyncMode`].
    fn forced_hb(&self, t: &TupleCtx, rel: &Rel) -> Rel {
        let mut hb = t.po.clone();
        for &(a, b) in &t.so_pairs {
            let (src, dst) = if rel.ordered(a, b) {
                (a, b)
            } else if rel.ordered(b, a) {
                (b, a)
            } else {
                continue;
            };
            let releases = match self.cfg.sync_mode {
                SyncMode::Drf0 => true,
                SyncMode::ReleaseWrites => t.events[src].kind.is_write(),
            };
            if releases {
                // Every hb edge is already in `rel`, so no cycle can arise.
                let _ = hb.add_edge(src, dst);
            }
        }
        hb
    }

    /// The Lemma 1 fast path, entered with the synchronization skeleton
    /// complete: if happens-before already orders every conflicting pair,
    /// the candidate is race-free and its data reads are value-forced —
    /// emit the unique SC result without enumerating data relations.
    fn stage_b(&mut self, t: &TupleCtx, rel: Rel, rf: Vec<Option<RfSource>>) -> Result<(), Stop> {
        self.budget.spend(1)?;
        let hb0 = self.forced_hb(t, &rel);
        let race_free = t.conflicts.iter().all(|&(a, b)| {
            // Injectable defect for the fuzz campaign's self-test: claim
            // write/write conflicts are always ordered.
            (self.cfg.inject_hb_bug
                && t.events[a].kind.is_write()
                && t.events[b].kind.is_write())
                || hb0.comparable(a, b)
        });
        if !race_free {
            return self.rf_search(t, Round::Data, 0, rel, rf);
        }
        let mut rf = rf;
        for &r in &t.data_reads {
            let ev = t.events[r];
            // hb-latest same-location write before the read; race-freedom
            // makes the candidates totally ordered, so the greedy max is
            // the unique latest.
            let mut latest: Option<usize> = None;
            if let Some(writes) = t.writes_by_loc.get(&ev.loc) {
                for &w in writes {
                    if hb0.ordered(w, r) && latest.is_none_or(|cur| hb0.ordered(cur, w)) {
                        latest = Some(w);
                    }
                }
            }
            let forced = latest
                .map(|w| t.events[w].write_value.expect("writers write"))
                .unwrap_or_else(|| self.init_value(ev.loc));
            if ev.read_value != Some(forced) {
                return Ok(()); // inadmissible: no execution reads this value
            }
            rf[r] = Some(latest.map_or(RfSource::Init, RfSource::Write));
        }
        self.emit(t, &rel, &rf);
        Ok(())
    }

    /// Records an admissible candidate's result (and witness, when
    /// collecting): read values straight from the event annotations,
    /// final memory from each location's coherence-maximal write.
    fn emit(&mut self, t: &TupleCtx, rel: &Rel, rf: &[Option<RfSource>]) {
        self.candidates += 1;
        let mut mem = self.initial.clone();
        for (loc, writes) in &t.writes_by_loc {
            let mut last = writes[0];
            for &w in &writes[1..] {
                if rel.ordered(last, w) {
                    last = w;
                }
            }
            mem.write(*loc, t.events[last].write_value.expect("writers write"));
        }
        let reads = t
            .events
            .iter()
            .filter_map(|e| e.read_value.map(|v| (e.id, v)))
            .collect();
        let result = ExecutionResult { reads, final_memory: mem.snapshot() };
        let fresh = self.results.insert(result);
        if fresh && self.witnesses.len() < self.cfg.collect_witnesses {
            self.witnesses.push(Witness {
                events: t.events.clone(),
                rf: rf
                    .iter()
                    .enumerate()
                    .filter_map(|(i, src)| {
                        src.map(|s| {
                            (i, match s {
                                RfSource::Init => None,
                                RfSource::Write(w) => Some(w),
                            })
                        })
                    })
                    .collect(),
                linearization: rel.topo(),
            });
        }
    }

    /// Decides whether this fully-committed candidate witnesses a race:
    /// sweeps every consistent orientation of the still-undecided
    /// synchronization pairs, and reports a race the moment any completion
    /// leaves a conflicting pair hb-unordered.
    fn race_sweep(&mut self, t: &TupleCtx, rel: &Rel) -> Result<(), Stop> {
        if self.racy && !self.stop_on_race {
            return Ok(()); // verdict already settled; results still accrue
        }
        let hb = self.forced_hb(t, rel);
        if t.conflicts.iter().all(|&(a, b)| hb.comparable(a, b)) {
            return Ok(()); // more so edges can only add order: race-free
        }
        let undecided: Vec<(usize, usize)> = t
            .so_pairs
            .iter()
            .copied()
            .filter(|&(a, b)| {
                !rel.comparable(a, b)
                    && match self.cfg.sync_mode {
                        SyncMode::Drf0 => true,
                        // A read/read sync pair carries no edge in either
                        // orientation under ReleaseWrites: skip it.
                        SyncMode::ReleaseWrites => {
                            t.events[a].kind.is_write() || t.events[b].kind.is_write()
                        }
                    }
            })
            .collect();
        if undecided.len() > MAX_ORIENTATION_PAIRS {
            self.orientation_capped = true;
            return Ok(());
        }
        self.orient(t, rel.clone(), &undecided, 0)
    }

    fn orient(
        &mut self,
        t: &TupleCtx,
        rel: Rel,
        undecided: &[(usize, usize)],
        i: usize,
    ) -> Result<(), Stop> {
        if self.racy && !self.stop_on_race {
            return Ok(());
        }
        self.budget.spend(1)?;
        if i == undecided.len() {
            let hb = self.forced_hb(t, &rel);
            for &(a, b) in &t.conflicts {
                if !hb.comparable(a, b) {
                    self.racy = true;
                    self.race.get_or_insert((
                        t.events[a].id,
                        t.events[b].id,
                        t.events[a].loc,
                    ));
                    if self.stop_on_race {
                        return Err(Stop::RaceFound);
                    }
                    return Ok(());
                }
            }
            return Ok(());
        }
        let (a, b) = undecided[i];
        if rel.comparable(a, b) {
            return self.orient(t, rel, undecided, i + 1);
        }
        let mut fwd = rel.clone();
        if fwd.add_edge(a, b).is_ok() {
            self.orient(t, fwd, undecided, i + 1)?;
        }
        let mut back = rel;
        if back.add_edge(b, a).is_ok() {
            self.orient(t, back, undecided, i + 1)?;
        }
        Ok(())
    }
}
