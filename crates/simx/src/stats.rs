//! Counters, histograms and summary statistics.
//!
//! The benchmark harness aggregates simulator output with these types; they
//! are deliberately simple (integer cycle counts, exact histograms) so
//! results are reproducible across platforms — no floating-point
//! accumulation order issues.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing named counter.
///
/// # Examples
///
/// ```
/// use simx::stats::Counter;
///
/// let mut c = Counter::new("bus_transactions");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter { name: name.into(), value: 0 }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// An exact histogram over `u64` samples.
///
/// Stores every distinct sample value with its multiplicity, which is cheap
/// for cycle-count distributions (a handful of distinct latencies) and makes
/// quantiles exact.
///
/// # Examples
///
/// ```
/// use simx::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for x in [1, 2, 2, 3, 100] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(100));
/// assert_eq!(h.quantile(0.5), Some(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        *self.buckets.entry(sample).or_insert(0) += 1;
        self.count += 1;
        self.sum += u128::from(sample);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Arithmetic mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The exact `q`-quantile (nearest-rank), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (&value, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(value);
            }
        }
        unreachable!("rank within count must be found")
    }

    /// Iterates over `(value, multiplicity)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (value, n) in other.iter() {
            *self.buckets.entry(value).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.max(), self.mean()) {
            (Some(min), Some(max), Some(mean)) => write!(
                f,
                "n={} min={} p50={} mean={:.1} max={}",
                self.count,
                min,
                self.quantile(0.5).expect("non-empty histogram has a median"),
                mean,
                max
            ),
            _ => write!(f, "n=0"),
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for x in iter {
            h.record(x);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x = 10");
    }

    #[test]
    fn histogram_summary() {
        let h: Histogram = [5u64, 1, 3, 3, 8].into_iter().collect();
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.95), Some(95));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_combines() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(1, 1), (2, 2), (3, 1)]);
    }

    #[test]
    fn extend_records_all() {
        let mut h = Histogram::new();
        h.extend([7u64; 3]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.to_string(), "n=3 min=7 p50=7 mean=7.0 max=7");
    }

    #[test]
    fn display_empty() {
        assert_eq!(Histogram::new().to_string(), "n=0");
    }
}
