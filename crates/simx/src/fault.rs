//! Deterministic fault injection for event delivery.
//!
//! A [`FaultPlan`] is a seeded stream of per-message perturbation
//! decisions: extra latency, duplication, detected drops (the sender is
//! NACKed and may retry) and undetected drops ("blackholes"). Simulators
//! consult the plan once per message send; because the plan draws from a
//! private [`Xoshiro256`] stream, the whole perturbation schedule is a
//! pure function of the seed and the sequence of `decide` calls — a
//! failing chaos run replays exactly from its printed seed.
//!
//! The plan deliberately knows nothing about protocols. Callers describe
//! each message with two bits — *is it idempotent* (safe to deliver
//! twice) and *is it an acknowledgement* — and apply the returned
//! [`FaultDecision`] themselves, which keeps protocol invariants (such as
//! per-channel FIFO) where they belong: in the interconnect model.
//!
//! # Examples
//!
//! ```
//! use simx::fault::{FaultConfig, FaultDecision, FaultPlan};
//!
//! let mut plan = FaultPlan::new(7, FaultConfig::drop_heavy());
//! match plan.decide(false, false) {
//!     FaultDecision::Deliver { extra_delay, .. } => assert!(extra_delay <= 64),
//!     FaultDecision::Drop | FaultDecision::Blackhole => {}
//! }
//! // Same seed, same stream of decisions.
//! let mut replay = FaultPlan::new(7, FaultConfig::drop_heavy());
//! assert_eq!(replay.decide(false, false), plan.history()[0]);
//! ```

use crate::rng::Xoshiro256;

/// A probability expressed as an exact rational `num / den`, so fault
/// configurations stay `Eq`/hashable and draws stay integer-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chance {
    /// Numerator; `0` means never.
    pub num: u32,
    /// Denominator; must be non-zero.
    pub den: u32,
}

impl Chance {
    /// Probability zero.
    #[must_use]
    pub const fn never() -> Self {
        Chance { num: 0, den: 1 }
    }

    /// Probability one.
    #[must_use]
    pub const fn always() -> Self {
        Chance { num: 1, den: 1 }
    }

    /// `num / den`.
    #[must_use]
    pub const fn of(num: u32, den: u32) -> Self {
        Chance { num, den }
    }

    /// Whether this chance is well-formed (`den > 0`, `num <= den`).
    #[must_use]
    pub const fn is_valid(self) -> bool {
        self.den > 0 && self.num <= self.den
    }

    fn roll(self, rng: &mut Xoshiro256) -> bool {
        self.num > 0 && rng.chance(u64::from(self.num), u64::from(self.den))
    }
}

/// What a [`FaultPlan`] does to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver the message, possibly late and possibly twice.
    Deliver {
        /// Extra cycles added on top of the model's nominal latency.
        extra_delay: u64,
        /// Deliver a second copy (only offered for idempotent messages).
        duplicate: bool,
    },
    /// The fabric detects the loss and NACKs the sender, which may retry
    /// under the plan's backoff policy.
    Drop,
    /// The message vanishes without notification — the lever for
    /// exercising deadlock/livelock watchdogs.
    Blackhole,
}

/// Knobs for a fault plan. All-zero chances (see [`FaultConfig::off`])
/// reproduce the unperturbed simulator exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Upper bound (inclusive) on injected extra latency per delayed
    /// message.
    pub extra_latency_max: u64,
    /// Probability a message is delayed by `1..=extra_latency_max`.
    pub delay_chance: Chance,
    /// Probability an idempotent message is delivered twice.
    pub dup_chance: Chance,
    /// Probability of a detected drop (sender NACKed, retried with
    /// backoff).
    pub drop_chance: Chance,
    /// Probability of an undetected drop.
    pub blackhole_chance: Chance,
    /// Silently discard every acknowledgement-class message — a
    /// deterministic "dead ack channel" used by watchdog fixtures.
    pub ack_blackhole: bool,
    /// Detected-drop retries allowed per message before the sender gives
    /// up ([`crate::fault::FaultStats::exhausted`] counts give-ups).
    pub max_retries: u32,
    /// Base of the exponential backoff applied between retries, in
    /// cycles: retry *n* waits `backoff_base << n`.
    pub backoff_base: u64,
}

impl FaultConfig {
    /// No perturbation at all.
    #[must_use]
    pub const fn off() -> Self {
        FaultConfig {
            extra_latency_max: 0,
            delay_chance: Chance::never(),
            dup_chance: Chance::never(),
            drop_chance: Chance::never(),
            blackhole_chance: Chance::never(),
            ack_blackhole: false,
            max_retries: 0,
            backoff_base: 0,
        }
    }

    /// Heavy, highly variable latency; no loss.
    #[must_use]
    pub const fn latency_heavy() -> Self {
        FaultConfig {
            extra_latency_max: 200,
            delay_chance: Chance::of(1, 2),
            ..Self::off()
        }
    }

    /// Frequent duplication of idempotent messages plus mild jitter.
    #[must_use]
    pub const fn dup_heavy() -> Self {
        FaultConfig {
            extra_latency_max: 32,
            delay_chance: Chance::of(1, 4),
            dup_chance: Chance::of(1, 3),
            ..Self::off()
        }
    }

    /// Frequent detected drops with generous retry budget plus mild
    /// jitter.
    #[must_use]
    pub const fn drop_heavy() -> Self {
        FaultConfig {
            extra_latency_max: 64,
            delay_chance: Chance::of(1, 4),
            drop_chance: Chance::of(1, 3),
            max_retries: 16,
            backoff_base: 8,
            ..Self::off()
        }
    }

    /// Whether every chance is well-formed and the latency/backoff knobs
    /// are consistent (a drop chance needs a retry budget).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let chances = [
            self.delay_chance,
            self.dup_chance,
            self.drop_chance,
            self.blackhole_chance,
        ];
        chances.iter().all(|c| c.is_valid())
            && (self.delay_chance.num == 0 || self.extra_latency_max > 0)
            && (self.drop_chance.num == 0 || self.max_retries > 0)
    }

    /// Backoff before retry number `attempt` (0-based), in cycles.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        // Cap the shift so a large retry budget cannot overflow.
        self.backoff_base.saturating_mul(1u64 << attempt.min(16))
    }
}

/// Counters describing what a plan actually did — surfaced in run
/// statistics and diagnostic dumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages the plan saw.
    pub messages: u64,
    /// Messages delivered with extra latency.
    pub delayed: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Detected drops (each NACKs its sender once).
    pub dropped: u64,
    /// Undetected drops.
    pub blackholed: u64,
    /// Retries performed after detected drops.
    pub retries: u64,
    /// Messages whose senders ran out of retries.
    pub exhausted: u64,
}

/// A seeded, replayable schedule of fault decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Xoshiro256,
    stats: FaultStats,
    history: Vec<FaultDecision>,
}

impl FaultPlan {
    /// Creates a plan whose decisions are fully determined by `seed` and
    /// the order of [`FaultPlan::decide`] calls.
    #[must_use]
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan {
            config,
            rng: Xoshiro256::seed_from(seed),
            stats: FaultStats::default(),
            history: Vec::new(),
        }
    }

    /// The configuration this plan draws from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of one message. `dupable` marks messages that are
    /// safe to deliver twice; `is_ack` marks acknowledgement-class
    /// messages (subject to [`FaultConfig::ack_blackhole`]).
    pub fn decide(&mut self, dupable: bool, is_ack: bool) -> FaultDecision {
        self.stats.messages += 1;
        // The deterministic ack blackhole must not consume an rng roll, so
        // it short-circuits ahead of the probabilistic one.
        let decision = if (is_ack && self.config.ack_blackhole)
            || self.config.blackhole_chance.roll(&mut self.rng)
        {
            FaultDecision::Blackhole
        } else if self.config.drop_chance.roll(&mut self.rng) {
            FaultDecision::Drop
        } else {
            let extra_delay = if self.config.delay_chance.roll(&mut self.rng) {
                self.rng.range_u64(1, self.config.extra_latency_max + 1)
            } else {
                0
            };
            let duplicate = dupable && self.config.dup_chance.roll(&mut self.rng);
            FaultDecision::Deliver { extra_delay, duplicate }
        };
        match decision {
            FaultDecision::Deliver { extra_delay, duplicate } => {
                if extra_delay > 0 {
                    self.stats.delayed += 1;
                }
                if duplicate {
                    self.stats.duplicated += 1;
                }
            }
            FaultDecision::Drop => self.stats.dropped += 1,
            FaultDecision::Blackhole => self.stats.blackholed += 1,
        }
        self.history.push(decision);
        decision
    }

    /// Backoff before retry number `attempt` (0-based), in cycles.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.config.backoff(attempt)
    }

    /// Records that a sender retried after a detected drop.
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Records that a sender gave up after exhausting its retry budget.
    pub fn note_exhausted(&mut self) {
        self.stats.exhausted += 1;
    }

    /// What the plan has done so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Every decision taken, in order — used by replay assertions.
    #[must_use]
    pub fn history(&self) -> &[FaultDecision] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_always_delivers_unperturbed() {
        let mut plan = FaultPlan::new(3, FaultConfig::off());
        for i in 0..1000 {
            let d = plan.decide(i % 2 == 0, i % 3 == 0);
            assert_eq!(d, FaultDecision::Deliver { extra_delay: 0, duplicate: false });
        }
        assert_eq!(plan.stats().messages, 1000);
        assert_eq!(plan.stats().delayed, 0);
        assert_eq!(plan.stats().dropped, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::new(42, FaultConfig::drop_heavy());
        let mut b = FaultPlan::new(42, FaultConfig::drop_heavy());
        for i in 0..500 {
            assert_eq!(a.decide(i % 2 == 0, false), b.decide(i % 2 == 0, false));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.history(), b.history());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1, FaultConfig::drop_heavy());
        let mut b = FaultPlan::new(2, FaultConfig::drop_heavy());
        let same = (0..200)
            .filter(|_| a.decide(false, false) == b.decide(false, false))
            .count();
        assert!(same < 200, "plans with different seeds should differ");
    }

    #[test]
    fn drop_heavy_actually_drops() {
        let mut plan = FaultPlan::new(9, FaultConfig::drop_heavy());
        for _ in 0..1000 {
            plan.decide(false, false);
        }
        let s = *plan.stats();
        assert!(s.dropped > 100, "expected many drops, got {}", s.dropped);
        assert!(s.delayed > 50, "expected many delays, got {}", s.delayed);
        assert_eq!(s.blackholed, 0);
    }

    #[test]
    fn duplication_only_offered_to_dupable_messages() {
        let mut plan = FaultPlan::new(5, FaultConfig::dup_heavy());
        for _ in 0..500 {
            if let FaultDecision::Deliver { duplicate, .. } = plan.decide(false, false) {
                assert!(!duplicate, "non-idempotent messages must never duplicate");
            }
        }
        let mut plan = FaultPlan::new(5, FaultConfig::dup_heavy());
        let dups = (0..500)
            .filter(|_| {
                matches!(
                    plan.decide(true, false),
                    FaultDecision::Deliver { duplicate: true, .. }
                )
            })
            .count();
        assert!(dups > 50, "dupable messages should duplicate often, got {dups}");
    }

    #[test]
    fn ack_blackhole_kills_every_ack() {
        let config = FaultConfig { ack_blackhole: true, ..FaultConfig::off() };
        let mut plan = FaultPlan::new(0, config);
        for _ in 0..100 {
            assert_eq!(plan.decide(false, true), FaultDecision::Blackhole);
            assert_eq!(
                plan.decide(false, false),
                FaultDecision::Deliver { extra_delay: 0, duplicate: false }
            );
        }
        assert_eq!(plan.stats().blackholed, 100);
    }

    #[test]
    fn delay_stays_within_bound() {
        let config = FaultConfig {
            extra_latency_max: 17,
            delay_chance: Chance::always(),
            ..FaultConfig::off()
        };
        let mut plan = FaultPlan::new(8, config);
        for _ in 0..1000 {
            match plan.decide(false, false) {
                FaultDecision::Deliver { extra_delay, .. } => {
                    assert!((1..=17).contains(&extra_delay));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(plan.stats().delayed, 1000);
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let config = FaultConfig { backoff_base: 4, ..FaultConfig::off() };
        assert_eq!(config.backoff(0), 4);
        assert_eq!(config.backoff(1), 8);
        assert_eq!(config.backoff(3), 32);
        // Large attempts cap the shift instead of overflowing.
        assert_eq!(config.backoff(100), 4 << 16);
    }

    #[test]
    fn validity_checks_catch_bad_configs() {
        assert!(FaultConfig::off().is_valid());
        assert!(FaultConfig::latency_heavy().is_valid());
        assert!(FaultConfig::dup_heavy().is_valid());
        assert!(FaultConfig::drop_heavy().is_valid());
        let bad_chance = FaultConfig {
            drop_chance: Chance { num: 3, den: 2 },
            max_retries: 4,
            ..FaultConfig::off()
        };
        assert!(!bad_chance.is_valid());
        let no_budget = FaultConfig {
            drop_chance: Chance::of(1, 2),
            max_retries: 0,
            ..FaultConfig::off()
        };
        assert!(!no_budget.is_valid());
        let no_bound = FaultConfig {
            delay_chance: Chance::of(1, 2),
            extra_latency_max: 0,
            ..FaultConfig::off()
        };
        assert!(!no_bound.is_valid());
    }
}
