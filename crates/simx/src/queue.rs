//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An entry in the heap: ordered by time, then by insertion sequence, so
/// that equal-time events pop in FIFO order regardless of heap internals.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events are delivered in nondecreasing [`SimTime`] order; events scheduled
/// for the same time are delivered in the order they were scheduled. This
/// FIFO tie-break is what makes simulations built on `EventQueue`
/// deterministic.
///
/// # Examples
///
/// ```
/// use simx::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(2), 'x');
/// q.schedule(SimTime(1), 'y');
/// assert_eq!(q.peek_time(), Some(SimTime(1)));
/// assert_eq!(q.pop(), Some((SimTime(1), 'y')));
/// assert_eq!(q.len(), 1);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// Rewinds the queue to its initial state — clock at
    /// [`SimTime::ZERO`], sequence counter at zero, counters cleared —
    /// while keeping the heap's allocation, so a simulator can recycle one
    /// queue across many runs without re-paying heap growth.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.popped = 0;
        self.peak_len = 0;
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time — an event
    /// in the past indicates a simulator bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `event` for `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The entry is moved out of the heap whole — time is Copy and the
        // event moves; no per-pop clone or allocation happens here.
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Total events popped since creation (or the last [`EventQueue::reset`]).
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Peak number of simultaneously pending events since creation (or the
    /// last [`EventQueue::reset`]).
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop(), Some((SimTime(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(3), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reset_recycles_the_queue_and_clears_counters() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 'a');
        q.schedule(SimTime(2), 'b');
        assert_eq!(q.pop(), Some((SimTime(1), 'a')));
        assert_eq!(q.popped(), 1);
        assert_eq!(q.peak_len(), 2);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.popped(), 0);
        assert_eq!(q.peak_len(), 0);
        // The clock rewound: scheduling "early" events is legal again, and
        // the FIFO sequence restarts so replays are bit-identical.
        q.schedule(SimTime(1), 'x');
        q.schedule(SimTime(1), 'y');
        assert_eq!(q.pop(), Some((SimTime(1), 'x')));
        assert_eq!(q.pop(), Some((SimTime(1), 'y')));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 'a');
        q.schedule(SimTime(3), 'c');
        assert_eq!(q.pop(), Some((SimTime(1), 'a')));
        q.schedule(SimTime(2), 'b');
        q.schedule(SimTime(3), 'd');
        assert_eq!(q.pop(), Some((SimTime(2), 'b')));
        assert_eq!(q.pop(), Some((SimTime(3), 'c')));
        assert_eq!(q.pop(), Some((SimTime(3), 'd')));
    }
}
