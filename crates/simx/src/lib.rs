//! # simx — deterministic discrete-event simulation engine
//!
//! `simx` is the substrate every hardware simulator in this workspace is
//! built on. It provides:
//!
//! * [`SimTime`] — a newtype for simulated cycles,
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`rng::SplitMix64`] / [`rng::Xoshiro256`] — small, seedable,
//!   reproducible random number generators (no external dependency, so a
//!   simulation is bit-for-bit reproducible from its seed alone),
//! * [`fault::FaultPlan`] — a seeded schedule of message perturbations
//!   (delay, duplication, drops) for chaos-testing the simulators,
//! * [`stats`] — counters, histograms and summary statistics used by the
//!   benchmark harness.
//!
//! Determinism is the central design goal: a memory-consistency simulator is
//! only useful as evidence if the same seed always yields the same execution.
//! Events scheduled for the same [`SimTime`] are delivered in the order they
//! were scheduled (FIFO), never in arbitrary heap order.
//!
//! # Examples
//!
//! ```
//! use simx::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime(5), "b");
//! q.schedule(SimTime(3), "a");
//! q.schedule(SimTime(5), "c");
//! assert_eq!(q.pop(), Some((SimTime(3), "a")));
//! assert_eq!(q.pop(), Some((SimTime(5), "b"))); // FIFO among equal times
//! assert_eq!(q.pop(), Some((SimTime(5), "c")));
//! assert_eq!(q.pop(), None);
//! ```

#![deny(missing_docs)]

mod queue;
mod time;

pub mod fault;
pub mod rng;
pub mod stats;

pub use queue::EventQueue;
pub use time::SimTime;
