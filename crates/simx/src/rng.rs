//! Small, seedable, reproducible random number generators.
//!
//! The simulators draw network latencies and workload shapes from these
//! generators. They are implemented here (rather than pulled from an
//! external crate) so that a simulation seed fully determines an execution
//! for the lifetime of this repository — external RNGs may change their
//! streams between versions.

/// SplitMix64: a tiny, high-quality 64-bit generator, used both directly and
/// to seed [`Xoshiro256`].
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
///
/// # Examples
///
/// ```
/// use simx::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for latency draws and workload
/// generation.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators" (2018).
///
/// # Examples
///
/// ```
/// use simx::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.range_u64(10, 20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose state is expanded from `seed` via
    /// [`SplitMix64`], per the authors' recommendation.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[lo, hi)` using Lemire's nearly-divisionless
    /// method (without the rejection refinement; the bias for simulator-sized
    /// ranges is below 2⁻³².)
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// A uniform draw from `[0, n)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        self.range_u64(0, den) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_answer() {
        // Reference values for seed 0 from the public-domain C implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_is_reproducible() {
        let mut a = Xoshiro256::seed_from(9);
        let mut b = Xoshiro256::seed_from(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.range_u64(10, 13);
            assert!((10..13).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[(rng.range_u64(0, 3)) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Xoshiro256::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from(11);
        assert!(!rng.chance(0, 10));
        assert!(rng.chance(10, 10));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(77);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
