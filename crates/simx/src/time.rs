//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in cycles.
///
/// `SimTime` is a transparent newtype over `u64` so arithmetic is cheap, but
/// it cannot be confused with other integer quantities (operation counts,
/// latencies expressed as raw numbers, …).
///
/// # Examples
///
/// ```
/// use simx::SimTime;
///
/// let t = SimTime(10) + 5;
/// assert_eq!(t, SimTime(15));
/// assert_eq!(t - SimTime(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw cycle count.
    ///
    /// ```
    /// # use simx::SimTime;
    /// assert_eq!(SimTime(42).cycles(), 42);
    /// ```
    #[must_use]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    ///
    /// ```
    /// # use simx::SimTime;
    /// assert_eq!(SimTime(3).max_of(SimTime(7)), SimTime(7));
    /// ```
    #[must_use]
    pub fn max_of(self, other: SimTime) -> SimTime {
        self.max(other)
    }

    /// Saturating cycle difference `self - earlier`, zero if `earlier` is
    /// in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Cycle count between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(value: u64) -> Self {
        SimTime(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime(100);
        assert_eq!((t + 20) - t, 20);
        assert_eq!(t.cycles(), 100);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO, SimTime(0));
        assert_eq!(SimTime(5).max_of(SimTime(2)), SimTime(5));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(9)), 0);
        assert_eq!(SimTime(9).saturating_since(SimTime(5)), 4);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(SimTime(7).to_string(), "7cy");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime(1);
        t += 9;
        assert_eq!(t, SimTime(10));
    }

    #[test]
    fn from_u64() {
        assert_eq!(SimTime::from(3), SimTime(3));
    }
}
