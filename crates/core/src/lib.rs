//! # weakord — weak ordering as a software/hardware contract
//!
//! The central artifact of *"Weak Ordering — A New Definition"* is not a
//! piece of hardware but a **definition**:
//!
//! > **Definition 2.** Hardware is weakly ordered with respect to a
//! > synchronization model if and only if it appears sequentially
//! > consistent to all software that obeys the synchronization model.
//!
//! This crate renders the contract executable:
//!
//! * [`SynchronizationModel`] — the software side: a formally specified
//!   set of constraints on memory accesses. [`Drf0`] implements the
//!   paper's Data-Race-Free-0 model (Definition 3) by exhaustively
//!   exploring a program's idealized executions and race-checking each.
//! * [`verify`] — the hardware side: run programs obeying the model on a
//!   simulated machine across seeds and check that every execution
//!   *appears sequentially consistent* (via the witness-order search in
//!   `memory_model::sc`).
//! * [`conditions`] — the five sufficient hardware conditions of
//!   Section 5.1, checked directly against simulator traces (an
//!   executable stand-in for the Appendix B proof).
//!
//! # Examples
//!
//! Verify Definition 2 for the Section 5.3 implementation on a DRF0
//! program:
//!
//! ```
//! use litmus::corpus;
//! use memsim::presets;
//! use weakord::{verify, Drf0, SynchronizationModel};
//! use litmus::explore::ExploreConfig;
//!
//! let program = corpus::message_passing_sync(2);
//! assert!(Drf0.obeys(&program, &ExploreConfig::default()).is_obeys());
//!
//! let base = presets::network_cached(2, presets::wo_def2(), 0);
//! let report = verify::check_appears_sc(&program, &base, &[0, 1, 2]);
//! assert!(report.all_sc());
//! ```

#![deny(missing_docs)]

mod discipline;
mod model;

pub mod conditions;
pub mod verify;

pub use model::{Drf0, Drf1, ModelVerdict, ModelViolation, SynchronizationModel};
pub use discipline::{DoAllDiscipline, MonitorDiscipline};
