//! Paradigm-specific synchronization models (Section 7).
//!
//! The paper closes by proposing "the construction of other
//! synchronization models optimized for particular software paradigms,
//! such as sharing only through monitors, or parallelism only from do-all
//! loops". This module builds both as instances of
//! [`SynchronizationModel`], demonstrating the extensibility Definition 2
//! was designed for:
//!
//! * [`DoAllDiscipline`] — do-all-loop parallelism: iterations (threads)
//!   share **nothing**; any cross-thread conflicting pair of accesses at
//!   all violates the model. Strictly stronger than DRF0 (nothing to
//!   race on).
//! * [`MonitorDiscipline`] — monitor-style sharing: every shared data
//!   location is consistently protected by at least one lock (an
//!   Eraser-style lockset check). A lock is acquired by a successful
//!   `TestAndSet` (old value 0) and released by a `Set`/`Unset` writing 0
//!   to the same location. Also stronger than DRF0 on these primitives.
//!
//! Both models quantify over all idealized executions, like DRF0. Since
//! each is a *subset* of DRF0-compliant software, Definition 2 gives
//! immediately: hardware weakly ordered with respect to DRF0 is weakly
//! ordered with respect to either discipline.

use std::collections::{HashMap, HashSet};

use litmus::explore::{explore, ExploreConfig};
use litmus::Program;
use memory_model::{Execution, Loc, OpKind, ProcId};

use crate::model::{ModelVerdict, ModelViolation, SynchronizationModel};

/// Do-all-loop parallelism: threads share no location at all (no
/// cross-thread conflicting accesses, data *or* synchronization).
///
/// # Examples
///
/// ```
/// use litmus::{Program, Thread, Reg};
/// use litmus::explore::ExploreConfig;
/// use memory_model::Loc;
/// use weakord::{DoAllDiscipline, SynchronizationModel};
///
/// // Disjoint partitions: a legal do-all body.
/// let p = Program::new(vec![
///     Thread::new().write(Loc(0), 1).read(Loc(0), Reg(0)),
///     Thread::new().write(Loc(1), 1).read(Loc(1), Reg(0)),
/// ]).unwrap();
/// assert!(DoAllDiscipline.obeys(&p, &ExploreConfig::default()).is_obeys());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoAllDiscipline;

impl SynchronizationModel for DoAllDiscipline {
    fn name(&self) -> &'static str {
        "do-all (no sharing)"
    }

    fn obeys(&self, program: &Program, budget: &ExploreConfig) -> ModelVerdict {
        check_per_execution(program, budget, cross_thread_conflicts)
    }
}

fn cross_thread_conflicts(exec: &Execution) -> Vec<ModelViolation> {
    let ops = exec.ops();
    let mut violations = Vec::new();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if a.proc != b.proc && a.conflicts_with(b) {
                violations.push(ModelViolation::SharedConflict {
                    first: a.id,
                    second: b.id,
                    loc: a.loc,
                });
            }
        }
    }
    violations
}

/// Monitor-style sharing: an Eraser-style lockset discipline.
///
/// Lock protocol (over the paper's primitives): a successful `TestAndSet`
/// (read component 0) on location `l` acquires lock `l`; a synchronization
/// write of 0 to `l` releases it. Every *data* location that more than one
/// thread accesses must have a non-empty intersection of locks held across
/// all its accesses once it becomes shared. Accesses to synchronization
/// locations themselves are exempt (they are so-ordered by definition).
///
/// Simplifications relative to full Eraser, documented here: no
/// read-shared refinement (a location read by many threads without a lock
/// still violates), and `FetchAdd`/`Test` are not lock operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorDiscipline;

impl SynchronizationModel for MonitorDiscipline {
    fn name(&self) -> &'static str {
        "monitors (consistent lockset)"
    }

    fn obeys(&self, program: &Program, budget: &ExploreConfig) -> ModelVerdict {
        check_per_execution(program, budget, lockset_violations)
    }
}

#[derive(Debug, Clone)]
enum LocState {
    Virgin,
    Exclusive(ProcId),
    Shared(HashSet<Loc>),
}

fn lockset_violations(exec: &Execution) -> Vec<ModelViolation> {
    let mut held: HashMap<ProcId, HashSet<Loc>> = HashMap::new();
    let mut state: HashMap<Loc, LocState> = HashMap::new();
    let mut violations = Vec::new();

    for op in exec.ops() {
        if op.kind.is_sync() {
            let locks = held.entry(op.proc).or_default();
            match op.kind {
                OpKind::SyncRmw if op.read_value == Some(0) => {
                    locks.insert(op.loc); // successful TestAndSet: acquire
                }
                OpKind::SyncWrite if op.write_value == Some(0) => {
                    locks.remove(&op.loc); // Unset: release
                }
                _ => {}
            }
            continue; // sync locations are not lockset-checked
        }

        let locks = held.get(&op.proc).cloned().unwrap_or_default();
        let entry = state.entry(op.loc).or_insert(LocState::Virgin);
        match entry {
            LocState::Virgin => *entry = LocState::Exclusive(op.proc),
            LocState::Exclusive(owner) if *owner == op.proc => {}
            LocState::Exclusive(_) | LocState::Shared(_) => {
                let candidates = match entry {
                    // First contact by a second thread: candidate set is
                    // what it holds right now.
                    LocState::Exclusive(_) => locks.clone(),
                    LocState::Shared(c) => {
                        c.intersection(&locks).copied().collect()
                    }
                    LocState::Virgin => unreachable!(),
                };
                if candidates.is_empty() {
                    violations.push(ModelViolation::UnlockedAccess {
                        access: op.id,
                        loc: op.loc,
                    });
                }
                *entry = LocState::Shared(candidates);
            }
        }
    }
    violations
}

/// Explores all idealized executions and applies `check` to each.
fn check_per_execution(
    program: &Program,
    budget: &ExploreConfig,
    check: fn(&Execution) -> Vec<ModelViolation>,
) -> ModelVerdict {
    let cfg = ExploreConfig { keep_executions: true, ..*budget };
    let report = explore(program, &cfg);
    let mut violations: Vec<ModelViolation> = report
        .executions
        .iter()
        .flat_map(check)
        .collect();
    if !violations.is_empty() {
        violations.sort_by_key(|v| format!("{v:?}"));
        violations.dedup();
        return ModelVerdict::Violates(violations);
    }
    if report.complete {
        ModelVerdict::Obeys
    } else {
        ModelVerdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::{corpus, Reg, Thread};

    fn budget() -> ExploreConfig {
        ExploreConfig { max_ops_per_execution: 48, ..ExploreConfig::default() }
    }

    fn disjoint_program() -> Program {
        Program::new(vec![
            Thread::new().write(Loc(0), 1).read(Loc(0), Reg(0)),
            Thread::new().write(Loc(1), 1).read(Loc(1), Reg(0)),
        ])
        .unwrap()
    }

    #[test]
    fn disjoint_threads_satisfy_everything() {
        let p = disjoint_program();
        assert!(DoAllDiscipline.obeys(&p, &budget()).is_obeys());
        assert!(MonitorDiscipline.obeys(&p, &budget()).is_obeys());
        assert!(crate::Drf0.obeys(&p, &budget()).is_obeys());
    }

    #[test]
    fn do_all_rejects_any_sharing_even_synchronized() {
        // Properly synchronized message passing is DRF0 but not do-all.
        let p = corpus::message_passing_sync(2);
        assert!(crate::Drf0.obeys(&p, &budget()).is_obeys());
        let verdict = DoAllDiscipline.obeys(&p, &budget());
        assert!(verdict.is_violation(), "{verdict:?}");
    }

    #[test]
    fn monitors_accept_the_lock_protected_kernel() {
        let p = corpus::spinlock_bounded(2, 1, 3);
        let verdict = MonitorDiscipline.obeys(&p, &budget());
        assert!(verdict.is_obeys(), "{verdict:?}");
    }

    #[test]
    fn monitors_reject_flag_based_handoff() {
        // message_passing_sync is DRF0 (flag synchronization) but does not
        // share through a monitor: x is touched with no lock held.
        let p = corpus::message_passing_sync(2);
        let verdict = MonitorDiscipline.obeys(&p, &budget());
        let ModelVerdict::Violates(vs) = verdict else {
            panic!("flag hand-off should violate the monitor discipline");
        };
        assert!(vs
            .iter()
            .any(|v| matches!(v, ModelViolation::UnlockedAccess { .. })));
    }

    #[test]
    fn monitors_reject_racy_counter() {
        let p = corpus::racy_counter(2);
        assert!(MonitorDiscipline.obeys(&p, &budget()).is_violation());
        assert!(DoAllDiscipline.obeys(&p, &budget()).is_violation());
    }

    #[test]
    fn discipline_obeying_programs_are_drf0() {
        // The model lattice: do-all ⊂ DRF0 and monitors ⊂ DRF0 on the
        // examples — hardware weakly ordered w.r.t. DRF0 serves both.
        for p in [disjoint_program(), corpus::spinlock_bounded(2, 1, 3)] {
            assert!(crate::Drf0.obeys(&p, &budget()).is_obeys());
        }
    }

    #[test]
    fn violation_displays() {
        use memory_model::OpId;
        let v = ModelViolation::UnlockedAccess { access: OpId(3), loc: Loc(1) };
        assert!(v.to_string().contains("without a consistent lock"));
        let v = ModelViolation::SharedConflict {
            first: OpId(1),
            second: OpId(2),
            loc: Loc(0),
        };
        assert!(v.to_string().contains("do-all"));
    }
}
