//! The hardware side of Definition 2: does a machine appear sequentially
//! consistent to model-obeying software?
//!
//! Definition 2 quantifies over all executions of all obeying programs;
//! simulation can only sample, so [`check_appears_sc`] runs a program
//! across many interconnect-timing seeds and checks each resulting
//! observation with the witness-order search of [`memory_model::sc`]. A
//! single failing seed *refutes* weak ordering; passing seeds accumulate
//! evidence for it (the accompanying Appendix-B-style trace checks in
//! [`crate::conditions`] cover the mechanism itself).

use litmus::Program;
use memory_model::sc::{check_sc, ScCheckConfig, ScVerdict};
use memsim::{Machine, MachineConfig, RunError, RunResult};

/// The SC check result of one seeded run.
#[derive(Debug, Clone)]
pub struct RunCheck {
    /// The interconnect-timing seed.
    pub seed: u64,
    /// The SC verdict of the run's observation.
    pub verdict: ScVerdict,
    /// Cycles the run took.
    pub cycles: u64,
    /// Whether the run finished before the watchdog.
    pub completed: bool,
}

/// Aggregated Definition 2 evidence for one program on one machine.
#[derive(Debug, Clone)]
pub struct Definition2Report {
    /// The machine's policy name.
    pub policy: &'static str,
    /// Per-seed checks.
    pub runs: Vec<RunCheck>,
}

impl Definition2Report {
    /// Whether every completed run appeared sequentially consistent.
    #[must_use]
    pub fn all_sc(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.completed && r.verdict.is_consistent())
    }

    /// Seeds whose runs were *not* sequentially consistent — witnesses
    /// against weak ordering.
    #[must_use]
    pub fn violating_seeds(&self) -> Vec<u64> {
        self.runs
            .iter()
            .filter(|r| matches!(r.verdict, ScVerdict::Inconsistent))
            .map(|r| r.seed)
            .collect()
    }
}

/// Runs `program` on `base` (re-seeded per entry of `seeds`) and checks
/// each run's observation for sequential consistency.
///
/// # Panics
///
/// Panics if a run fails to start (configuration/thread-count errors are
/// caller bugs at this level).
#[must_use]
pub fn check_appears_sc(
    program: &Program,
    base: &MachineConfig,
    seeds: &[u64],
) -> Definition2Report {
    let runs = seeds
        .iter()
        .map(|&seed| {
            let cfg = MachineConfig { seed, ..*base };
            let result = Machine::run_program(program, &cfg)
                .expect("verification machine must start");
            run_check(seed, &result, program)
        })
        .collect();
    Definition2Report { policy: base.policy.name(), runs }
}

/// Like [`check_appears_sc`] but surfaces run errors instead of panicking.
///
/// # Errors
///
/// Returns the first [`RunError`] encountered.
pub fn try_check_appears_sc(
    program: &Program,
    base: &MachineConfig,
    seeds: &[u64],
) -> Result<Definition2Report, RunError> {
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let cfg = MachineConfig { seed, ..*base };
        let result = Machine::run_program(program, &cfg)?;
        runs.push(run_check(seed, &result, program));
    }
    Ok(Definition2Report { policy: base.policy.name(), runs })
}

fn run_check(seed: u64, result: &RunResult, program: &Program) -> RunCheck {
    let verdict = if result.completed {
        check_sc(
            &result.observation(),
            &program.initial_memory(),
            &ScCheckConfig::default(),
        )
    } else {
        ScVerdict::BudgetExhausted
    };
    RunCheck { seed, verdict, cycles: result.cycles, completed: result.completed }
}

/// One cell of a [`VerificationMatrix`]: a program on a machine.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Program name.
    pub program: String,
    /// Policy name.
    pub policy: &'static str,
    /// The per-seed report.
    pub report: Definition2Report,
}

/// The full Definition 2 verification matrix: every program on every
/// machine, across seeds — the one-call version of the workflow in the
/// `def2_verification` harness and the `verify_hardware` example.
#[derive(Debug, Clone)]
pub struct VerificationMatrix {
    /// All cells, programs × machines.
    pub cells: Vec<MatrixCell>,
}

impl VerificationMatrix {
    /// Runs the matrix: each `(name, program)` on each machine produced by
    /// `machine_for(num_threads, policy)` over `seeds`.
    ///
    /// # Panics
    ///
    /// Panics if a machine configuration cannot run its program (the
    /// closure controls both, so a mismatch is a caller bug).
    #[must_use]
    pub fn run(
        programs: &[(&str, Program)],
        policies: &[(&'static str, memsim::Policy)],
        machine_for: impl Fn(usize, memsim::Policy) -> MachineConfig,
        seeds: &[u64],
    ) -> Self {
        let mut cells = Vec::new();
        for (name, program) in programs {
            for &(policy_name, policy) in policies {
                let base = machine_for(program.num_threads(), policy);
                let report = check_appears_sc(program, &base, seeds);
                cells.push(MatrixCell {
                    program: (*name).to_string(),
                    policy: policy_name,
                    report,
                });
            }
        }
        VerificationMatrix { cells }
    }

    /// Whether every cell appeared sequentially consistent on every seed.
    #[must_use]
    pub fn all_sc(&self) -> bool {
        self.cells.iter().all(|c| c.report.all_sc())
    }

    /// Cells with at least one violating seed.
    #[must_use]
    pub fn failures(&self) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| !c.report.all_sc()).collect()
    }
}

impl std::fmt::Display for VerificationMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for cell in &self.cells {
            let ok = cell.report.all_sc();
            writeln!(
                f,
                "{:<24} {:<12} {}",
                cell.program,
                cell.policy,
                if ok { "appears SC" } else { "VIOLATES SC" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::corpus;
    use memsim::presets;

    const SEEDS: [u64; 4] = [0, 1, 2, 3];

    #[test]
    fn def2_machine_appears_sc_to_drf0_corpus() {
        for (name, program) in corpus::drf0_suite() {
            let base = presets::network_cached(program.num_threads(), presets::wo_def2(), 0);
            let report = check_appears_sc(&program, &base, &SEEDS);
            assert!(report.all_sc(), "{name}: {report:?}");
        }
    }

    #[test]
    fn def1_machine_appears_sc_to_drf0_corpus() {
        // Section 6's claim: Definition 1 hardware is weakly ordered by
        // Definition 2 with respect to DRF0.
        for (name, program) in corpus::drf0_suite() {
            let base = presets::network_cached(program.num_threads(), presets::wo_def1(), 0);
            let report = check_appears_sc(&program, &base, &SEEDS);
            assert!(report.all_sc(), "{name}: {report:?}");
        }
    }

    #[test]
    fn relaxed_machine_fails_definition_2_on_racy_dekker() {
        let program = corpus::fig1_dekker();
        let base = MachineConfig {
            interconnect: memsim::InterconnectConfig::Bus { latency: 4 },
            ..presets::bus_no_cache(2, memsim::Policy::Relaxed { write_delay: 40 }, 0)
        };
        let report = check_appears_sc(&program, &base, &SEEDS);
        assert!(!report.all_sc());
        assert!(!report.violating_seeds().is_empty());
    }

    #[test]
    fn report_accessors() {
        let program = corpus::sync_only_tas();
        let base = presets::network_cached(2, presets::wo_def2(), 0);
        let report = try_check_appears_sc(&program, &base, &[5]).unwrap();
        assert_eq!(report.policy, "WO-Def2");
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].seed, 5);
        assert!(report.runs[0].cycles > 0);
    }

    #[test]
    fn verification_matrix_over_a_small_corpus() {
        let programs = vec![
            ("sync_only_tas", corpus::sync_only_tas()),
            ("mp_sync", corpus::message_passing_sync(2)),
        ];
        let matrix = VerificationMatrix::run(
            &programs,
            &presets::all_policies(),
            |procs, policy| presets::network_cached(procs, policy, 0),
            &[0, 1],
        );
        assert_eq!(matrix.cells.len(), 8);
        assert!(matrix.all_sc(), "{matrix}");
        assert!(matrix.failures().is_empty());
        assert!(matrix.to_string().contains("appears SC"));
    }

    #[test]
    fn verification_matrix_reports_failures() {
        let programs = vec![("dekker", corpus::fig1_dekker())];
        let matrix = VerificationMatrix::run(
            &programs,
            &[("relaxed", memsim::Policy::Relaxed { write_delay: 40 })],
            |procs, policy| MachineConfig {
                interconnect: memsim::InterconnectConfig::Bus { latency: 4 },
                ..presets::bus_no_cache(procs, policy, 0)
            },
            &[0, 1, 2],
        );
        assert!(!matrix.all_sc());
        assert_eq!(matrix.failures().len(), 1);
        assert!(matrix.to_string().contains("VIOLATES"));
    }

    #[test]
    fn try_check_surfaces_run_errors() {
        let program = corpus::fig1_dekker();
        let base = presets::network_cached(7, presets::wo_def2(), 0); // wrong proc count
        assert!(try_check_appears_sc(&program, &base, &[0]).is_err());
    }
}
