//! Synchronization models: the software side of the contract.

use litmus::explore::{explore_dpor, ExploreConfig};
use litmus::Program;
use memory_model::drf0::Race;
use memory_model::{Loc, OpId, SyncMode};

/// A witness that a program violated a synchronization model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelViolation {
    /// Conflicting accesses unordered by the model's happens-before
    /// (DRF0 / the Section 6 refinement).
    Race(Race),
    /// A cross-thread conflict exists at all — forbidden by the do-all
    /// discipline, where iterations share nothing.
    SharedConflict {
        /// The earlier conflicting access.
        first: OpId,
        /// The later conflicting access.
        second: OpId,
        /// The contested location.
        loc: Loc,
    },
    /// A shared location was accessed while the intersection of
    /// protecting locks was empty — forbidden by the monitor discipline.
    UnlockedAccess {
        /// The offending access.
        access: OpId,
        /// The unprotected location.
        loc: Loc,
    },
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelViolation::Race(r) => write!(f, "{r}"),
            ModelViolation::SharedConflict { first, second, loc } => write!(
                f,
                "do-all discipline: {first} and {second} conflict on shared {loc}"
            ),
            ModelViolation::UnlockedAccess { access, loc } => write!(
                f,
                "monitor discipline: {access} touched shared {loc} without a consistent lock"
            ),
        }
    }
}

/// The verdict of a synchronization-model check on a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelVerdict {
    /// Every explored idealized execution satisfied the model.
    Obeys,
    /// At least one idealized execution violated the model; the witnesses
    /// are attached.
    Violates(Vec<ModelViolation>),
    /// The exploration budget ran out before all executions were covered
    /// and no violation was found so far.
    Unknown,
}

impl ModelVerdict {
    /// Whether the program (provably, within budget) obeys the model.
    #[must_use]
    pub fn is_obeys(&self) -> bool {
        matches!(self, ModelVerdict::Obeys)
    }

    /// Whether a violation was found.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(self, ModelVerdict::Violates(_))
    }
}

/// A set of constraints on memory accesses that specify how and when
/// synchronization needs to be done (the paper's Section 3).
///
/// Hardware is *weakly ordered with respect to* a synchronization model
/// iff it appears sequentially consistent to all software obeying the
/// model (Definition 2). The model is the software half of that contract;
/// [`crate::verify`] checks the hardware half.
pub trait SynchronizationModel {
    /// The model's name, for reports.
    fn name(&self) -> &'static str;

    /// Whether `program` obeys the model, deciding by exhaustive
    /// exploration of its idealized executions within `budget`.
    fn obeys(&self, program: &Program, budget: &ExploreConfig) -> ModelVerdict;
}

/// Data-Race-Free-0 (Definition 3): all synchronization operations are
/// hardware-recognizable single-location accesses (guaranteed by the
/// instruction set), and for any idealized execution all conflicting
/// accesses are ordered by happens-before.
///
/// # Examples
///
/// ```
/// use litmus::corpus;
/// use litmus::explore::ExploreConfig;
/// use weakord::{Drf0, SynchronizationModel};
///
/// let budget = ExploreConfig::default();
/// assert!(Drf0.obeys(&corpus::message_passing_sync(2), &budget).is_obeys());
/// assert!(Drf0.obeys(&corpus::fig1_dekker(), &budget).is_violation());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Drf0;

impl SynchronizationModel for Drf0 {
    fn name(&self) -> &'static str {
        "DRF0"
    }

    fn obeys(&self, program: &Program, budget: &ExploreConfig) -> ModelVerdict {
        explore_with_mode(program, budget, SyncMode::Drf0)
    }
}

/// The Section 6 refinement of DRF0: read-only synchronization operations
/// (`Test`) cannot order their processor's previous accesses with respect
/// to other processors' subsequent synchronization operations — only
/// *writing* synchronization operations release. Programs obeying this
/// model may run on the Section 6 optimized implementation
/// (`memsim::presets::wo_def2_optimized`), where `Test`s are neither
/// serialized as writes nor made to stall other processors.
///
/// Every program that obeys this model obeys DRF0 (its happens-before is a
/// subset of DRF0's, so it can only find *more* races). The converse
/// direction — that DRF0 programs written with these primitives also obey
/// the refinement — is the paper's "does not compromise the generality of
/// the software allowed by DRF0" remark; the corpus bears it out (see the
/// crate tests).
///
/// # Examples
///
/// ```
/// use litmus::corpus;
/// use litmus::explore::ExploreConfig;
/// use weakord::{Drf1, SynchronizationModel};
///
/// let budget = ExploreConfig::default();
/// assert!(Drf1.obeys(&corpus::message_passing_sync(2), &budget).is_obeys());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Drf1;

impl SynchronizationModel for Drf1 {
    fn name(&self) -> &'static str {
        "DRF1 (Section 6 refinement)"
    }

    fn obeys(&self, program: &Program, budget: &ExploreConfig) -> ModelVerdict {
        explore_with_mode(program, budget, SyncMode::ReleaseWrites)
    }
}

fn explore_with_mode(
    program: &Program,
    budget: &ExploreConfig,
    sync_mode: SyncMode,
) -> ModelVerdict {
    let cfg = ExploreConfig { sync_mode, ..*budget };
    // DPOR preserves the race set and completeness, the only two outputs
    // consumed here (see `litmus::explore::explore_dpor`).
    let report = explore_dpor(program, &cfg);
    if !report.races.is_empty() {
        let mut races: Vec<Race> = report.races.into_iter().collect();
        races.sort_by_key(|r| (r.first, r.second));
        return ModelVerdict::Violates(races.into_iter().map(ModelViolation::Race).collect());
    }
    if report.complete {
        ModelVerdict::Obeys
    } else {
        ModelVerdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::corpus;

    fn budget() -> ExploreConfig {
        ExploreConfig { max_ops_per_execution: 48, ..ExploreConfig::default() }
    }

    #[test]
    fn drf0_accepts_the_drf0_suite() {
        for (name, p) in corpus::drf0_suite() {
            assert!(Drf0.obeys(&p, &budget()).is_obeys(), "{name}");
        }
    }

    #[test]
    fn drf0_rejects_the_racy_suite_with_witnesses() {
        for (name, p) in corpus::racy_suite() {
            let verdict = Drf0.obeys(&p, &budget());
            let ModelVerdict::Violates(races) = verdict else {
                panic!("{name} should violate DRF0, got {verdict:?}");
            };
            assert!(!races.is_empty(), "{name}");
        }
    }

    #[test]
    fn unknown_when_budget_too_small() {
        let tiny = ExploreConfig {
            max_executions: 1,
            max_ops_per_execution: 2,
            ..ExploreConfig::default()
        };
        // A race-free program too big to cover in one execution.
        let p = corpus::message_passing_sync(2);
        assert_eq!(Drf0.obeys(&p, &tiny), ModelVerdict::Unknown);
    }

    #[test]
    fn verdict_predicates() {
        assert!(ModelVerdict::Obeys.is_obeys());
        assert!(!ModelVerdict::Obeys.is_violation());
        assert!(ModelVerdict::Violates(vec![]).is_violation());
        assert!(!ModelVerdict::Unknown.is_obeys());
    }

    #[test]
    fn model_name() {
        assert_eq!(Drf0.name(), "DRF0");
        assert!(Drf1.name().contains("DRF1"));
    }

    #[test]
    fn corpus_verdicts_agree_between_drf0_and_drf1() {
        // The paper's remark: the Section 6 refinement "does not
        // compromise on the generality of the software allowed by DRF0".
        // With these primitives, release-by-Test can never be load-bearing
        // in a DRF0 program (forcing a Test to precede another processor's
        // synchronization requires a writing-sync chain that then carries
        // the ordering itself), so the corpus verdicts coincide.
        for (name, p) in corpus::drf0_suite() {
            assert!(Drf1.obeys(&p, &budget()).is_obeys(), "{name}");
        }
        for (name, p) in corpus::racy_suite() {
            assert!(Drf1.obeys(&p, &budget()).is_violation(), "{name}");
        }
    }

    #[test]
    fn drf1_is_stricter_than_drf0_on_test_release_executions() {
        // A program whose only ordering for the data hand-off would be a
        // read-only Test release has an execution that is DRF0-racy anyway
        // (the orders where the Test loses), so both reject it — but the
        // refined model finds strictly more racing pairs.
        use litmus::{Program, Reg, Thread};
        use memory_model::Loc;
        let p = Program::new(vec![
            Thread::new().write(Loc(0), 1).sync_read(Loc(100), Reg(0)),
            Thread::new().test_and_set(Loc(100), Reg(0)).read(Loc(0), Reg(1)),
        ])
        .unwrap();
        let ModelVerdict::Violates(drf0_races) = Drf0.obeys(&p, &budget()) else {
            panic!("test-released hand-off must be DRF0-racy in some execution");
        };
        let ModelVerdict::Violates(drf1_races) = Drf1.obeys(&p, &budget()) else {
            panic!("and refined-racy too");
        };
        assert!(drf1_races.len() >= drf0_races.len());
    }
}
