//! The five sufficient conditions of Section 5.1, checked on traces.
//!
//! Appendix B proves that a system satisfying these conditions is weakly
//! ordered with respect to DRF0. The simulator cannot carry a proof, but
//! it can be *audited*: [`check_all`] verifies each condition directly
//! against the per-operation timestamps of a [`RunResult`].
//!
//! | # | Condition (paraphrased) | Check |
//! |---|--------------------------|-------|
//! | 1 | Intra-processor dependencies are preserved | per processor and location, accesses commit in program order and reads never observe older writes after newer ones |
//! | 2 | Writes to the same location are totally ordered by commit time and observed in that order | distinct commit times; per-processor read sequences follow the commit order |
//! | 3 | Synchronization operations to a location are totally ordered by commit, and globally performed in the same order | commit order equals globally-performed order |
//! | 4 | No access is generated until all previous synchronization operations (program order) have committed | `issue(op) ≥ commit(S)` for every earlier sync `S` |
//! | 5 | After sync `S` by `P_i` commits, no other processor's sync on the same location commits until `P_i`'s earlier reads committed and earlier writes globally performed | direct timestamp comparison |

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use memory_model::{Loc, OpId, Value};
use memsim::{OpRecord, RunResult};

/// A violated condition, with the witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionViolation {
    /// Condition 1: a processor's accesses to one location did not commit
    /// in program order.
    IntraProcessorOrder {
        /// The two out-of-order operations (program-order earlier first).
        ops: (OpId, OpId),
    },
    /// Condition 2: two writes to one location share a commit time.
    WritesNotTotallyOrdered {
        /// The location.
        loc: Loc,
        /// The two writes.
        ops: (OpId, OpId),
    },
    /// Condition 2: a processor observed writes to a location out of their
    /// commit order.
    WritesObservedOutOfOrder {
        /// The reading processor's two reads (program-order earlier first).
        reads: (OpId, OpId),
    },
    /// A read returned a value no write (and not the initial state)
    /// supplied.
    ValueOutOfThinAir {
        /// The offending read.
        read: OpId,
        /// The impossible value.
        value: Value,
    },
    /// Condition 3: synchronization operations to one location were
    /// globally performed in a different order than they committed.
    SyncGpOrderMismatch {
        /// The location.
        loc: Loc,
        /// The two synchronization operations (commit-order first).
        ops: (OpId, OpId),
    },
    /// Condition 4: an access was generated before an earlier (program
    /// order) synchronization operation committed.
    AccessBeforeSyncCommit {
        /// The too-early access.
        access: OpId,
        /// The uncommitted synchronization operation.
        sync: OpId,
    },
    /// Condition 5: a synchronization operation committed while the
    /// previous same-location synchronizer's processor still had earlier
    /// accesses incomplete.
    SyncCommitTooEarly {
        /// The synchronization operation that committed too early.
        sync: OpId,
        /// The previous synchronization operation on the location.
        previous: OpId,
        /// The incomplete earlier access of the previous synchronizer.
        blocking: OpId,
    },
}

impl fmt::Display for ConditionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionViolation::IntraProcessorOrder { ops } => write!(
                f,
                "condition 1: {} and {} committed out of program order",
                ops.0, ops.1
            ),
            ConditionViolation::WritesNotTotallyOrdered { loc, ops } => write!(
                f,
                "condition 2: writes {} and {} to {loc} share a commit time",
                ops.0, ops.1
            ),
            ConditionViolation::WritesObservedOutOfOrder { reads } => write!(
                f,
                "condition 2: reads {} then {} observed writes against commit order",
                reads.0, reads.1
            ),
            ConditionViolation::ValueOutOfThinAir { read, value } => {
                write!(f, "read {read} returned {value}, written by no write")
            }
            ConditionViolation::SyncGpOrderMismatch { loc, ops } => write!(
                f,
                "condition 3: syncs {} and {} on {loc} globally performed out of commit order",
                ops.0, ops.1
            ),
            ConditionViolation::AccessBeforeSyncCommit { access, sync } => write!(
                f,
                "condition 4: access {access} generated before sync {sync} committed"
            ),
            ConditionViolation::SyncCommitTooEarly { sync, previous, blocking } => write!(
                f,
                "condition 5: sync {sync} committed before {blocking} (outstanding at previous sync {previous}) completed"
            ),
        }
    }
}

/// Runs every condition check; returns all violations found.
#[must_use]
pub fn check_all(result: &RunResult, initial: &memory_model::Memory) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();
    violations.extend(check_intra_processor_order(result));
    violations.extend(check_write_serialization(result, initial));
    violations.extend(check_sync_gp_order(result));
    violations.extend(check_access_after_sync_commit(result));
    violations.extend(check_sync_exclusion(result));
    violations
}

fn per_proc_records(result: &RunResult) -> BTreeMap<u16, Vec<OpRecord>> {
    let mut map: BTreeMap<u16, Vec<OpRecord>> = BTreeMap::new();
    for rec in &result.records {
        map.entry(rec.op.proc.0).or_default().push(*rec);
    }
    for recs in map.values_mut() {
        recs.sort_by_key(|r| r.op.id.seq_part());
    }
    map
}

/// Condition 1 proxy: same-processor accesses to one location commit in
/// program order.
#[must_use]
pub fn check_intra_processor_order(result: &RunResult) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();
    for recs in per_proc_records(result).values() {
        let mut last_commit_per_loc: HashMap<Loc, (OpId, simx::SimTime)> = HashMap::new();
        for rec in recs {
            if let Some(&(prev_id, prev_commit)) = last_commit_per_loc.get(&rec.op.loc) {
                if rec.commit < prev_commit {
                    violations.push(ConditionViolation::IntraProcessorOrder {
                        ops: (prev_id, rec.op.id),
                    });
                }
            }
            last_commit_per_loc.insert(rec.op.loc, (rec.op.id, rec.commit));
        }
    }
    violations
}

/// Condition 2: writes per location are totally ordered by commit time,
/// and each processor observes them in that order (its reads of the
/// location return write values at non-decreasing commit positions).
#[must_use]
pub fn check_write_serialization(
    result: &RunResult,
    initial: &memory_model::Memory,
) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();

    // Commit-ordered writes per location.
    let mut writes: BTreeMap<Loc, Vec<&OpRecord>> = BTreeMap::new();
    for rec in &result.records {
        if rec.op.kind.is_write() {
            writes.entry(rec.op.loc).or_default().push(rec);
        }
    }
    for (loc, ws) in &mut writes {
        ws.sort_by_key(|r| r.commit);
        for pair in ws.windows(2) {
            if pair[0].commit == pair[1].commit && pair[0].op.proc != pair[1].op.proc {
                violations.push(ConditionViolation::WritesNotTotallyOrdered {
                    loc: *loc,
                    ops: (pair[0].op.id, pair[1].op.id),
                });
            }
        }
    }

    // Observation witnesses: a read's value identifies the write it
    // observed only when that value is unambiguous for the location
    // (written exactly once and distinct from the initial value).
    // Locations whose write values repeat — spinlock words cycling
    // through 0/1, for instance — cannot witness the observation order
    // this way and are skipped; the out-of-thin-air check still applies
    // everywhere a value appears that no write produced.
    let mut unambiguous: HashMap<Loc, bool> = HashMap::new();
    for (loc, ws) in &writes {
        let mut values: Vec<Value> = ws.iter().filter_map(|w| w.op.write_value).collect();
        let initial_value = initial.read(*loc);
        values.push(initial_value);
        let n = values.len();
        values.sort_unstable();
        values.dedup();
        unambiguous.insert(*loc, values.len() == n);
    }

    for recs in per_proc_records(result).values() {
        let mut last_seen: HashMap<Loc, (usize, OpId)> = HashMap::new();
        for rec in recs {
            let Some(got) = rec.op.read_value else { continue };
            let loc = rec.op.loc;
            let ws = writes.get(&loc);
            let position = ws.and_then(|ws| {
                ws.iter()
                    .position(|w| w.op.write_value == Some(got))
                    .map(|i| i + 1)
            });
            let position = match (position, got == initial.read(loc)) {
                (Some(p), _) => p,
                (None, true) => 0, // initial value: before every write
                (None, false) => {
                    violations.push(ConditionViolation::ValueOutOfThinAir {
                        read: rec.op.id,
                        value: got,
                    });
                    continue;
                }
            };
            if !unambiguous.get(&loc).copied().unwrap_or(true) {
                continue;
            }
            if let Some(&(prev_pos, prev_id)) = last_seen.get(&loc) {
                if position < prev_pos {
                    violations.push(ConditionViolation::WritesObservedOutOfOrder {
                        reads: (prev_id, rec.op.id),
                    });
                }
            }
            last_seen.insert(loc, (position, rec.op.id));
        }
    }
    violations
}

/// Condition 3: synchronization operations to one location are globally
/// performed in their commit order.
#[must_use]
pub fn check_sync_gp_order(result: &RunResult) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();
    let mut syncs: BTreeMap<Loc, Vec<&OpRecord>> = BTreeMap::new();
    for rec in &result.records {
        if rec.op.kind.is_sync() {
            syncs.entry(rec.op.loc).or_default().push(rec);
        }
    }
    for (loc, ss) in &mut syncs {
        ss.sort_by_key(|r| r.commit);
        for pair in ss.windows(2) {
            if pair[0].globally_performed > pair[1].globally_performed {
                violations.push(ConditionViolation::SyncGpOrderMismatch {
                    loc: *loc,
                    ops: (pair[0].op.id, pair[1].op.id),
                });
            }
        }
    }
    violations
}

/// Condition 4: no access is generated before every earlier (program
/// order) synchronization operation of its processor has committed.
#[must_use]
pub fn check_access_after_sync_commit(result: &RunResult) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();
    for recs in per_proc_records(result).values() {
        let mut last_sync: Option<&OpRecord> = None;
        for rec in recs {
            if let Some(sync) = last_sync {
                if rec.issue < sync.commit {
                    violations.push(ConditionViolation::AccessBeforeSyncCommit {
                        access: rec.op.id,
                        sync: sync.op.id,
                    });
                }
            }
            if rec.op.kind.is_sync() {
                last_sync = Some(rec);
            }
        }
    }
    violations
}

/// Condition 5: once a synchronization operation `S` by `P_i` is
/// committed, no other processor's synchronization operation on the same
/// location commits until all `P_i` reads before `S` have committed and
/// all `P_i` writes before `S` are globally performed.
#[must_use]
pub fn check_sync_exclusion(result: &RunResult) -> Vec<ConditionViolation> {
    let mut violations = Vec::new();
    let per_proc = per_proc_records(result);

    let mut syncs: BTreeMap<Loc, Vec<&OpRecord>> = BTreeMap::new();
    for rec in &result.records {
        if rec.op.kind.is_sync() {
            syncs.entry(rec.op.loc).or_default().push(rec);
        }
    }
    for ss in syncs.values_mut() {
        ss.sort_by_key(|r| r.commit);
        for pair in ss.windows(2) {
            let (s1, s2) = (pair[0], pair[1]);
            if s1.op.proc == s2.op.proc {
                continue;
            }
            // Earlier accesses of s1's processor, in program order.
            let recs = &per_proc[&s1.op.proc.0];
            for earlier in recs.iter().filter(|r| r.op.id.seq_part() < s1.op.id.seq_part())
            {
                let deadline = if earlier.op.kind.is_write() {
                    earlier.globally_performed
                } else {
                    earlier.commit
                };
                if s2.commit < deadline {
                    violations.push(ConditionViolation::SyncCommitTooEarly {
                        sync: s2.op.id,
                        previous: s1.op.id,
                        blocking: earlier.op.id,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::corpus;
    use memsim::{presets, Machine, MachineConfig};

    fn audited(program: &litmus::Program, base: &MachineConfig) -> Vec<ConditionViolation> {
        let result = Machine::run_program(program, base).unwrap();
        assert!(result.completed);
        check_all(&result, &program.initial_memory())
    }

    #[test]
    fn def2_machine_satisfies_all_conditions_on_corpus() {
        for (name, program) in corpus::drf0_suite() {
            for seed in 0..4 {
                let base =
                    presets::network_cached(program.num_threads(), presets::wo_def2(), seed);
                let violations = audited(&program, &base);
                assert!(violations.is_empty(), "{name} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn def1_machine_satisfies_all_conditions_on_corpus() {
        for (name, program) in corpus::drf0_suite() {
            let base = presets::network_cached(program.num_threads(), presets::wo_def1(), 1);
            let violations = audited(&program, &base);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn sc_machine_satisfies_all_conditions() {
        let program = corpus::spinlock(2, 2);
        let base = presets::network_cached(2, presets::sc(), 3);
        assert!(audited(&program, &base).is_empty());
    }

    #[test]
    fn relaxed_machine_violates_condition_4_on_sync_programs() {
        // The relaxed machine issues past uncommitted syncs? No — it waits
        // for sync read values; but a sync *write* does not block it, so
        // condition 4 violations appear in programs with Unset followed by
        // more work.
        let program = corpus::fig3_handoff(2);
        let base = presets::network_cached(2, memsim::Policy::Relaxed { write_delay: 0 }, 5);
        let result = Machine::run_program(&program, &base).unwrap();
        assert!(result.completed);
        let violations = check_access_after_sync_commit(&result);
        assert!(
            !violations.is_empty(),
            "relaxed hardware should issue past the uncommitted Unset"
        );
    }

    #[test]
    fn violation_displays_are_informative() {
        use memory_model::{OpId, ProcId};
        let a = OpId::for_thread_op(ProcId(0), 0);
        let b = OpId::for_thread_op(ProcId(1), 1);
        let samples: Vec<ConditionViolation> = vec![
            ConditionViolation::IntraProcessorOrder { ops: (a, b) },
            ConditionViolation::WritesNotTotallyOrdered { loc: Loc(1), ops: (a, b) },
            ConditionViolation::WritesObservedOutOfOrder { reads: (a, b) },
            ConditionViolation::ValueOutOfThinAir { read: a, value: 9 },
            ConditionViolation::SyncGpOrderMismatch { loc: Loc(1), ops: (a, b) },
            ConditionViolation::AccessBeforeSyncCommit { access: a, sync: b },
            ConditionViolation::SyncCommitTooEarly { sync: a, previous: b, blocking: b },
        ];
        for v in samples {
            assert!(v.to_string().contains('#'), "{v}");
        }
    }
}
