//! Work-stealing sweep engine for grids of simulated-machine runs.
//!
//! A sweep is a declarative grid of [`Cell`]s — `(program, config)` pairs,
//! where the config carries the cell's seed — fanned across worker threads
//! and merged back **in grid order**. Because every cell is an independent
//! deterministic simulation (all randomness derives from `config.seed`),
//! the merged report is bit-identical at any thread count: the same
//! determinism contract `litmus::explore::explore_parallel` established
//! for the idealized side.
//!
//! Each worker keeps **one recycled [`Machine`]** and rewinds it with
//! [`Machine::reset`] between cells, so a sweep pays machine construction
//! once per worker instead of once per cell; the event-queue heap, store
//! queues, cache maps, and record buffers keep their grown allocations
//! across the whole grid. A cell that panics poisons only the worker's
//! cached machine (it is dropped, not reused) and is reported as
//! [`CellOutcome::Panicked`] rather than tearing down the sweep.
//!
//! # Examples
//!
//! ```
//! use litmus::corpus;
//! use memsim::sweep::{sweep, Cell, CellOutcome};
//! use memsim::presets;
//!
//! let program = corpus::fig3_handoff(1);
//! let cells: Vec<Cell> = (0..4)
//!     .map(|seed| Cell {
//!         program: &program,
//!         config: presets::network_cached(2, presets::wo_def2(), seed),
//!     })
//!     .collect();
//! let serial = sweep(&cells, 1);
//! let parallel = sweep(&cells, 4);
//! assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
//! assert!(matches!(serial[0], CellOutcome::Ok(_)));
//! ```

use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use litmus::Program;

use crate::config::MachineConfig;
use crate::machine::{Machine, RunError};
use crate::pool;
use crate::trace::{RunResult, TraceWriter};

/// One grid cell: a program to run under a machine configuration (the
/// cell's seed lives in `config.seed`).
#[derive(Debug, Clone, Copy)]
pub struct Cell<'p> {
    /// The program to run.
    pub program: &'p Program,
    /// The machine configuration, including the cell's seed.
    pub config: MachineConfig,
}

/// What one cell produced.
// In practice every element of a sweep's result vector is the large `Ok`
// variant; boxing it would cost an allocation per cell and save nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The run finished (possibly hitting the cycle watchdog — check
    /// `RunResult::completed`).
    Ok(RunResult),
    /// The run aborted with a structured error (watchdog, protocol
    /// violation, invalid config).
    Err(RunError),
    /// The run panicked; carries the panic message. The worker's cached
    /// machine was dropped, so subsequent cells run on a fresh one.
    Panicked(String),
}

impl CellOutcome {
    /// The completed result, if the run finished.
    #[must_use]
    pub fn ok(&self) -> Option<&RunResult> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Converts into the equivalent [`Machine::run_program`] return value.
    ///
    /// # Errors
    ///
    /// Returns the cell's [`RunError`] when the run aborted.
    ///
    /// # Panics
    ///
    /// Re-raises a [`CellOutcome::Panicked`] cell's panic, restoring the
    /// behavior the caller would have seen running the cell inline.
    pub fn into_result(self) -> Result<RunResult, RunError> {
        match self {
            CellOutcome::Ok(r) => Ok(r),
            CellOutcome::Err(e) => Err(e),
            CellOutcome::Panicked(msg) => panic!("sweep cell panicked: {msg}"),
        }
    }
}

/// A worker's run state: one machine, recycled across every cell the
/// worker steals.
#[derive(Default)]
struct Worker<'p> {
    machine: Option<Machine<'p>>,
}

impl<'p> Worker<'p> {
    fn run_cell(&mut self, cell: &Cell<'p>) -> CellOutcome {
        // Take the machine out: if the run panics, it stays dropped.
        let cached = self.machine.take();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut machine = match cached {
                Some(mut m) => match m.reset(cell.program, &cell.config) {
                    Ok(()) => m,
                    // A failed reset leaves the machine unusable; drop it.
                    Err(e) => return (None, Err(e)),
                },
                None => match Machine::new(cell.program, &cell.config) {
                    Ok(m) => m,
                    Err(e) => return (None, Err(e)),
                },
            };
            let result = machine.run_once();
            (Some(machine), result)
        }));
        match outcome {
            Ok((machine, result)) => {
                self.machine = machine;
                match result {
                    Ok(r) => CellOutcome::Ok(r),
                    Err(e) => CellOutcome::Err(e),
                }
            }
            Err(payload) => CellOutcome::Panicked(panic_message(&payload)),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every cell of the grid and returns the outcomes **in cell order**.
///
/// `threads == 0` uses the machine's available parallelism; `threads == 1`
/// runs serially on the calling thread (still recycling one machine across
/// cells). Workers steal cells from a shared cursor, so load imbalance
/// between cheap and expensive cells self-corrects; because each cell is
/// deterministic and results are merged by cell index, the returned vector
/// is bit-identical at any thread count.
#[must_use]
pub fn sweep(cells: &[Cell<'_>], threads: usize) -> Vec<CellOutcome> {
    pool::run_with_worker(cells.len(), threads, Worker::default, |worker, i| {
        worker.run_cell(&cells[i])
    })
}

/// Runs the grid like [`sweep`] and additionally appends every completed
/// cell's run to `writer` as one trace segment (labelled `cell<i>`), **in
/// cell order** — the sweep engine's emit-trace option.
///
/// Because segments are written from the merged, cell-ordered outcome
/// vector and every cell is deterministic, the emitted trace bytes are
/// identical at any thread count; `simulate → stream → verdict` composes
/// into one reproducible pipeline. Cells that erred or panicked produce
/// no segment (their outcome still reports what happened).
///
/// # Errors
///
/// Returns any I/O error raised while writing the trace.
pub fn sweep_traced<W: Write>(
    cells: &[Cell<'_>],
    threads: usize,
    writer: &mut TraceWriter<W>,
) -> io::Result<Vec<CellOutcome>> {
    let outcomes = sweep(cells, threads);
    for (i, outcome) in outcomes.iter().enumerate() {
        if let CellOutcome::Ok(run) = outcome {
            writer.write_run(&format!("cell{i}"), run)?;
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use litmus::corpus;

    #[test]
    fn outcomes_arrive_in_cell_order_at_any_thread_count() {
        let program = corpus::fig3_handoff(1);
        let cells: Vec<Cell> = (0..12)
            .map(|seed| Cell {
                program: &program,
                config: presets::network_cached(2, presets::wo_def2(), seed),
            })
            .collect();
        let serial = sweep(&cells, 1);
        for threads in [2, 3, 8] {
            let par = sweep(&cells, threads);
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "thread count {threads} changed the merged report"
            );
        }
    }

    #[test]
    fn recycled_cells_match_cold_run_program() {
        let program = corpus::fig1_dekker();
        let cells: Vec<Cell> = (0..6)
            .map(|seed| Cell {
                program: &program,
                config: presets::network_cached(2, presets::sc(), seed),
            })
            .collect();
        for (cell, outcome) in cells.iter().zip(sweep(&cells, 1)) {
            let cold = Machine::run_program(cell.program, &cell.config);
            assert_eq!(format!("{cold:?}"), format!("{:?}", outcome.into_result()));
        }
    }

    #[test]
    fn traced_sweep_bytes_are_thread_count_independent() {
        use crate::trace::TraceWriter;

        let program = corpus::fig3_handoff(1);
        let cells: Vec<Cell> = (0..6)
            .map(|seed| Cell {
                program: &program,
                config: presets::network_cached(2, presets::wo_def2(), seed),
            })
            .collect();
        let emit = |threads: usize| {
            let mut w = TraceWriter::new(Vec::new()).unwrap();
            sweep_traced(&cells, threads, &mut w).unwrap();
            w.finish().unwrap()
        };
        let serial = emit(1);
        let segments = crate::trace::read_trace(&serial[..]).unwrap();
        assert_eq!(segments.len(), 6);
        assert_eq!(segments[2].label, "cell2");
        for threads in [2, 4] {
            assert_eq!(serial, emit(threads), "trace bytes differ at {threads} threads");
        }
    }

    #[test]
    fn errors_are_reported_per_cell_without_aborting_the_sweep() {
        let ok_program = corpus::fig3_handoff(1);
        let mismatched = corpus::fig1_dekker(); // 2 threads on a 3-proc machine
        let cells = [
            Cell {
                program: &mismatched,
                config: presets::network_cached(3, presets::sc(), 1),
            },
            Cell {
                program: &ok_program,
                config: presets::network_cached(2, presets::sc(), 1),
            },
        ];
        let out = sweep(&cells, 2);
        assert!(matches!(out[0], CellOutcome::Err(RunError::ThreadCountMismatch { .. })));
        assert!(matches!(out[1], CellOutcome::Ok(_)));
    }
}
