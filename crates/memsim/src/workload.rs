//! Synthetic workload generation for the quantitative comparison.
//!
//! The paper proposes ("A quantitative performance analysis comparing
//! implementations for the old and new definitions of weak ordering would
//! provide useful insight", Section 7) but does not perform a performance
//! study; these generators provide the workloads for ours. They produce
//! **data-race-free** kernels by construction — each processor works on
//! its own data partition and synchronizes through locks or hand-offs —
//! plus deliberately racy variants for the robustness experiments.

use litmus::{Program, Reg, Thread};
use memory_model::Loc;
use simx::rng::Xoshiro256;

/// Parameters for the random DRF kernel generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrfKernelConfig {
    /// Number of processors/threads.
    pub threads: usize,
    /// Work phases per thread; each phase is a run of private data
    /// accesses followed by one synchronization episode.
    pub phases: u64,
    /// Data accesses per phase (mix of reads and writes to the thread's
    /// private partition).
    pub accesses_per_phase: u32,
    /// Fraction of data accesses that are writes, in percent.
    pub write_percent: u32,
    /// Number of distinct locations in each thread's private partition.
    pub partition_size: u32,
    /// RNG seed (workload shape only; machine timing has its own seed).
    pub seed: u64,
}

impl Default for DrfKernelConfig {
    fn default() -> Self {
        DrfKernelConfig {
            threads: 4,
            phases: 8,
            accesses_per_phase: 16,
            write_percent: 40,
            partition_size: 8,
            seed: 1,
        }
    }
}

/// Base of the private data partitions (locations `PARTITION_BASE +
/// thread * partition_size ..`).
pub const PARTITION_BASE: u32 = 1000;
/// The lock every generated kernel synchronizes on.
pub const KERNEL_LOCK: Loc = Loc(100);
/// The shared counter the critical section updates.
pub const KERNEL_SHARED: Loc = Loc(0);

/// Generates a random data-race-free kernel: each thread alternates
/// private work with a lock-protected critical section that updates a
/// shared counter.
///
/// The generated program is DRF0: private partitions never overlap, and
/// the only shared data access is inside the `TestAndSet`/`Unset`
/// critical section.
///
/// # Examples
///
/// ```
/// use memsim::workload::{drf_kernel, DrfKernelConfig};
///
/// let p = drf_kernel(&DrfKernelConfig { threads: 2, phases: 2, ..Default::default() });
/// assert_eq!(p.num_threads(), 2);
/// ```
#[must_use]
pub fn drf_kernel(config: &DrfKernelConfig) -> Program {
    let mut rng = Xoshiro256::seed_from(config.seed);
    let threads = (0..config.threads)
        .map(|t| {
            let base = PARTITION_BASE + t as u32 * config.partition_size;
            let mut th = Thread::new().mov(Reg(5), 0); // phase counter
            let phase_top = th.here();
            // Private work.
            for _ in 0..config.accesses_per_phase {
                let loc = Loc(base + rng.range_u64(0, u64::from(config.partition_size)) as u32);
                if rng.chance(u64::from(config.write_percent), 100) {
                    th = th.write(loc, rng.range_u64(1, 1 << 20));
                } else {
                    th = th.read(loc, Reg(0));
                }
            }
            // Critical section: acquire, bump the shared counter, release.
            let acquire = th.here();
            th = th
                .test_and_set(KERNEL_LOCK, Reg(1))
                .branch_ne(Reg(1), 0u64, acquire)
                .read(KERNEL_SHARED, Reg(2))
                .add(Reg(2), Reg(2), 1u64)
                .write(KERNEL_SHARED, Reg(2))
                .sync_write(KERNEL_LOCK, 0)
                .add(Reg(5), Reg(5), 1u64)
                .branch_ne(Reg(5), config.phases, phase_top);
            th
        })
        .collect();
    Program::new(threads).expect("generated kernel is structurally valid")
}

/// A racy variant of [`drf_kernel`]: same shape, but the critical-section
/// counter update happens **without** the lock (the lock instructions are
/// elided), creating classic read-modify-write races.
#[must_use]
pub fn racy_kernel(config: &DrfKernelConfig) -> Program {
    let mut rng = Xoshiro256::seed_from(config.seed);
    let threads = (0..config.threads)
        .map(|t| {
            let base = PARTITION_BASE + t as u32 * config.partition_size;
            let mut th = Thread::new().mov(Reg(5), 0);
            let phase_top = th.here();
            for _ in 0..config.accesses_per_phase {
                let loc = Loc(base + rng.range_u64(0, u64::from(config.partition_size)) as u32);
                if rng.chance(u64::from(config.write_percent), 100) {
                    th = th.write(loc, rng.range_u64(1, 1 << 20));
                } else {
                    th = th.read(loc, Reg(0));
                }
            }
            th = th
                .read(KERNEL_SHARED, Reg(2))
                .add(Reg(2), Reg(2), 1u64)
                .write(KERNEL_SHARED, Reg(2))
                .add(Reg(5), Reg(5), 1u64)
                .branch_ne(Reg(5), config.phases, phase_top);
            th
        })
        .collect();
    Program::new(threads).expect("generated kernel is structurally valid")
}

/// A do-all kernel (Section 7's "parallelism only from do-all loops"):
/// each thread sweeps its own disjoint array slice — no sharing at all,
/// the embarrassingly parallel best case for weak ordering (nothing ever
/// needs to stall).
#[must_use]
pub fn doall_kernel(threads: usize, elements_per_thread: u32, seed: u64) -> Program {
    let mut rng = Xoshiro256::seed_from(seed);
    let ts = (0..threads)
        .map(|t| {
            let base = PARTITION_BASE + t as u32 * elements_per_thread;
            let mut th = Thread::new();
            for i in 0..elements_per_thread {
                let loc = Loc(base + i);
                th = th
                    .read(loc, Reg(0))
                    .add(Reg(0), Reg(0), rng.range_u64(1, 100))
                    .write(loc, Reg(0));
            }
            th
        })
        .collect();
    Program::new(ts).expect("generated kernel is structurally valid")
}

/// A pipeline kernel: thread `i` consumes tokens from stage flag `i` and
/// hands them to stage flag `i+1`, with the data cell reused across
/// stages — a chain of synchronized producer/consumer hand-offs. DRF0:
/// every data access is bracketed by the stage flags.
///
/// Thread 0 injects `tokens` items; each subsequent thread increments the
/// payload and forwards it.
#[must_use]
pub fn pipeline_kernel(stages: usize, tokens: u64) -> Program {
    assert!(stages >= 2, "a pipeline needs at least two stages");
    let flag = |i: usize| Loc(200 + i as u32);
    let cell = Loc(0);
    let ts = (0..stages)
        .map(|i| {
            let mut th = Thread::new().mov(Reg(5), 0);
            let top = th.here();
            if i == 0 {
                // Producer: wait for the cell to be free (flag 0 == 0),
                // write the payload, signal stage 1.
                th = th
                    .sync_read(flag(0), Reg(0)) // 1
                    .branch_ne(Reg(0), 0u64, top) // 2
                    .add(Reg(6), Reg(5), 1u64)
                    .write(cell, Reg(6))
                    .sync_write(flag(1), 1)
                    .sync_write(flag(0), 1);
            } else {
                // Stage i: wait for its flag, bump the payload, pass on
                // (the last stage drains back to "free").
                th = th
                    .sync_read(flag(i), Reg(0))
                    .branch_ne(Reg(0), 1u64, top)
                    .read(cell, Reg(1))
                    .add(Reg(1), Reg(1), 1u64)
                    .write(cell, Reg(1))
                    .sync_write(flag(i), 0);
                if i + 1 < stages {
                    th = th.sync_write(flag(i + 1), 1);
                } else {
                    th = th.sync_write(flag(0), 0); // recycle to the producer
                }
            }
            th = th.add(Reg(5), Reg(5), 1u64).branch_ne(Reg(5), tokens, top);
            th
        })
        .collect();
    Program::new(ts).expect("generated kernel is structurally valid")
}

/// Sweeps synchronization frequency: returns kernels whose ratio of data
/// accesses to synchronization episodes is `accesses_per_phase`, for each
/// value in `sweep`.
#[must_use]
pub fn sync_frequency_sweep(
    base: &DrfKernelConfig,
    sweep: &[u32],
) -> Vec<(u32, Program)> {
    sweep
        .iter()
        .map(|&accesses| {
            let cfg = DrfKernelConfig { accesses_per_phase: accesses, ..*base };
            (accesses, drf_kernel(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus::explore::{explore, ExploreConfig};

    #[test]
    fn generated_kernel_shape() {
        let cfg = DrfKernelConfig {
            threads: 3,
            phases: 2,
            accesses_per_phase: 4,
            ..Default::default()
        };
        let p = drf_kernel(&cfg);
        assert_eq!(p.num_threads(), 3);
        assert!(p.static_memory_ops() >= 3 * (4 + 4));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = DrfKernelConfig::default();
        assert_eq!(drf_kernel(&cfg), drf_kernel(&cfg));
        let other = DrfKernelConfig { seed: 2, ..cfg };
        assert_ne!(drf_kernel(&cfg), drf_kernel(&other));
    }

    #[test]
    fn small_drf_kernel_is_race_free_by_exploration() {
        // Bounded exploration of a tiny instance (the TestAndSet spin is
        // unbounded, so full enumeration does not terminate); races found
        // in truncated prefixes still count, and none may appear.
        let cfg = DrfKernelConfig {
            threads: 2,
            phases: 1,
            accesses_per_phase: 1,
            partition_size: 1,
            write_percent: 100,
            seed: 3,
        };
        let p = drf_kernel(&cfg);
        let budget = ExploreConfig {
            max_ops_per_execution: 24,
            max_executions: 20_000,
            ..ExploreConfig::default()
        };
        let report = explore(&p, &budget);
        assert!(report.execution_count > 0);
        assert!(report.race_free(), "races: {:?}", report.races);
    }

    #[test]
    fn small_racy_kernel_races() {
        let cfg = DrfKernelConfig {
            threads: 2,
            phases: 1,
            accesses_per_phase: 1,
            partition_size: 1,
            write_percent: 0,
            seed: 3,
        };
        let p = racy_kernel(&cfg);
        let report = explore(&p, &ExploreConfig::default());
        assert!(report.complete);
        assert!(!report.race_free(), "the unlocked counter update must race");
    }

    #[test]
    fn doall_kernel_is_disjoint_and_race_free() {
        let p = doall_kernel(3, 2, 5);
        assert_eq!(p.num_threads(), 3);
        let report = explore(&p, &ExploreConfig::default());
        assert!(report.complete);
        assert!(report.race_free());
    }

    #[test]
    fn pipeline_kernel_is_drf0_and_delivers_tokens() {
        let p = pipeline_kernel(2, 1);
        let budget = ExploreConfig {
            max_ops_per_execution: 40,
            max_total_steps: 2_000_000,
            ..ExploreConfig::default()
        };
        let report = explore(&p, &budget);
        assert!(report.execution_count > 0);
        assert!(report.race_free(), "races: {:?}", report.races);
        // A completed run leaves the cell holding producer payload + one
        // increment per later stage.
        for o in &report.outcomes {
            if let Some(&(_, v)) = o.final_memory.iter().find(|(l, _)| *l == Loc(0)) {
                assert_eq!(v, 2, "1 (produced) + 1 (stage bump): {o:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn pipeline_needs_two_stages() {
        let _ = pipeline_kernel(1, 1);
    }

    #[test]
    fn sweep_produces_one_program_per_point() {
        let points = sync_frequency_sweep(&DrfKernelConfig::default(), &[4, 8, 16]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 4);
        assert_ne!(points[0].1, points[2].1);
    }
}
