//! The event-driven multiprocessor machine.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use coherence::snoop::{BusOp, SnoopBus};
use coherence::{
    SyncOp,
    AccessResult, CacheController, CacheEvent, CacheToDir, Directory, DirToCache,
    ProcRequest, ProtocolError, RequestId,
};
use litmus::ideal::eval_operand;
use litmus::{Instr, Program, Reg, NUM_REGS};
use memory_model::{Loc, Memory, OpId, OpKind, Operation, ProcId, Value};
use simx::rng::SplitMix64;
use simx::{EventQueue, SimTime};

use crate::config::{CoherenceKind, MachineConfig, MachineConfigError, Policy};
use crate::diag::{ProcDump, StateDump};
use crate::interconnect::{Interconnect, MsgClass, Node, Route};
use crate::trace::{MachineStats, OpRecord, Outcome, ProcStats, RunResult, StallReason};

/// Why a run could not be performed or did not finish.
///
/// The watchdog variants ([`RunError::Deadlock`], [`RunError::Livelock`],
/// [`RunError::RetriesExhausted`]) and [`RunError::Protocol`] carry a
/// [`StateDump`]: under fault injection an aborted run is an expected
/// outcome, and the dump plus the config's seed is a complete reproduction
/// recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration is invalid.
    Config(MachineConfigError),
    /// The program has a different thread count than the machine has
    /// processors.
    ThreadCountMismatch {
        /// Threads in the program.
        threads: usize,
        /// Processors in the machine.
        procs: usize,
    },
    /// A thread looped in local (non-memory) instructions past the budget.
    LocalStepLimit {
        /// The runaway processor.
        proc: u16,
    },
    /// The event queue drained while some processor was still waiting:
    /// nothing can ever wake it (e.g. its request was blackholed).
    Deadlock {
        /// Machine snapshot at abort time.
        dump: Box<StateDump>,
    },
    /// Events kept flowing but no access committed for the configured
    /// stall limit (e.g. an endless NACK storm), or the global event
    /// budget ran out.
    Livelock {
        /// Machine snapshot at abort time.
        dump: Box<StateDump>,
    },
    /// A sender ran out of retries for a repeatedly dropped message.
    RetriesExhausted {
        /// The processor whose traffic gave up.
        proc: u16,
        /// Send attempts made (1 original + retries).
        attempts: u32,
        /// Machine snapshot at abort time.
        dump: Box<StateDump>,
    },
    /// A protocol invariant was violated by a delivered message.
    Protocol {
        /// The violated invariant.
        error: ProtocolError,
        /// Machine snapshot at abort time.
        dump: Box<StateDump>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            RunError::ThreadCountMismatch { threads, procs } => write!(
                f,
                "program has {threads} threads but the machine has {procs} processors"
            ),
            RunError::LocalStepLimit { proc } => {
                write!(f, "processor P{proc} looped in local instructions")
            }
            RunError::Deadlock { dump } => write!(f, "deadlock: {dump}"),
            RunError::Livelock { dump } => write!(f, "livelock: {dump}"),
            RunError::RetriesExhausted { proc, attempts, dump } => {
                write!(f, "P{proc} exhausted {attempts} send attempts: {dump}")
            }
            RunError::Protocol { error, dump } => {
                write!(f, "protocol error: {error}: {dump}")
            }
        }
    }
}

impl Error for RunError {}

impl From<MachineConfigError> for RunError {
    fn from(e: MachineConfigError) -> Self {
        RunError::Config(e)
    }
}

/// What the processor is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeCond {
    /// The value of memory op `seq` (loads, sync reads).
    ValueOf(u32),
    /// Commit of memory op `seq`.
    CommitOf(u32),
    /// Global perform of memory op `seq`.
    GpOf(u32),
    /// This processor's outstanding counter reading zero.
    CounterZero,
    /// Any completion event for this processor (MSHR retry).
    Retry,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Waiting(StallReason, WakeCond),
    Halted,
    Failed,
}

#[derive(Debug, Clone, Copy)]
struct QueuedStore {
    loc: Loc,
    value: Value,
    seq: u32,
    ready_at: SimTime,
}

#[derive(Debug)]
struct Proc {
    pc: usize,
    regs: [Value; NUM_REGS],
    local_steps: u64,
    next_seq: u32,
    status: Status,
    stall_since: Option<(StallReason, SimTime)>,
    /// Accesses issued to the memory system and not yet globally performed
    /// (reads: not yet bound) — the Section 5.3 counter.
    outstanding: u64,
    in_outstanding: HashSet<u32>,
    /// Destination register of in-flight reads / sync reads, by seq.
    pending_dst: HashMap<u32, Reg>,
    /// Data stores waiting to issue (write buffer / MSHR-blocked retries).
    store_queue: VecDeque<QueuedStore>,
    /// Values of generated-but-uncommitted stores, newest last, for
    /// store-to-load forwarding under [`Policy::Relaxed`].
    pending_store_vals: HashMap<Loc, Vec<(u32, Value)>>,
    /// Definition 2 state: whether any line is currently reserved, and the
    /// number of misses sent since it was reserved.
    has_reserved: bool,
    reserved_misses: u32,
    tick_scheduled: bool,
    stats: ProcStats,
}

impl Proc {
    fn new() -> Self {
        Proc {
            pc: 0,
            regs: [0; NUM_REGS],
            local_steps: 0,
            next_seq: 0,
            status: Status::Ready,
            stall_since: None,
            outstanding: 0,
            in_outstanding: HashSet::new(),
            pending_dst: HashMap::new(),
            store_queue: VecDeque::new(),
            pending_store_vals: HashMap::new(),
            has_reserved: false,
            reserved_misses: 0,
            tick_scheduled: false,
            stats: ProcStats::default(),
        }
    }

    /// Clears all run state in place, keeping each collection's allocation.
    fn reset(&mut self) {
        self.pc = 0;
        self.regs = [0; NUM_REGS];
        self.local_steps = 0;
        self.next_seq = 0;
        self.status = Status::Ready;
        self.stall_since = None;
        self.outstanding = 0;
        self.in_outstanding.clear();
        self.pending_dst.clear();
        self.store_queue.clear();
        self.pending_store_vals.clear();
        self.has_reserved = false;
        self.reserved_misses = 0;
        self.tick_scheduled = false;
        self.stats = ProcStats::default();
    }
}

#[derive(Debug, Clone, Copy)]
enum ModAction {
    Read,
    Write(Value),
    Sync(SyncOp),
}

#[derive(Debug, Clone)]
enum Event {
    Tick(u16),
    DirMsg { from: u16, msg: CacheToDir },
    CacheMsg { to: u16, msg: DirToCache },
    ModuleReq { proc: u16, seq: u32, loc: Loc, action: ModAction },
    ModuleReply { proc: u16, seq: u32, loc: Loc, value: Option<Value>, gp_at: SimTime },
    SnoopTxn { proc: u16, seq: u32, op: BusOp, action: ModAction },
    StoreDrain(u16),
}

/// The simulated multiprocessor.
///
/// Use [`Machine::run_program`] for one-shot runs. Sweeps that execute
/// many `(program, config)` cells should build one machine with
/// [`Machine::new`] and recycle it with [`Machine::reset`] between
/// [`Machine::run_once`] calls: the event queue, store queues, cache
/// maps, and trace buffers keep their allocations across runs, and every
/// RNG stream is re-derived from the cell's seed, so a recycled run is
/// bit-identical to a cold one.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    queue: EventQueue<Event>,
    ic: Interconnect,
    procs: Vec<Proc>,
    caches: Vec<CacheController>,
    directory: Directory,
    snoop: Option<SnoopBus>,
    /// Memory for cacheless machines.
    modules: Memory,
    records: Vec<OpRecord>,
    record_index: HashMap<OpId, usize>,
    footprint: BTreeSet<Loc>,
    failed: Option<RunError>,
    /// Last cycle at which any access committed or globally performed —
    /// the progress signal the livelock watchdog compares against.
    last_progress: SimTime,
    /// Whether [`Machine::run_once`] has consumed this configuration.
    ran: bool,
    /// Scratch buffers recycled across every directory/cache message, so
    /// the event loop's hot path allocates nothing per event.
    dir_buf: Vec<(ProcId, DirToCache)>,
    cache_ev_buf: Vec<CacheEvent>,
    cache_reply_buf: Vec<CacheToDir>,
}

impl<'p> Machine<'p> {
    /// Runs `program` to completion (or the watchdog) on the configured
    /// machine.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for invalid configurations, thread-count
    /// mismatches, or runaway local loops. A run that hits the cycle
    /// watchdog is *not* an error: it returns a [`RunResult`] with
    /// `completed == false`.
    pub fn run_program(
        program: &'p Program,
        config: &MachineConfig,
    ) -> Result<RunResult, RunError> {
        Machine::new(program, config)?.run_once()
    }

    /// Builds a machine ready to run `program` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Config`] for invalid configurations and
    /// [`RunError::ThreadCountMismatch`] when the program's thread count
    /// differs from the machine's processor count.
    pub fn new(program: &'p Program, config: &MachineConfig) -> Result<Self, RunError> {
        config.validate()?;
        if program.num_threads() != config.num_procs {
            return Err(RunError::ThreadCountMismatch {
                threads: program.num_threads(),
                procs: config.num_procs,
            });
        }
        let ic = match config.chaos {
            // The fault plan gets its own stream, derived from the run
            // seed, so chaos perturbs message fates without reshuffling
            // the latency draws.
            Some(fault) => {
                let fault_seed = SplitMix64::new(config.seed ^ 0xC4A0_5FA0).next_u64();
                Interconnect::with_chaos(config.interconnect, config.seed, fault, fault_seed)
            }
            None => Interconnect::new(config.interconnect, config.seed),
        };
        let mut machine = Machine {
            program,
            config: *config,
            queue: EventQueue::new(),
            ic,
            procs: (0..config.num_procs).map(|_| Proc::new()).collect(),
            caches: (0..config.num_procs)
                .map(|_| match config.cache_capacity {
                    Some(capacity) => CacheController::with_capacity(capacity),
                    None => CacheController::new(),
                })
                .collect(),
            directory: Directory::new(program.initial_memory()),
            snoop: (config.caches && config.coherence == CoherenceKind::Snooping)
                .then(|| SnoopBus::new(config.num_procs, program.initial_memory())),
            modules: program.initial_memory(),
            records: Vec::new(),
            record_index: HashMap::new(),
            footprint: program.init().iter().map(|&(l, _)| l).collect(),
            failed: None,
            last_progress: SimTime::ZERO,
            ran: false,
            dir_buf: Vec::new(),
            cache_ev_buf: Vec::new(),
            cache_reply_buf: Vec::new(),
        };
        machine.apply_policy_knobs();
        Ok(machine)
    }

    fn apply_policy_knobs(&mut self) {
        if let Policy::WoDef2(d2) = self.config.policy {
            if d2.queue_stalled_syncs {
                for cache in &mut self.caches {
                    cache.set_defer_recalls(true);
                }
            }
        }
    }

    /// Executes the configured run and assembles its [`RunResult`],
    /// leaving the machine ready for [`Machine::reset`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Machine::run_program`].
    ///
    /// # Panics
    ///
    /// Panics if called twice without an intervening [`Machine::reset`] —
    /// running on dirty state would silently corrupt the simulation.
    pub fn run_once(&mut self) -> Result<RunResult, RunError> {
        assert!(!self.ran, "Machine::run_once called twice without a reset");
        self.ran = true;
        self.run();
        self.collect_result()
    }

    /// Runs like [`Machine::run_once`] and, when the run finishes, appends
    /// it to `writer` as one trace segment labelled `label` — the
    /// live-machine end of the `simulate → stream → verdict` pipeline.
    /// Runs that abort with a [`RunError`] write nothing.
    ///
    /// # Errors
    ///
    /// The outer error is any I/O failure writing the trace; the inner
    /// result carries the same contract as [`Machine::run_once`].
    ///
    /// # Panics
    ///
    /// Same as [`Machine::run_once`].
    pub fn run_traced<W: std::io::Write>(
        &mut self,
        label: &str,
        writer: &mut crate::trace::TraceWriter<W>,
    ) -> std::io::Result<Result<RunResult, RunError>> {
        let result = self.run_once();
        if let Ok(run) = &result {
            writer.write_run(label, run)?;
        }
        Ok(result)
    }

    /// Rewinds the machine for a fresh run of `program` under `config`,
    /// recycling every allocation the previous run grew (event queue heap,
    /// store queues, cache maps, record buffers). All RNG streams are
    /// re-derived from `config.seed` exactly as [`Machine::new`] derives
    /// them, so a reset machine replays a given cell bit-identically to a
    /// cold one.
    ///
    /// # Errors
    ///
    /// Same validation as [`Machine::new`]; on error the machine is left
    /// unusable until a subsequent `reset` succeeds.
    pub fn reset(
        &mut self,
        program: &'p Program,
        config: &MachineConfig,
    ) -> Result<(), RunError> {
        config.validate()?;
        if program.num_threads() != config.num_procs {
            return Err(RunError::ThreadCountMismatch {
                threads: program.num_threads(),
                procs: config.num_procs,
            });
        }
        let old_procs = self.config.num_procs;
        self.program = program;
        self.config = *config;
        self.queue.reset();
        let chaos = config
            .chaos
            .map(|fault| (fault, SplitMix64::new(config.seed ^ 0xC4A0_5FA0).next_u64()));
        self.ic.reset(config.interconnect, config.seed, chaos);
        self.procs.resize_with(config.num_procs, Proc::new);
        for proc in &mut self.procs {
            proc.reset();
        }
        self.caches.resize_with(config.num_procs, CacheController::new);
        for cache in &mut self.caches {
            cache.reset(config.cache_capacity);
        }
        self.directory.reset(program.initial_memory());
        self.snoop = if config.caches && config.coherence == CoherenceKind::Snooping {
            match self.snoop.take() {
                Some(mut bus) if old_procs == config.num_procs => {
                    bus.reset(program.initial_memory());
                    Some(bus)
                }
                _ => Some(SnoopBus::new(config.num_procs, program.initial_memory())),
            }
        } else {
            None
        };
        self.modules = program.initial_memory();
        self.records.clear();
        self.record_index.clear();
        self.footprint.clear();
        self.footprint.extend(program.init().iter().map(|&(l, _)| l));
        self.failed = None;
        self.last_progress = SimTime::ZERO;
        self.ran = false;
        self.apply_policy_knobs();
        Ok(())
    }

    /// Runs `program` under each config in turn on one recycled machine —
    /// the serial counterpart of the sweep engine, and the cheapest way to
    /// sweep seeds. Each element of the returned vector is exactly what
    /// [`Machine::run_program`] would have produced for that config.
    pub fn run_many(
        program: &'p Program,
        configs: &[MachineConfig],
    ) -> Vec<Result<RunResult, RunError>> {
        let mut machine: Option<Machine<'p>> = None;
        configs
            .iter()
            .map(|config| match machine.as_mut() {
                Some(m) => m.reset(program, config).and_then(|()| m.run_once()),
                None => match Machine::new(program, config) {
                    Ok(m) => machine.insert(m).run_once(),
                    Err(e) => Err(e),
                },
            })
            .collect()
    }

    /// Global event budget: a backstop far above what any legitimate run
    /// needs, so an event storm that keeps simulated time crawling (e.g. a
    /// NACK loop with tiny latencies) still terminates as a livelock.
    const EVENT_BUDGET: u64 = 50_000_000;

    fn run(&mut self) {
        for p in 0..self.procs.len() {
            self.schedule_tick(p as u16, SimTime::ZERO);
        }
        let mut events: u64 = 0;
        while let Some((t, ev)) = self.queue.pop() {
            if t.cycles() > self.config.max_cycles || self.failed.is_some() {
                return;
            }
            events += 1;
            if events > Self::EVENT_BUDGET {
                let dump = self.dump(format!(
                    "no convergence within {} events",
                    Self::EVENT_BUDGET
                ));
                self.failed = Some(RunError::Livelock { dump });
                return;
            }
            if let Some(limit) = self.config.stall_limit {
                if t.cycles() > self.last_progress.cycles().saturating_add(limit) {
                    let dump = self.dump(format!(
                        "no access committed or globally performed for {limit} cycles"
                    ));
                    self.failed = Some(RunError::Livelock { dump });
                    return;
                }
            }
            match ev {
                Event::Tick(p) => {
                    self.procs[p as usize].tick_scheduled = false;
                    self.proc_step(p);
                }
                Event::DirMsg { from, msg } => {
                    // Move the scratch buffer out of self so the handler
                    // can fill it while the send loop re-borrows self.
                    let mut out = std::mem::take(&mut self.dir_buf);
                    out.clear();
                    match self.directory.handle_into(ProcId(from), msg, &mut out) {
                        Ok(()) => {
                            for (to, reply) in out.drain(..) {
                                self.send_to_cache(to.0, reply);
                            }
                        }
                        Err(error) => self.fail_protocol(error),
                    }
                    self.dir_buf = out;
                }
                Event::CacheMsg { to, msg } => {
                    let mut ev_buf = std::mem::take(&mut self.cache_ev_buf);
                    let mut reply_buf = std::mem::take(&mut self.cache_reply_buf);
                    ev_buf.clear();
                    reply_buf.clear();
                    match self.caches[to as usize].handle_into(
                        msg,
                        &mut ev_buf,
                        &mut reply_buf,
                    ) {
                        Ok(()) => {
                            for ev in ev_buf.drain(..) {
                                self.apply_cache_event(to, ev);
                            }
                            for reply in reply_buf.drain(..) {
                                self.send_to_dir(to, reply);
                            }
                            self.after_completion(to);
                        }
                        Err(error) => self.fail_protocol(error),
                    }
                    self.cache_ev_buf = ev_buf;
                    self.cache_reply_buf = reply_buf;
                }
                Event::ModuleReq { proc, seq, loc, action } => {
                    self.module_apply(proc, seq, loc, action);
                }
                Event::ModuleReply { proc, seq, loc, value, gp_at } => {
                    self.module_reply(proc, seq, loc, value, gp_at);
                }
                Event::SnoopTxn { proc, seq, op, action } => {
                    self.snoop_transact(proc, seq, op, action);
                }
                Event::StoreDrain(p) => {
                    self.drain_store_queue(p);
                }
            }
        }
        // The queue drained. A processor still waiting can never be woken
        // now — its wake-up message is gone (blackholed), not late.
        if self.failed.is_none()
            && self.procs.iter().any(|p| matches!(p.status, Status::Waiting(..)))
        {
            let dump =
                self.dump("event queue drained with processors still waiting".to_string());
            self.failed = Some(RunError::Deadlock { dump });
        }
    }

    /// Records a protocol violation with a state dump; the run loop exits
    /// on the next iteration.
    fn fail_protocol(&mut self, error: ProtocolError) {
        let dump = self.dump(format!("protocol invariant violated: {error}"));
        self.failed = Some(RunError::Protocol { error, dump });
    }

    /// Snapshots the machine for an abort diagnostic.
    fn dump(&self, reason: String) -> Box<StateDump> {
        let procs = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, proc)| ProcDump {
                proc: i as u16,
                status: format!("{:?}", proc.status),
                stall: proc.stall_since.map(|(r, since)| (r, since.cycles())),
                pc: proc.pc,
                outstanding: proc.outstanding,
                store_queue_len: proc.store_queue.len(),
                reserved_lines: self
                    .caches
                    .get(i)
                    .map(|c| c.reserved_lines())
                    .unwrap_or_default(),
            })
            .collect();
        Box::new(StateDump {
            at_cycle: self.now().cycles(),
            reason,
            procs,
            queued_events: self.queue.len(),
            directory_busy: self.directory.busy_lines(),
            chaos: self.ic.fault_stats().copied(),
        })
    }

    /// Sends `event` across the interconnect under the fault plan:
    /// schedules delivery (twice, for duplicated control messages), drops
    /// blackholed traffic on the floor, and aborts the run when a sender's
    /// retry budget is exhausted. `proc` attributes the traffic for the
    /// [`RunError::RetriesExhausted`] diagnostic.
    fn dispatch(&mut self, src: Node, dst: Node, class: MsgClass, proc: u16, event: Event) {
        match self.ic.route(self.now(), src, dst, class) {
            Route::Deliver { at, duplicate_at, retries: _ } => {
                if let Some(dup_at) = duplicate_at {
                    // Must stay: a duplicated delivery needs its own copy,
                    // and only the (rare) chaos dup path ever pays for it.
                    self.queue.schedule(dup_at, event.clone());
                }
                self.queue.schedule(at, event);
            }
            Route::Blackholed => {}
            Route::Exhausted { attempts } => {
                let dump =
                    self.dump(format!("P{proc} gave up resending after {attempts} attempts"));
                self.failed = Some(RunError::RetriesExhausted { proc, attempts, dump });
            }
        }
    }

    // ---------------------------------------------------------------
    // Processor execution
    // ---------------------------------------------------------------

    fn schedule_tick(&mut self, p: u16, at: SimTime) {
        let proc = &mut self.procs[p as usize];
        if !proc.tick_scheduled {
            proc.tick_scheduled = true;
            let at = at.max(self.queue.now());
            self.queue.schedule(at, Event::Tick(p));
        }
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Puts the processor into a wait state, starting the stall clock.
    fn stall(&mut self, p: u16, reason: StallReason, cond: WakeCond) {
        let now = self.now();
        let proc = &mut self.procs[p as usize];
        proc.status = Status::Waiting(reason, cond);
        proc.stall_since = Some((reason, now));
    }

    /// Wakes the processor if `test` matches its wait condition.
    fn maybe_wake(&mut self, p: u16, test: impl Fn(WakeCond) -> bool) {
        let now = self.now();
        let proc = &mut self.procs[p as usize];
        if let Status::Waiting(_, cond) = proc.status {
            if test(cond) {
                if let Some((reason, since)) = proc.stall_since.take() {
                    *proc.stats.stalls.entry(reason).or_insert(0) +=
                        now.saturating_since(since);
                }
                proc.status = Status::Ready;
                self.schedule_tick(p, now);
            }
        }
    }

    fn proc_step(&mut self, p: u16) {
        let pi = p as usize;
        if self.procs[pi].status != Status::Ready {
            return;
        }
        // Run local (register/branch) instructions for free until the next
        // memory instruction or halt.
        let thread = &self.program.threads()[pi];
        loop {
            let now_cycles = self.now().cycles();
            let proc = &mut self.procs[pi];
            if proc.pc >= thread.len() {
                proc.status = Status::Halted;
                proc.stats.finish_time = now_cycles;
                return;
            }
            let instr = thread.instrs()[proc.pc];
            if instr.is_memory_op() {
                break;
            }
            if proc.local_steps > 1_000_000 {
                proc.status = Status::Failed;
                self.failed = Some(RunError::LocalStepLimit { proc: p });
                return;
            }
            proc.local_steps += 1;
            match instr {
                Instr::Move { dst, src } => {
                    proc.regs[dst.index()] = eval_operand(&proc.regs, src);
                    proc.pc += 1;
                }
                Instr::Add { dst, a, b } => {
                    proc.regs[dst.index()] =
                        eval_operand(&proc.regs, a).wrapping_add(eval_operand(&proc.regs, b));
                    proc.pc += 1;
                }
                Instr::BranchEq { a, b, target } => {
                    proc.pc = if eval_operand(&proc.regs, a) == eval_operand(&proc.regs, b) {
                        target
                    } else {
                        proc.pc + 1
                    };
                }
                Instr::BranchNe { a, b, target } => {
                    proc.pc = if eval_operand(&proc.regs, a) != eval_operand(&proc.regs, b) {
                        target
                    } else {
                        proc.pc + 1
                    };
                }
                Instr::Jump { target } => proc.pc = target,
                Instr::Fence => {
                    if proc.outstanding > 0 || !proc.store_queue.is_empty() {
                        // RP3-style: wait for all outstanding accesses to
                        // globally perform (and buffered stores to drain).
                        self.stall(p, StallReason::FenceDrain, WakeCond::CounterZero);
                        return;
                    }
                    proc.pc += 1;
                }
                _ => unreachable!("memory ops break out above"),
            }
        }

        let instr = thread.instrs()[self.procs[pi].pc];

        // Policy gate: may this access be generated now?
        if let Some((reason, cond)) = self.issue_gate(p, &instr) {
            self.stall(p, reason, cond);
            return;
        }

        self.issue_memory(p, instr);

        // One memory operation per cycle: if still runnable, continue next
        // cycle.
        if self.procs[pi].status == Status::Ready {
            self.schedule_tick(p, self.now() + 1);
        }
    }

    /// The policy's pre-issue gate (returns a stall if the access may not
    /// be generated yet).
    fn issue_gate(&self, p: u16, instr: &Instr) -> Option<(StallReason, WakeCond)> {
        let proc = &self.procs[p as usize];
        let is_sync = matches!(
            instr,
            Instr::SyncRead { .. }
                | Instr::SyncWrite { .. }
                | Instr::TestAndSet { .. }
                | Instr::FetchAdd { .. }
        );
        match self.config.policy {
            Policy::Sc => (proc.outstanding > 0)
                .then_some((StallReason::ScGlobalPerform, WakeCond::CounterZero)),
            Policy::Relaxed { .. } => None,
            Policy::WoDef1 => (is_sync && proc.outstanding > 0)
                .then_some((StallReason::Def1BeforeSync, WakeCond::CounterZero)),
            Policy::WoDef2(cfg) => {
                if let Some(max) = cfg.max_misses_while_reserved {
                    if proc.has_reserved && proc.reserved_misses >= max {
                        return Some((
                            StallReason::ReservedMissBudget,
                            WakeCond::CounterZero,
                        ));
                    }
                }
                None
            }
        }
    }

    /// Generates the memory access at the current pc and advances it.
    fn issue_memory(&mut self, p: u16, instr: Instr) {
        let pi = p as usize;
        let now = self.now();
        let seq = self.procs[pi].next_seq;
        self.procs[pi].next_seq += 1;
        self.procs[pi].pc += 1;
        self.procs[pi].stats.ops += 1;

        match instr {
            Instr::Read { loc, dst } => {
                self.footprint.insert(loc);
                // Store-to-load forwarding under Relaxed: a read may take
                // its value from the newest pending (uncommitted) write in
                // this processor's buffer.
                if matches!(self.config.policy, Policy::Relaxed { .. }) {
                    if let Some(vals) = self.procs[pi].pending_store_vals.get(&loc) {
                        if let Some(&(_, v)) = vals.last() {
                            self.record_complete(
                                p,
                                seq,
                                Operation::data_read(opid(p, seq), ProcId(p), loc, v),
                                now,
                                now,
                                now,
                            );
                            self.procs[pi].regs[dst.index()] = v;
                            return;
                        }
                    }
                }
                self.procs[pi].pending_dst.insert(seq, dst);
                self.start_record(p, seq, OpKind::DataRead, loc, None, now);
                self.begin_access(p, seq, loc, ModAction::Read, None);
            }
            Instr::Write { loc, src } => {
                self.footprint.insert(loc);
                let value = eval_operand(&self.procs[pi].regs, src);
                self.start_record(p, seq, OpKind::DataWrite, loc, Some(value), now);
                let delay = match self.config.policy {
                    Policy::Relaxed { write_delay } => write_delay,
                    _ => 0,
                };
                if matches!(self.config.policy, Policy::Relaxed { .. }) {
                    self.procs[pi]
                        .pending_store_vals
                        .entry(loc)
                        .or_default()
                        .push((seq, value));
                }
                self.procs[pi].store_queue.push_back(QueuedStore {
                    loc,
                    value,
                    seq,
                    ready_at: now + delay,
                });
                if delay == 0 {
                    self.drain_store_queue(p);
                } else {
                    self.queue.schedule(now + delay, Event::StoreDrain(p));
                }
            }
            Instr::SyncRead { loc, dst } => {
                self.issue_sync(p, seq, loc, SyncOp::Test, Some(dst));
            }
            Instr::SyncWrite { loc, src } => {
                let value = eval_operand(&self.procs[pi].regs, src);
                self.issue_sync(p, seq, loc, SyncOp::SetTo(value), None);
            }
            Instr::TestAndSet { loc, dst } => {
                self.issue_sync(p, seq, loc, SyncOp::TestAndSet, Some(dst));
            }
            Instr::FetchAdd { loc, dst, add } => {
                let n = eval_operand(&self.procs[pi].regs, add);
                self.issue_sync(p, seq, loc, SyncOp::FetchAdd(n), Some(dst));
            }
            _ => unreachable!("local instructions handled in proc_step"),
        }
    }

    fn issue_sync(&mut self, p: u16, seq: u32, loc: Loc, op: SyncOp, dst: Option<Reg>) {
        let pi = p as usize;
        let now = self.now();
        self.footprint.insert(loc);
        let kind = match op {
            SyncOp::Test => OpKind::SyncRead,
            SyncOp::SetTo(_) => OpKind::SyncWrite,
            SyncOp::TestAndSet | SyncOp::FetchAdd(_) => OpKind::SyncRmw,
        };
        let write_value = match op {
            SyncOp::SetTo(v) => Some(v),
            SyncOp::TestAndSet => Some(1),
            // FetchAdd's stored value is known only at commit.
            SyncOp::FetchAdd(_) | SyncOp::Test => None,
        };
        if let Some(dst) = dst {
            self.procs[pi].pending_dst.insert(seq, dst);
        }
        self.start_record(p, seq, kind, loc, write_value, now);

        let needs_exclusive = match self.config.policy {
            Policy::WoDef2(cfg) if cfg.read_only_sync_optimization => {
                !matches!(op, SyncOp::Test)
            }
            _ => true,
        };
        self.begin_access(p, seq, loc, ModAction::Sync(op), Some(needs_exclusive));

        // The access may have been rewound (MSHR conflict or a full cache
        // with no evictable victim); the processor is already stalled for a
        // retry and the record is gone.
        let Some(&rec_idx) = self.record_index.get(&opid(p, seq)) else {
            return;
        };

        // Post-issue waits. (Completion events processed synchronously by
        // begin_access may already have readied the op; only wait if it is
        // still incomplete.)
        let rec = &self.records[rec_idx];
        let committed = rec.commit != UNSET_TIME;
        let gp = rec.globally_performed != UNSET_TIME;
        match self.config.policy {
            Policy::Sc | Policy::WoDef1 => {
                if !gp {
                    let reason = if self.config.policy == Policy::Sc {
                        StallReason::ScGlobalPerform
                    } else {
                        StallReason::Def1AfterSync
                    };
                    self.stall(p, reason, WakeCond::GpOf(seq));
                }
            }
            Policy::WoDef2(_) => {
                if !committed {
                    self.stall(p, StallReason::SyncCommit, WakeCond::CommitOf(seq));
                }
            }
            Policy::Relaxed { .. } => {
                // Even the relaxed machine binds sync read values before
                // dependent use; treat sync ops like reads when they carry
                // a destination register.
                if !committed && dst.is_some() {
                    self.stall(p, StallReason::ReadValue, WakeCond::ValueOf(seq));
                }
            }
        }
    }

    /// Routes an access to the cache hierarchy or a memory module. For
    /// loads, installs the post-issue wait.
    fn begin_access(
        &mut self,
        p: u16,
        seq: u32,
        loc: Loc,
        action: ModAction,
        needs_exclusive: Option<bool>,
    ) {
        let pi = p as usize;
        if self.snoop.is_some() {
            self.begin_snoop_access(p, seq, loc, action);
            return;
        }
        if self.config.caches {
            let req = RequestId(u64::from(seq));
            let request = match action {
                ModAction::Read => ProcRequest::Load { loc, req },
                ModAction::Write(_) => unreachable!("stores go through the store queue"),
                ModAction::Sync(op) => ProcRequest::Sync {
                    loc,
                    op,
                    req,
                    needs_exclusive: needs_exclusive.unwrap_or(true),
                },
            };
            match self.caches[pi].access(request) {
                AccessResult::Done(events) => {
                    for ev in events {
                        self.apply_cache_event(p, ev);
                    }
                }
                AccessResult::Miss(msgs) => {
                    self.note_miss(p, seq);
                    for msg in msgs {
                        self.send_to_dir(p, msg);
                    }
                    if matches!(action, ModAction::Read) {
                        self.stall(p, StallReason::ReadValue, WakeCond::ValueOf(seq));
                    }
                }
                AccessResult::Blocked => {
                    // Same-line request outstanding: the access is
                    // regenerated when that request completes. Rewind.
                    self.procs[pi].pc -= 1;
                    self.procs[pi].next_seq -= 1;
                    self.procs[pi].stats.ops -= 1;
                    self.procs[pi].pending_dst.remove(&seq);
                    self.forget_record(p, seq);
                    self.stall(p, StallReason::MshrConflict, WakeCond::Retry);
                }
            }
        } else {
            self.note_miss(p, seq);
            let node = self.module_node(loc);
            self.dispatch(
                Node::Proc(p),
                node,
                MsgClass::Normal,
                p,
                Event::ModuleReq { proc: p, seq, loc, action },
            );
            if matches!(action, ModAction::Read) {
                self.stall(p, StallReason::ReadValue, WakeCond::ValueOf(seq));
            }
        }
    }

    fn note_miss(&mut self, p: u16, seq: u32) {
        let proc = &mut self.procs[p as usize];
        proc.outstanding += 1;
        proc.in_outstanding.insert(seq);
        if proc.has_reserved {
            proc.reserved_misses += 1;
        }
    }

    /// Drains ready entries from the head of the store queue, preserving
    /// program order among buffered stores.
    fn drain_store_queue(&mut self, p: u16) {
        self.drain_store_queue_inner(p);
        // A fence may be waiting for the buffer to empty while no access
        // is outstanding (e.g. every buffered store hit in the cache).
        let pi = p as usize;
        if self.procs[pi].store_queue.is_empty() && self.procs[pi].outstanding == 0 {
            self.maybe_wake(p, |c| c == WakeCond::CounterZero);
        }
    }

    fn drain_store_queue_inner(&mut self, p: u16) {
        let pi = p as usize;
        let now = self.now();
        while let Some(&head) = self.procs[pi].store_queue.front() {
            if head.ready_at > now {
                // Not ready: a StoreDrain event is already scheduled.
                return;
            }
            if let Some(bus) = self.snoop.as_mut() {
                if bus.line_state(ProcId(p), head.loc) == coherence::LineState::Exclusive {
                    bus.write_local(ProcId(p), head.loc, head.value);
                    self.procs[pi].store_queue.pop_front();
                    self.complete_snoop_write(p, head.seq, head.loc, now);
                } else {
                    self.procs[pi].store_queue.pop_front();
                    self.note_miss(p, head.seq);
                    self.dispatch(
                        Node::Proc(p),
                        Node::Module(0),
                        MsgClass::Normal,
                        p,
                        Event::SnoopTxn {
                            proc: p,
                            seq: head.seq,
                            op: BusOp::ReadExclusive { loc: head.loc },
                            action: ModAction::Write(head.value),
                        },
                    );
                }
                continue;
            }
            if self.config.caches {
                let req = RequestId(u64::from(head.seq));
                match self.caches[pi].access(ProcRequest::Store {
                    loc: head.loc,
                    value: head.value,
                    req,
                }) {
                    AccessResult::Done(events) => {
                        self.procs[pi].store_queue.pop_front();
                        for ev in events {
                            self.apply_cache_event(p, ev);
                        }
                    }
                    AccessResult::Miss(msgs) => {
                        self.procs[pi].store_queue.pop_front();
                        self.note_miss(p, head.seq);
                        for msg in msgs {
                            self.send_to_dir(p, msg);
                        }
                    }
                    AccessResult::Blocked => {
                        // Head waits for the same-line transaction to
                        // complete; retried by after_completion.
                        return;
                    }
                }
            } else {
                self.procs[pi].store_queue.pop_front();
                self.note_miss(p, head.seq);
                let node = self.module_node(head.loc);
                self.dispatch(
                    Node::Proc(p),
                    node,
                    MsgClass::Normal,
                    p,
                    Event::ModuleReq {
                        proc: p,
                        seq: head.seq,
                        loc: head.loc,
                        action: ModAction::Write(head.value),
                    },
                );
            }
        }
    }

    // ---------------------------------------------------------------
    // Cache-machine plumbing
    // ---------------------------------------------------------------

    fn shard(&self, loc: Loc) -> u32 {
        loc.0 % self.config.num_modules
    }

    fn module_node(&self, loc: Loc) -> Node {
        Node::Module(self.shard(loc))
    }

    fn send_to_dir(&mut self, from: u16, msg: CacheToDir) {
        let class = match msg {
            CacheToDir::InvAck { .. } => MsgClass::InvAck,
            _ => MsgClass::Normal,
        };
        let node = self.module_node(msg.loc());
        self.dispatch(Node::Proc(from), node, class, from, Event::DirMsg { from, msg });
    }

    fn send_to_cache(&mut self, to: u16, msg: DirToCache) {
        // Recalls and downgrades are the idempotent control messages the
        // fault plan is allowed to duplicate.
        let class = match msg {
            DirToCache::Recall { .. } | DirToCache::Downgrade { .. } => MsgClass::Control,
            _ => MsgClass::Normal,
        };
        let node = self.module_node(msg.loc());
        self.dispatch(node, Node::Proc(to), class, to, Event::CacheMsg { to, msg });
    }

    fn apply_cache_event(&mut self, p: u16, ev: CacheEvent) {
        let now = self.now();
        match ev {
            CacheEvent::LoadDone { req, loc, value } => {
                let seq = req.0 as u32;
                self.finish_read(p, seq, loc, value, now);
            }
            CacheEvent::StoreCommitted { req, loc: _ } => {
                let seq = req.0 as u32;
                self.set_commit(p, seq, now);
                // The store's value is now visible through the protocol:
                // drop it from the forwarding buffer.
                let proc = &mut self.procs[p as usize];
                if let Some(rec) = self.record_index.get(&opid(p, seq)) {
                    let loc = self.records[*rec].op.loc;
                    if let Some(vals) = proc.pending_store_vals.get_mut(&loc) {
                        vals.retain(|&(s, _)| s != seq);
                        if vals.is_empty() {
                            proc.pending_store_vals.remove(&loc);
                        }
                    }
                }
                self.maybe_wake(p, |c| c == WakeCond::CommitOf(seq));
            }
            CacheEvent::StoreGloballyPerformed { req, loc: _ } => {
                let seq = req.0 as u32;
                self.set_gp(p, seq, now);
                self.retire_outstanding(p, seq);
                self.maybe_wake(p, |c| c == WakeCond::GpOf(seq));
            }
            CacheEvent::SyncCommitted { req, loc, read_value } => {
                let seq = req.0 as u32;
                self.set_commit(p, seq, now);
                if let Some(v) = read_value {
                    self.bind_read_value(p, seq, v);
                }
                // FetchAdd's stored value becomes known at commit.
                if let Some(&idx) = self.record_index.get(&opid(p, seq)) {
                    let rec = &mut self.records[idx];
                    if rec.op.kind == OpKind::SyncRmw && rec.op.write_value.is_none() {
                        rec.op.write_value = self.caches[p as usize].cached_value(loc);
                    }
                }
                self.def2_reserve_check(p, seq, loc);
                self.maybe_wake(p, |c| {
                    c == WakeCond::CommitOf(seq) || c == WakeCond::ValueOf(seq)
                });
            }
            CacheEvent::SyncGloballyPerformed { req, loc: _ } => {
                let seq = req.0 as u32;
                self.set_gp(p, seq, now);
                self.retire_outstanding(p, seq);
                self.maybe_wake(p, |c| c == WakeCond::GpOf(seq));
            }
        }
    }

    /// Section 5.3: at synchronization commit, if the counter is positive
    /// (not counting the synchronization operation itself), reserve the
    /// line.
    fn def2_reserve_check(&mut self, p: u16, seq: u32, loc: Loc) {
        let Policy::WoDef2(cfg) = self.config.policy else { return };
        let pi = p as usize;
        // The Section 6 optimization: read-only sync ops do not reserve.
        if cfg.read_only_sync_optimization {
            if let Some(&idx) = self.record_index.get(&opid(p, seq)) {
                if self.records[idx].op.kind == OpKind::SyncRead {
                    return;
                }
            }
        }
        let own = u64::from(self.procs[pi].in_outstanding.contains(&seq));
        if self.procs[pi].outstanding - own > 0 {
            self.caches[pi].set_reserved(loc, true);
            let proc = &mut self.procs[pi];
            proc.has_reserved = true;
            proc.reserved_misses = 0;
        }
    }

    /// Called after a completion event batch: lets blocked work retry.
    fn after_completion(&mut self, p: u16) {
        self.drain_store_queue(p);
        self.maybe_wake(p, |c| c == WakeCond::Retry);
    }

    // ---------------------------------------------------------------
    // Snooping-bus machine
    // ---------------------------------------------------------------

    /// Issues a load or synchronization access on the snooping machine:
    /// local hit or an atomic bus transaction.
    fn begin_snoop_access(&mut self, p: u16, seq: u32, loc: Loc, action: ModAction) {
        let now = self.now();
        let bus = self.snoop.as_mut().expect("snoop access on a snooping machine");
        match action {
            ModAction::Read => {
                if let Some(v) = bus.cached_value(ProcId(p), loc) {
                    self.finish_read(p, seq, loc, v, now);
                    return;
                }
                self.note_miss(p, seq);
                self.dispatch(
                    Node::Proc(p),
                    Node::Module(0),
                    MsgClass::Normal,
                    p,
                    Event::SnoopTxn { proc: p, seq, op: BusOp::Read { loc }, action },
                );
                self.stall(p, StallReason::ReadValue, WakeCond::ValueOf(seq));
            }
            ModAction::Sync(op) => {
                if bus.line_state(ProcId(p), loc) == coherence::LineState::Exclusive {
                    let old = bus.cached_value(ProcId(p), loc).expect("exclusive line has a value");
                    self.apply_snoop_sync(p, seq, loc, op, old, now);
                    return;
                }
                self.note_miss(p, seq);
                self.dispatch(
                    Node::Proc(p),
                    Node::Module(0),
                    MsgClass::Normal,
                    p,
                    Event::SnoopTxn { proc: p, seq, op: BusOp::ReadExclusive { loc }, action },
                );
            }
            ModAction::Write(_) => unreachable!("stores go through the store queue"),
        }
    }

    /// The atomic bus grant: run the transaction and complete the access.
    fn snoop_transact(&mut self, p: u16, seq: u32, op: BusOp, action: ModAction) {
        let now = self.now();
        let loc = op.loc();
        let bus = self.snoop.as_mut().expect("snoop txn on a snooping machine");
        let granted = bus.transact(ProcId(p), op);
        match action {
            ModAction::Read => {
                self.finish_read(p, seq, loc, granted, now);
            }
            ModAction::Write(v) => {
                self.snoop.as_mut().expect("checked above").write_local(ProcId(p), loc, v);
                self.complete_snoop_write(p, seq, loc, now);
            }
            ModAction::Sync(sync_op) => {
                self.apply_snoop_sync(p, seq, loc, sync_op, granted, now);
            }
        }
        self.after_completion(p);
    }

    /// Applies a synchronization operation on an exclusively held line:
    /// on the atomic bus commit and global perform coincide.
    fn apply_snoop_sync(
        &mut self,
        p: u16,
        seq: u32,
        loc: Loc,
        op: SyncOp,
        old: Value,
        now: SimTime,
    ) {
        let (read_value, new) = match op {
            SyncOp::Test => (Some(old), old),
            SyncOp::SetTo(v) => (None, v),
            SyncOp::TestAndSet => (Some(old), 1),
            SyncOp::FetchAdd(n) => (Some(old), old.wrapping_add(n)),
        };
        self.snoop
            .as_mut()
            .expect("sync apply on a snooping machine")
            .write_local(ProcId(p), loc, new);
        self.set_commit(p, seq, now);
        self.set_gp(p, seq, now);
        if let Some(v) = read_value {
            self.bind_read_value(p, seq, v);
        }
        if let Some(&idx) = self.record_index.get(&opid(p, seq)) {
            let rec = &mut self.records[idx];
            if rec.op.kind == OpKind::SyncRmw && rec.op.write_value.is_none() {
                rec.op.write_value = Some(new);
            }
        }
        self.retire_outstanding(p, seq);
        self.maybe_wake(p, |c| {
            c == WakeCond::CommitOf(seq)
                || c == WakeCond::ValueOf(seq)
                || c == WakeCond::GpOf(seq)
        });
    }

    fn complete_snoop_write(&mut self, p: u16, seq: u32, loc: Loc, now: SimTime) {
        self.set_commit(p, seq, now);
        self.set_gp(p, seq, now);
        let proc = &mut self.procs[p as usize];
        if let Some(vals) = proc.pending_store_vals.get_mut(&loc) {
            vals.retain(|&(s, _)| s != seq);
            if vals.is_empty() {
                proc.pending_store_vals.remove(&loc);
            }
        }
        self.retire_outstanding(p, seq);
        self.maybe_wake(p, |c| c == WakeCond::CommitOf(seq) || c == WakeCond::GpOf(seq));
    }

    // ---------------------------------------------------------------
    // Cacheless machine: memory modules
    // ---------------------------------------------------------------

    fn module_apply(&mut self, proc: u16, seq: u32, loc: Loc, action: ModAction) {
        let now = self.now();
        let value = match action {
            ModAction::Read => Some(self.modules.read(loc)),
            ModAction::Write(v) => {
                self.modules.write(loc, v);
                None
            }
            ModAction::Sync(op) => {
                let old = self.modules.read(loc);
                match op {
                    SyncOp::Test => Some(old),
                    SyncOp::SetTo(v) => {
                        self.modules.write(loc, v);
                        None
                    }
                    SyncOp::TestAndSet => {
                        self.modules.write(loc, 1);
                        Some(old)
                    }
                    SyncOp::FetchAdd(n) => {
                        self.modules.write(loc, old.wrapping_add(n));
                        Some(old)
                    }
                }
            }
        };
        // The access commits and is globally performed at the module, now.
        if let ModAction::Sync(SyncOp::FetchAdd(n)) = action {
            if let Some(&idx) = self.record_index.get(&opid(proc, seq)) {
                self.records[idx].op.write_value =
                    Some(value.unwrap_or(0).wrapping_add(n));
            }
        }
        let node = self.module_node(loc);
        self.dispatch(
            node,
            Node::Proc(proc),
            MsgClass::Normal,
            proc,
            Event::ModuleReply { proc, seq, loc, value, gp_at: now },
        );
    }

    fn module_reply(
        &mut self,
        p: u16,
        seq: u32,
        loc: Loc,
        value: Option<Value>,
        gp_at: SimTime,
    ) {
        // The access committed and globally performed at the module; the
        // processor learns now.
        self.set_commit_at(p, seq, gp_at);
        self.set_gp_at(p, seq, gp_at);
        if let Some(v) = value {
            self.bind_read_value(p, seq, v);
        }
        // Clear forwarded-store bookkeeping for writes.
        let proc = &mut self.procs[p as usize];
        if let Some(vals) = proc.pending_store_vals.get_mut(&loc) {
            vals.retain(|&(s, _)| s != seq);
            if vals.is_empty() {
                proc.pending_store_vals.remove(&loc);
            }
        }
        self.retire_outstanding(p, seq);
        self.maybe_wake(p, |c| {
            c == WakeCond::ValueOf(seq)
                || c == WakeCond::CommitOf(seq)
                || c == WakeCond::GpOf(seq)
        });
        self.after_completion(p);
    }

    // ---------------------------------------------------------------
    // Record bookkeeping
    // ---------------------------------------------------------------

    fn start_record(
        &mut self,
        p: u16,
        seq: u32,
        kind: OpKind,
        loc: Loc,
        write_value: Option<Value>,
        issue: SimTime,
    ) {
        let id = opid(p, seq);
        let op = Operation {
            id,
            proc: ProcId(p),
            kind,
            loc,
            read_value: None,
            write_value,
        };
        let rec = OpRecord {
            op,
            issue,
            commit: UNSET_TIME,
            globally_performed: UNSET_TIME,
        };
        self.record_index.insert(id, self.records.len());
        self.records.push(rec);
    }

    fn record_complete(
        &mut self,
        p: u16,
        seq: u32,
        op: Operation,
        issue: SimTime,
        commit: SimTime,
        gp: SimTime,
    ) {
        let id = opid(p, seq);
        let rec = OpRecord { op, issue, commit, globally_performed: gp };
        self.record_index.insert(id, self.records.len());
        self.records.push(rec);
    }

    fn forget_record(&mut self, p: u16, seq: u32) {
        if let Some(idx) = self.record_index.remove(&opid(p, seq)) {
            debug_assert_eq!(idx, self.records.len() - 1, "only the newest record rewinds");
            self.records.pop();
        }
    }

    fn set_commit(&mut self, p: u16, seq: u32, at: SimTime) {
        self.set_commit_at(p, seq, at);
    }

    fn set_commit_at(&mut self, p: u16, seq: u32, at: SimTime) {
        let idx = self.record_index[&opid(p, seq)];
        if self.records[idx].commit == UNSET_TIME {
            self.records[idx].commit = at;
            self.last_progress = self.last_progress.max(self.now());
        }
    }

    fn set_gp(&mut self, p: u16, seq: u32, at: SimTime) {
        self.set_gp_at(p, seq, at);
    }

    fn set_gp_at(&mut self, p: u16, seq: u32, at: SimTime) {
        let idx = self.record_index[&opid(p, seq)];
        if self.records[idx].globally_performed == UNSET_TIME {
            self.records[idx].globally_performed = at;
            self.last_progress = self.last_progress.max(self.now());
        }
    }

    fn bind_read_value(&mut self, p: u16, seq: u32, value: Value) {
        let idx = self.record_index[&opid(p, seq)];
        self.records[idx].op.read_value = Some(value);
        if let Some(dst) = self.procs[p as usize].pending_dst.remove(&seq) {
            self.procs[p as usize].regs[dst.index()] = value;
        }
    }

    fn finish_read(&mut self, p: u16, seq: u32, _loc: Loc, value: Value, now: SimTime) {
        self.set_commit(p, seq, now);
        self.set_gp(p, seq, now);
        self.bind_read_value(p, seq, value);
        self.retire_outstanding(p, seq);
        self.maybe_wake(p, |c| c == WakeCond::ValueOf(seq) || c == WakeCond::GpOf(seq));
    }

    /// Decrements the outstanding counter; at zero, clears all reserve
    /// bits (Section 5.3) and wakes counter-waiters.
    fn retire_outstanding(&mut self, p: u16, seq: u32) {
        let pi = p as usize;
        if self.procs[pi].in_outstanding.remove(&seq) {
            self.procs[pi].outstanding -= 1;
            if self.procs[pi].outstanding == 0 {
                if self.config.caches {
                    self.caches[pi].clear_all_reserved();
                    // Section 5.3's queue alternative: service every
                    // synchronization request that was held while a line
                    // was reserved.
                    for reply in self.caches[pi].take_deferred_recalls() {
                        self.send_to_dir(p, reply);
                    }
                }
                let proc = &mut self.procs[pi];
                proc.has_reserved = false;
                proc.reserved_misses = 0;
                self.maybe_wake(p, |c| c == WakeCond::CounterZero);
            }
        }
    }

    // ---------------------------------------------------------------
    // Result assembly
    // ---------------------------------------------------------------

    fn collect_result(&mut self) -> Result<RunResult, RunError> {
        if let Some(err) = self.failed.take() {
            return Err(err);
        }
        let completed = self.procs.iter().all(|p| p.status == Status::Halted);
        // Close out any still-open stall intervals.
        let now = self.now();
        for proc in &mut self.procs {
            if let Some((reason, since)) = proc.stall_since.take() {
                if !matches!(proc.status, Status::Halted) {
                    *proc.stats.stalls.entry(reason).or_insert(0) +=
                        now.saturating_since(since);
                }
            }
        }

        let final_memory: Vec<(Loc, Value)> = self
            .footprint
            .iter()
            .map(|&loc| (loc, self.coherent_value(loc)))
            .filter(|&(_, v)| v != 0)
            .collect();
        let outcome = Outcome {
            regs: self.procs.iter().map(|p| p.regs).collect(),
            final_memory,
        };

        let mut records = std::mem::take(&mut self.records);
        records.retain(|r| r.commit != UNSET_TIME);
        records.sort_by_key(|r| (r.commit, r.op.id));

        let snoop_stats = self.snoop.as_mut().map(SnoopBus::take_stats);
        let stats = MachineStats {
            procs: self
                .procs
                .iter_mut()
                .map(|p| std::mem::take(&mut p.stats))
                .collect(),
            directory: (self.config.caches && snoop_stats.is_none())
                .then(|| self.directory.take_stats()),
            snoop: snoop_stats,
            messages: self.ic.messages,
            chaos: self.ic.fault_stats().copied(),
            events_popped: self.queue.popped(),
            peak_queue_len: self.queue.peak_len() as u64,
        };

        Ok(RunResult { records, outcome, cycles: now.cycles(), stats, completed })
    }

    fn coherent_value(&self, loc: Loc) -> Value {
        if let Some(bus) = &self.snoop {
            return bus.coherent_value(loc);
        }
        if self.config.caches {
            for cache in &self.caches {
                if cache.line_state(loc) == coherence::LineState::Exclusive {
                    return cache.cached_value(loc).expect("exclusive line has a value");
                }
            }
            self.directory.memory_value(loc)
        } else {
            self.modules.read(loc)
        }
    }
}

const UNSET_TIME: SimTime = SimTime(u64::MAX);

fn opid(p: u16, seq: u32) -> OpId {
    OpId::for_thread_op(ProcId(p), seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Def2Config, InterconnectConfig};
    use litmus::{corpus, Thread};
    use memory_model::sc::{check_sc, ScCheckConfig};

    fn base(policy: Policy, caches: bool, procs: usize) -> MachineConfig {
        MachineConfig {
            num_procs: procs,
            caches,
            policy,
            seed: 7,
            ..MachineConfig::default()
        }
    }

    fn run(program: &Program, cfg: &MachineConfig) -> RunResult {
        let r = Machine::run_program(program, cfg).expect("run should start");
        assert!(r.completed, "run hit the watchdog: {:?}", r.stats);
        r
    }

    #[test]
    fn single_thread_sequential_semantics_on_every_machine() {
        let p = Program::new(vec![Thread::new()
            .write(Loc(0), 1)
            .read(Loc(0), Reg(0))
            .write(Loc(0), 2)
            .read(Loc(0), Reg(1))])
        .unwrap();
        for caches in [false, true] {
            for policy in [
                Policy::Sc,
                Policy::Relaxed { write_delay: 10 },
                Policy::WoDef1,
            ] {
                let r = run(&p, &base(policy, caches, 1));
                assert_eq!(r.outcome.regs[0][0], 1, "{policy:?} caches={caches}");
                assert_eq!(r.outcome.regs[0][1], 2, "{policy:?} caches={caches}");
            }
        }
        let r = run(&p, &base(Policy::WoDef2(Def2Config::default()), true, 1));
        assert_eq!(r.outcome.regs[0][..2], [1, 2]);
    }

    #[test]
    fn handoff_through_sync_works_on_def2() {
        let p = corpus::fig3_handoff(1);
        let r = run(&p, &base(Policy::WoDef2(Def2Config::default()), true, 2));
        assert_eq!(r.outcome.regs[1][1], 1, "P1 must observe x == 1");
    }

    #[test]
    fn handoff_through_sync_works_on_def1_and_sc() {
        let p = corpus::fig3_handoff(1);
        for policy in [Policy::Sc, Policy::WoDef1] {
            let r = run(&p, &base(policy, true, 2));
            assert_eq!(r.outcome.regs[1][1], 1, "{policy:?}");
        }
    }

    #[test]
    fn sc_machine_appears_sc_on_racy_dekker() {
        let p = corpus::fig1_dekker();
        for caches in [false, true] {
            for seed in 0..5 {
                let cfg = MachineConfig { seed, ..base(Policy::Sc, caches, 2) };
                let r = run(&p, &cfg);
                let obs = r.observation();
                assert!(
                    check_sc(&obs, &p.initial_memory(), &ScCheckConfig::default())
                        .is_consistent(),
                    "SC machine must appear SC (caches={caches}, seed={seed})"
                );
            }
        }
    }

    #[test]
    fn relaxed_bus_no_cache_violates_sc_on_dekker() {
        // Figure 1, first machine class: write buffers let reads pass
        // buffered writes; both processors read 0.
        let p = corpus::fig1_dekker();
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Bus { latency: 4 },
            ..base(Policy::Relaxed { write_delay: 40 }, false, 2)
        };
        let r = run(&p, &cfg);
        assert_eq!(r.outcome.regs[0][0], 0, "P0 read Y before P1's write drained");
        assert_eq!(r.outcome.regs[1][0], 0, "P1 read X before P0's write drained");
        let obs = r.observation();
        assert!(
            !check_sc(&obs, &p.initial_memory(), &ScCheckConfig::default()).is_consistent()
        );
    }

    #[test]
    fn relaxed_network_cache_can_violate_sc_on_dekker() {
        let p = corpus::fig1_dekker();
        let mut violated = false;
        for seed in 0..20 {
            let cfg = MachineConfig {
                interconnect: InterconnectConfig::Network {
                    min_latency: 2,
                    max_latency: 60,
                    ack_extra_delay: 0,
                },
                seed,
                ..base(Policy::Relaxed { write_delay: 0 }, true, 2)
            };
            let r = run(&p, &cfg);
            let obs = r.observation();
            if !check_sc(&obs, &p.initial_memory(), &ScCheckConfig::default())
                .is_consistent()
            {
                violated = true;
                break;
            }
        }
        assert!(violated, "some seed should show the Figure 1 violation");
    }

    #[test]
    fn def2_appears_sc_on_drf0_spinlock() {
        let p = corpus::spinlock(2, 2);
        for seed in 0..5 {
            let cfg = MachineConfig {
                seed,
                ..base(Policy::WoDef2(Def2Config::default()), true, 2)
            };
            let r = run(&p, &cfg);
            assert_eq!(
                r.outcome.final_memory,
                vec![(corpus::LOC_X, 4)],
                "counter == 4 and the lock released at exit (seed {seed})"
            );
            let obs = r.observation();
            assert!(
                check_sc(&obs, &p.initial_memory(), &ScCheckConfig::default())
                    .is_consistent(),
                "Def2 must appear SC to DRF0 programs (seed {seed})"
            );
        }
    }

    #[test]
    fn def1_appears_sc_on_drf0_spinlock() {
        let p = corpus::spinlock(2, 1);
        let r = run(&p, &base(Policy::WoDef1, true, 2));
        assert!(check_sc(
            &r.observation(),
            &p.initial_memory(),
            &ScCheckConfig::default()
        )
        .is_consistent());
    }

    #[test]
    fn def2_p0_does_not_stall_after_unset() {
        // The Figure 3 claim: under Definition 1, P0 stalls at the Unset
        // until W(x) is globally performed; under the Definition 2
        // implementation it never does.
        let p = corpus::fig3_handoff(3);
        let slow_acks = InterconnectConfig::Network {
            min_latency: 4,
            max_latency: 8,
            ack_extra_delay: 400,
        };
        // Warm P1's cache with x so P0's W(x) needs an invalidation round.
        // fig3_handoff's P1 spins on TestAndSet(s), so x is cold there;
        // instead rely on the recall path: P1 holds nothing, so W(x) is
        // instant. Use a 3-processor variant: P2 shares x first.
        let _ = p; // the simple two-processor program: compare stalls anyway.
        let warm = Program::new(vec![
            // P0: W(x); Unset(s); then more work.
            Thread::new()
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0)
                .write(Loc(60), 1)
                .write(Loc(61), 1),
            // P1: spin TAS(s); R(x).
            Thread::new()
                .test_and_set(corpus::LOC_S, Reg(0))
                .branch_ne(Reg(0), 0u64, 0)
                .read(corpus::LOC_X, Reg(1)),
            // P2: reads x early so P0's write must invalidate it; then
            // halts.
            Thread::new().read(corpus::LOC_X, Reg(0)),
        ])
        .unwrap()
        .with_init(vec![(corpus::LOC_S, 1)]);

        let cfg_def1 = MachineConfig {
            interconnect: slow_acks,
            ..base(Policy::WoDef1, true, 3)
        };
        let cfg_def2 = MachineConfig {
            interconnect: slow_acks,
            ..base(Policy::WoDef2(Def2Config::default()), true, 3)
        };
        let r1 = run(&warm, &cfg_def1);
        let r2 = run(&warm, &cfg_def2);
        let def1_p0_sync_stall = r1.stats.procs[0].stall(StallReason::Def1BeforeSync)
            + r1.stats.procs[0].stall(StallReason::Def1AfterSync);
        let def2_p0_sync_stall = r2.stats.procs[0].stall(StallReason::SyncCommit);
        // Under Def1, P0 waits out the slow invalidation acks; under Def2
        // it only waits for the Unset to commit (procure the line).
        assert!(
            def1_p0_sync_stall > def2_p0_sync_stall,
            "Def1 P0 stall {def1_p0_sync_stall} should exceed Def2 {def2_p0_sync_stall}"
        );
        // Both still deliver the correct hand-off.
        assert_eq!(r1.outcome.regs[1][1], 1);
        assert_eq!(r2.outcome.regs[1][1], 1);
    }

    #[test]
    fn def2_sets_and_clears_reserve_bits() {
        // P0 writes x (slow invalidation), then Unsets s while the write is
        // pending: the line with s must be reserved, and P1's TAS must wait
        // until the write globally performs.
        // Handshake: P2 reads x (becoming a sharer) and signals t; P0
        // waits on t before writing x, so W(x) always needs a slow
        // invalidation round.
        let warm = Program::new(vec![
            Thread::new()
                .sync_read(corpus::LOC_T, Reg(2))
                .branch_ne(Reg(2), 1u64, 0)
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0),
            Thread::new()
                .test_and_set(corpus::LOC_S, Reg(0))
                .branch_ne(Reg(0), 0u64, 0)
                .read(corpus::LOC_X, Reg(1)),
            Thread::new()
                .read(corpus::LOC_X, Reg(0))
                .sync_write(corpus::LOC_T, 1),
        ])
        .unwrap()
        .with_init(vec![(corpus::LOC_S, 1)]);
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 8,
                ack_extra_delay: 300,
            },
            ..base(Policy::WoDef2(Def2Config::default()), true, 3)
        };
        let r = run(&warm, &cfg);
        assert_eq!(r.outcome.regs[1][1], 1, "hand-off correct despite reservation");
        let stats = r.stats.directory.as_ref().expect("cached machine has directory stats");
        assert!(stats.nacks > 0, "P1's recall of the reserved line must be nacked");
        // P1's TAS cannot commit before P0's W(x) is globally performed.
        let p0 = r.proc_records(0);
        let p1 = r.proc_records(1);
        let wx = p0
            .iter()
            .find(|rec| rec.op.kind == OpKind::DataWrite)
            .expect("P0 wrote x");
        let wx_gp = wx.globally_performed;
        let successful_tas = p1
            .iter()
            .find(|rec| rec.op.kind == OpKind::SyncRmw && rec.op.read_value == Some(0))
            .expect("P1 eventually wins the TestAndSet");
        assert!(
            successful_tas.commit >= wx_gp,
            "TAS committed at {} before W(x) globally performed at {}",
            successful_tas.commit,
            wx_gp
        );
    }

    #[test]
    fn racy_program_can_show_non_sc_results_on_def2() {
        // Definition 2 promises nothing to racy programs; Dekker on the
        // Def2 machine can produce the (0,0) outcome.
        let mut non_sc = false;
        for seed in 0..30 {
            let cfg = MachineConfig {
                interconnect: InterconnectConfig::Network {
                    min_latency: 2,
                    max_latency: 50,
                    ack_extra_delay: 200,
                },
                seed,
                ..base(Policy::WoDef2(Def2Config::default()), true, 3)
            };
            // Warm both flags into a third processor so writes need invals.
            let warm = Program::new(vec![
                Thread::new().write(corpus::LOC_X, 1).read(corpus::LOC_Y, Reg(0)),
                Thread::new().write(corpus::LOC_Y, 1).read(corpus::LOC_X, Reg(0)),
                Thread::new().read(corpus::LOC_X, Reg(0)).read(corpus::LOC_Y, Reg(1)),
            ])
            .unwrap();
            let r = run(&warm, &cfg);
            if r.outcome.regs[0][0] == 0 && r.outcome.regs[1][0] == 0 {
                non_sc = true;
                break;
            }
        }
        assert!(non_sc, "some seed should show both processors reading 0");
    }

    #[test]
    fn barrier_workload_runs_on_all_policies() {
        let p = corpus::barrier(3);
        for policy in [
            Policy::Sc,
            Policy::WoDef1,
            Policy::WoDef2(Def2Config::default()),
            Policy::WoDef2(Def2Config {
                read_only_sync_optimization: true,
                max_misses_while_reserved: Some(4),
                ..Def2Config::default()
            }),
        ] {
            let r = run(&p, &base(policy, true, 3));
            // Every thread saw every slot: slots hold 1, 2, 3.
            assert_eq!(
                r.outcome.final_memory.iter().filter(|(l, _)| l.0 >= 10 && l.0 < 13).count(),
                3,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn snooping_machine_matches_directory_semantics() {
        use crate::presets;
        // Same workloads, both coherence mechanisms (on the bus machine):
        // identical final outcomes; SC appearance preserved.
        let programs = [corpus::spinlock(2, 2), corpus::fig3_handoff(1)];
        for program in &programs {
            for policy in [Policy::Sc, Policy::WoDef1] {
                let dir_cfg = presets::bus_cached(2, policy, 3);
                let snoop_cfg = presets::bus_cached_snooping(2, policy, 3);
                let a = run(program, &dir_cfg);
                let b = run(program, &snoop_cfg);
                assert_eq!(
                    a.outcome.final_memory, b.outcome.final_memory,
                    "{policy:?}: coherence mechanisms disagree on final memory"
                );
                assert!(check_sc(
                    &b.observation(),
                    &program.initial_memory(),
                    &ScCheckConfig::default()
                )
                .is_consistent());
                assert!(b.stats.snoop.is_some());
                assert!(b.stats.directory.is_none());
            }
        }
    }

    #[test]
    fn snooping_relaxed_machine_shows_the_dekker_violation() {
        use crate::presets;
        let p = corpus::fig1_dekker();
        let cfg = MachineConfig {
            policy: Policy::Relaxed { write_delay: 40 },
            ..presets::bus_cached_snooping(2, Policy::Sc, 0)
        };
        let r = run(&p, &cfg);
        assert_eq!(
            (r.outcome.regs[0][0], r.outcome.regs[1][0]),
            (0, 0),
            "write buffering must defeat Dekker on the snooping machine too"
        );
    }

    #[test]
    fn snooping_def1_appears_sc_on_drf0_corpus() {
        use crate::presets;
        for (name, program) in corpus::drf0_suite() {
            let cfg = presets::bus_cached_snooping(program.num_threads(), Policy::WoDef1, 1);
            let r = run(&program, &cfg);
            assert!(
                check_sc(&r.observation(), &program.initial_memory(), &ScCheckConfig::default())
                    .is_consistent(),
                "{name}"
            );
        }
    }

    #[test]
    fn snooping_interventions_happen_under_sharing() {
        use crate::presets;
        let p = corpus::spinlock(3, 2);
        let r = run(&p, &presets::bus_cached_snooping(3, Policy::WoDef1, 2));
        let stats = r.stats.snoop.as_ref().unwrap();
        assert!(stats.read_exclusives > 0);
        assert!(stats.invalidations > 0);
    }

    #[test]
    fn queued_sync_stalls_behave_like_nacks_but_without_retries() {
        use crate::presets;
        // The Figure 3 scenario with slow acks: queue mode must deliver
        // the same hand-off with zero NACK traffic.
        let warm = Program::new(vec![
            Thread::new()
                .sync_read(corpus::LOC_T, Reg(2))
                .branch_ne(Reg(2), 1u64, 0)
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0),
            Thread::new()
                .test_and_set(corpus::LOC_S, Reg(0))
                .branch_ne(Reg(0), 0u64, 0)
                .read(corpus::LOC_X, Reg(1)),
            Thread::new()
                .read(corpus::LOC_X, Reg(0))
                .sync_write(corpus::LOC_T, 1),
        ])
        .unwrap()
        .with_init(vec![(corpus::LOC_S, 1)]);
        let ic = InterconnectConfig::Network {
            min_latency: 4,
            max_latency: 8,
            ack_extra_delay: 300,
        };
        let nack = MachineConfig {
            interconnect: ic,
            ..base(presets::wo_def2(), true, 3)
        };
        let queued = MachineConfig {
            interconnect: ic,
            ..base(presets::wo_def2_queued(), true, 3)
        };
        let rn = run(&warm, &nack);
        let rq = run(&warm, &queued);
        assert_eq!(rn.outcome.regs[1][1], 1);
        assert_eq!(rq.outcome.regs[1][1], 1);
        let nack_stats = rn.stats.directory.as_ref().unwrap();
        let queued_stats = rq.stats.directory.as_ref().unwrap();
        assert!(nack_stats.nacks > 0, "NACK mode must actually nack");
        assert_eq!(queued_stats.nacks, 0, "queue mode never nacks");
        assert!(
            rq.stats.messages < rn.stats.messages,
            "the queue saves the retry traffic: {} vs {}",
            rq.stats.messages,
            rn.stats.messages
        );
        // Both still appear SC and satisfy the correctness contract.
        assert!(check_sc(&rq.observation(), &warm.initial_memory(), &ScCheckConfig::default())
            .is_consistent());
    }

    #[test]
    fn queued_mode_runs_the_drf0_corpus_sc() {
        use crate::presets;
        for (name, program) in corpus::drf0_suite() {
            let cfg = presets::network_cached(
                program.num_threads(),
                presets::wo_def2_queued(),
                4,
            );
            let r = run(&program, &cfg);
            assert!(
                check_sc(&r.observation(), &program.initial_memory(), &ScCheckConfig::default())
                    .is_consistent(),
                "{name}"
            );
        }
    }

    #[test]
    fn fence_restores_sc_on_relaxed_machines_for_dekker() {
        // RP3-style fences drain outstanding accesses: the fenced Dekker
        // never shows the (0,0) outcome even on the relaxed write-buffer
        // machine that reliably produces it unfenced.
        let fenced = corpus::fig1_dekker_fenced();
        let unfenced = corpus::fig1_dekker();
        for caches in [false, true] {
            for seed in 0..10 {
                let cfg = MachineConfig {
                    interconnect: InterconnectConfig::Bus { latency: 4 },
                    caches,
                    num_modules: 1,
                    seed,
                    ..base(Policy::Relaxed { write_delay: 40 }, caches, 2)
                };
                let r = run(&fenced, &cfg);
                assert!(
                    !(r.outcome.regs[0][0] == 0 && r.outcome.regs[1][0] == 0),
                    "fenced Dekker must not show (0,0): caches={caches} seed={seed}"
                );
                assert!(check_sc(
                    &r.observation(),
                    &fenced.initial_memory(),
                    &ScCheckConfig::default()
                )
                .is_consistent());
                // Control: the unfenced program does show it on the bus
                // write-buffer machine.
                let r = run(&unfenced, &cfg);
                assert_eq!((r.outcome.regs[0][0], r.outcome.regs[1][0]), (0, 0));
            }
        }
    }

    #[test]
    fn fence_drain_time_is_accounted() {
        let fenced = corpus::fig1_dekker_fenced();
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Bus { latency: 4 },
            num_modules: 1,
            ..base(Policy::Relaxed { write_delay: 40 }, false, 2)
        };
        let r = run(&fenced, &cfg);
        let drained: u64 = r
            .stats
            .procs
            .iter()
            .map(|p| p.stall(StallReason::FenceDrain))
            .sum();
        assert!(drained > 0, "the fences must actually wait");
    }

    #[test]
    fn fence_is_a_noop_when_nothing_is_outstanding() {
        let p = Program::new(vec![Thread::new().fence().write(Loc(0), 1).fence()])
            .unwrap();
        let r = run(&p, &base(Policy::Sc, true, 1));
        assert_eq!(r.outcome.final_memory, vec![(Loc(0), 1)]);
    }

    #[test]
    fn pipeline_workload_flows_on_every_policy() {
        let p = crate::workload::pipeline_kernel(3, 4);
        for (name, policy) in crate::presets::all_policies() {
            let cfg = crate::presets::network_cached(3, policy, 2);
            let r = run(&p, &cfg);
            // 4 tokens, each produced with payload token+1 then bumped by
            // stages 1 and 2: final cell value = 4 (last token) + 2 bumps.
            let cell = r
                .outcome
                .final_memory
                .iter()
                .find(|(l, _)| *l == Loc(0))
                .map_or(0, |&(_, v)| v);
            assert_eq!(cell, 6, "{name}");
        }
    }

    #[test]
    fn doall_workload_is_embarrassingly_parallel() {
        let p = crate::workload::doall_kernel(4, 8, 9);
        let sc = run(&p, &base(Policy::Sc, true, 4));
        let def2 = run(&p, &base(Policy::WoDef2(Def2Config::default()), true, 4));
        // No sharing: nothing to invalidate, no ordering stalls at all
        // (cold-miss read latency is the only waiting).
        for s in &def2.stats.procs {
            for reason in [
                StallReason::SyncCommit,
                StallReason::ScGlobalPerform,
                StallReason::Def1BeforeSync,
                StallReason::Def1AfterSync,
                StallReason::ReservedMissBudget,
            ] {
                assert_eq!(s.stall(reason), 0, "{reason:?}");
            }
        }
        assert!(def2.cycles <= sc.cycles, "weak ordering can only help");
        assert_eq!(sc.outcome.final_memory, def2.outcome.final_memory);
    }

    #[test]
    fn thread_count_mismatch_is_an_error() {
        let p = corpus::fig1_dekker();
        let err = Machine::run_program(&p, &base(Policy::Sc, true, 3)).unwrap_err();
        assert!(matches!(err, RunError::ThreadCountMismatch { threads: 2, procs: 3 }));
    }

    #[test]
    fn local_loop_is_an_error() {
        let p = Program::new(vec![Thread::new().jump(0)]).unwrap();
        let err = Machine::run_program(&p, &base(Policy::Sc, true, 1)).unwrap_err();
        assert_eq!(err, RunError::LocalStepLimit { proc: 0 });
    }

    #[test]
    fn watchdog_marks_incomplete() {
        // P0 spins forever on a flag nobody sets.
        let p = Program::new(vec![Thread::new()
            .sync_read(Loc(100), Reg(0))
            .branch_ne(Reg(0), 1u64, 0)])
        .unwrap();
        let cfg = MachineConfig { max_cycles: 5_000, ..base(Policy::Sc, true, 1) };
        let r = Machine::run_program(&p, &cfg).unwrap();
        assert!(!r.completed);
    }

    #[test]
    fn bounded_caches_stay_correct_and_evict() {
        // Working set (8+ locations) far exceeds a 3-line cache: evictions
        // and write-backs happen constantly, yet results stay correct and
        // DRF0 runs still appear SC.
        let p = crate::workload::drf_kernel(&crate::workload::DrfKernelConfig {
            threads: 3,
            phases: 2,
            accesses_per_phase: 6,
            partition_size: 6,
            ..Default::default()
        });
        for policy in [Policy::Sc, Policy::WoDef1, Policy::WoDef2(Def2Config::default())] {
            let cfg = MachineConfig {
                cache_capacity: Some(3),
                ..base(policy, true, 3)
            };
            let r = run(&p, &cfg);
            let counter = r
                .outcome
                .final_memory
                .iter()
                .find(|(l, _)| *l == crate::workload::KERNEL_SHARED)
                .map_or(0, |&(_, v)| v);
            assert_eq!(counter, 6, "{policy:?}: 3 threads x 2 phases");
            let dir = r.stats.directory.as_ref().unwrap();
            assert!(dir.writebacks > 0, "{policy:?}: working set must not fit");
            let obs = r.observation();
            assert!(
                check_sc(&obs, &p.initial_memory(), &ScCheckConfig::default())
                    .is_consistent(),
                "{policy:?} with tiny cache must still appear SC"
            );
        }
    }

    #[test]
    fn reserved_line_survives_capacity_pressure() {
        // Def2 with a 2-line cache: while the sync line is reserved, the
        // processor touching new lines must not flush it; the run still
        // completes and hands off correctly.
        let warm = Program::new(vec![
            Thread::new()
                .sync_read(corpus::LOC_T, Reg(2))
                .branch_ne(Reg(2), 1u64, 0)
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0)
                .write(Loc(60), 1)
                .write(Loc(61), 1)
                .write(Loc(62), 1),
            Thread::new()
                .test_and_set(corpus::LOC_S, Reg(0))
                .branch_ne(Reg(0), 0u64, 0)
                .read(corpus::LOC_X, Reg(1)),
            Thread::new()
                .read(corpus::LOC_X, Reg(0))
                .sync_write(corpus::LOC_T, 1),
        ])
        .unwrap()
        .with_init(vec![(corpus::LOC_S, 1)]);
        let cfg = MachineConfig {
            cache_capacity: Some(2),
            interconnect: InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 8,
                ack_extra_delay: 300,
            },
            ..base(Policy::WoDef2(Def2Config::default()), true, 3)
        };
        let r = run(&warm, &cfg);
        assert_eq!(r.outcome.regs[1][1], 1, "hand-off correct under pressure");
        assert!(check_sc(
            &r.observation(),
            &warm.initial_memory(),
            &ScCheckConfig::default()
        )
        .is_consistent());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = corpus::spinlock(3, 2);
        let cfg = base(Policy::WoDef2(Def2Config::default()), true, 3);
        let a = run(&p, &cfg);
        let b = run(&p, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn records_have_coherent_timestamps() {
        let p = corpus::spinlock(2, 2);
        let r = run(&p, &base(Policy::WoDef2(Def2Config::default()), true, 2));
        for rec in &r.records {
            assert!(rec.issue <= rec.commit, "{rec:?}");
            assert!(rec.commit <= rec.globally_performed, "{rec:?}");
        }
    }

    #[test]
    fn def2_opt_does_not_serialize_tests() {
        let p = corpus::tts_spinlock(3, 2);
        let plain = run(&p, &base(Policy::WoDef2(Def2Config::default()), true, 3));
        let opt = run(
            &p,
            &base(
                Policy::WoDef2(Def2Config {
                    read_only_sync_optimization: true,
                    ..Def2Config::default()
                }),
                true,
                3,
            ),
        );
        // Both are correct...
        assert_eq!(
            plain.outcome.final_memory.iter().find(|(l, _)| *l == corpus::LOC_X),
            opt.outcome.final_memory.iter().find(|(l, _)| *l == corpus::LOC_X),
        );
        // ...and the optimized variant needs fewer exclusive transfers.
        let plain_dir = plain.stats.directory.unwrap();
        let opt_dir = opt.stats.directory.unwrap();
        assert!(
            opt_dir.get_exclusive < plain_dir.get_exclusive,
            "opt {} vs plain {}",
            opt_dir.get_exclusive,
            plain_dir.get_exclusive
        );
    }

    // ---------------------------------------------------------------
    // Fault injection and watchdogs
    // ---------------------------------------------------------------

    use simx::fault::{Chance, FaultConfig};

    fn chaos_base(policy: Policy, procs: usize, fault: FaultConfig, seed: u64) -> MachineConfig {
        MachineConfig { chaos: Some(fault), seed, ..base(policy, true, procs) }
    }

    #[test]
    fn blackholed_request_is_a_deadlock_with_a_dump() {
        // Every message vanishes: P0's GetShared never reaches the
        // directory, the event queue drains, and the deadlock watchdog
        // must explain exactly who was stuck and why.
        let p = Program::new(vec![Thread::new().read(Loc(0), Reg(0))]).unwrap();
        let fault = FaultConfig { blackhole_chance: Chance::always(), ..FaultConfig::off() };
        let err = Machine::run_program(&p, &chaos_base(Policy::Sc, 1, fault, 3)).unwrap_err();
        let RunError::Deadlock { dump } = err else {
            panic!("expected a deadlock, got: {err}");
        };
        assert_eq!(dump.procs.len(), 1);
        let p0 = &dump.procs[0];
        assert!(p0.status.contains("Waiting"), "status: {}", p0.status);
        assert_eq!(p0.stall.map(|(r, _)| r), Some(StallReason::ReadValue));
        assert_eq!(p0.outstanding, 1, "the lost GetShared is still counted");
        assert!(dump.chaos.expect("chaos stats ride in the dump").blackholed >= 1);
        let text = dump.to_string();
        assert!(text.contains("still waiting"), "dump text: {text}");
        assert!(text.contains("P0"), "dump text: {text}");
    }

    #[test]
    fn unreachable_directory_exhausts_retries() {
        // Every send is (detectably) dropped; after max_retries resends
        // the machine aborts with the attempt count and a dump.
        let p = Program::new(vec![Thread::new().read(Loc(0), Reg(0))]).unwrap();
        let fault = FaultConfig {
            drop_chance: Chance::always(),
            max_retries: 2,
            backoff_base: 8,
            ..FaultConfig::off()
        };
        let err = Machine::run_program(&p, &chaos_base(Policy::Sc, 1, fault, 3)).unwrap_err();
        let RunError::RetriesExhausted { proc, attempts, dump } = err else {
            panic!("expected exhausted retries, got: {err}");
        };
        assert_eq!(proc, 0);
        assert_eq!(attempts, 3, "1 original + 2 retries");
        assert_eq!(dump.chaos.expect("chaos stats ride in the dump").exhausted, 1);
    }

    #[test]
    fn vanished_acks_trip_a_watchdog() {
        // The def2_sets_and_clears_reserve_bits fixture, except every
        // invalidation acknowledgement silently vanishes: P0's W(x) can
        // never globally perform, the reserve bit on s never clears, and
        // P1's TestAndSet polls into a NACK storm that makes no progress.
        let warm = Program::new(vec![
            Thread::new()
                .sync_read(corpus::LOC_T, Reg(2))
                .branch_ne(Reg(2), 1u64, 0)
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0),
            Thread::new()
                .test_and_set(corpus::LOC_S, Reg(0))
                .branch_ne(Reg(0), 0u64, 0)
                .read(corpus::LOC_X, Reg(1)),
            Thread::new()
                .read(corpus::LOC_X, Reg(0))
                .sync_write(corpus::LOC_T, 1),
        ])
        .unwrap()
        .with_init(vec![(corpus::LOC_S, 1)]);
        let fault = FaultConfig { ack_blackhole: true, ..FaultConfig::off() };
        let cfg = MachineConfig {
            chaos: Some(fault),
            stall_limit: Some(5_000),
            interconnect: InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 8,
                ack_extra_delay: 300,
            },
            ..base(Policy::WoDef2(Def2Config::default()), true, 3)
        };
        let err = Machine::run_program(&warm, &cfg).unwrap_err();
        let dump = match err {
            RunError::Livelock { dump } | RunError::Deadlock { dump } => dump,
            other => panic!("expected a wedged-machine watchdog, got: {other}"),
        };
        assert!(
            dump.chaos.expect("chaos stats ride in the dump").blackholed >= 1,
            "at least one InvAck must have vanished"
        );
        // The wedge is visible in the dump: someone is still waiting.
        assert!(
            dump.procs.iter().any(|p| p.status.contains("Waiting")),
            "dump: {dump}"
        );
    }

    #[test]
    fn backoff_retries_converge_under_a_drop_storm() {
        // A 1-in-5 detectable drop rate with a generous retry budget:
        // every message eventually lands, the run completes, and the DRF0
        // program still appears sequentially consistent.
        let p = corpus::spinlock(2, 2);
        let fault = FaultConfig {
            drop_chance: Chance::of(1, 5),
            max_retries: 10,
            backoff_base: 4,
            ..FaultConfig::off()
        };
        let cfg = chaos_base(Policy::WoDef2(Def2Config::default()), 2, fault, 9);
        let r = Machine::run_program(&p, &cfg).expect("retries must drain the storm");
        assert!(r.completed, "backoff must converge");
        let chaos = r.stats.chaos.expect("chaos stats in the result");
        assert!(chaos.retries > 0, "a 1/5 drop rate must force retries: {chaos:?}");
        assert_eq!(chaos.exhausted, 0);
        assert_eq!(
            r.outcome.final_memory,
            vec![(corpus::LOC_X, 4)],
            "2 procs x 2 increments, lock released"
        );
        assert!(check_sc(&r.observation(), &p.initial_memory(), &ScCheckConfig::default())
            .is_consistent());
    }

    #[test]
    fn chaos_runs_are_reproducible_from_the_seed() {
        let p = corpus::spinlock(2, 2);
        let cfg = chaos_base(Policy::WoDef2(Def2Config::default()), 2, FaultConfig::drop_heavy(), 11);
        let a = Machine::run_program(&p, &cfg);
        let b = Machine::run_program(&p, &cfg);
        // Byte-identical outcomes — including timestamps, stats, and fault
        // counters — whether the run completed or aborted.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn drf0_appears_sc_under_latency_and_dup_chaos() {
        // The Definition 2 contract must survive message-timing chaos:
        // drop-free perturbations (delays, reordering across pairs,
        // duplicated recalls) never change what DRF0 software can observe.
        let p = corpus::spinlock(2, 2);
        for fault in [FaultConfig::latency_heavy(), FaultConfig::dup_heavy()] {
            for seed in 0..5 {
                let cfg = chaos_base(Policy::WoDef2(Def2Config::default()), 2, fault, seed);
                let r = Machine::run_program(&p, &cfg)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert!(r.completed, "drop-free chaos cannot wedge (seed {seed})");
                assert!(
                    check_sc(&r.observation(), &p.initial_memory(), &ScCheckConfig::default())
                        .is_consistent(),
                    "DRF0 program must appear SC under {fault:?} seed {seed}"
                );
            }
        }
    }
}
