//! Diagnostic state dumps for aborted runs.
//!
//! When a watchdog trips or a protocol invariant breaks, the machine
//! snapshots everything a human needs to understand the wedge: what each
//! processor was doing (and how long it has been stuck), what the
//! directory still considers busy, how much traffic is still queued, and
//! what the fault plan had done by then. The dump rides inside
//! [`crate::RunError`] so a failing chaos sweep prints a complete
//! post-mortem along with the seed that reproduces it.

use std::fmt;

use memory_model::Loc;
use simx::fault::FaultStats;

use crate::trace::StallReason;

/// A snapshot of one processor at abort time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDump {
    /// Processor index.
    pub proc: u16,
    /// Human-readable status (`Ready`, `Halted`, `Waiting(..)`, ...).
    pub status: String,
    /// Why the processor is stalled and since which cycle, if it is.
    pub stall: Option<(StallReason, u64)>,
    /// Program counter within the processor's thread.
    pub pc: usize,
    /// The Section 5.3 outstanding-access counter.
    pub outstanding: u64,
    /// Data stores waiting in the write buffer.
    pub store_queue_len: usize,
    /// Lines whose reserve bit this processor's cache holds set.
    pub reserved_lines: Vec<Loc>,
}

/// A machine-wide snapshot taken when a run aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDump {
    /// Simulated cycle at which the run aborted.
    pub at_cycle: u64,
    /// One-line description of what tripped.
    pub reason: String,
    /// Per-processor snapshots.
    pub procs: Vec<ProcDump>,
    /// Events still queued for delivery.
    pub queued_events: usize,
    /// Lines the directory still considers busy (recall or invalidation
    /// round in flight).
    pub directory_busy: Vec<Loc>,
    /// What the fault plan had done by abort time, if chaos was on.
    pub chaos: Option<FaultStats>,
}

impl fmt::Display for StateDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} at cycle {}", self.reason, self.at_cycle)?;
        for p in &self.procs {
            write!(
                f,
                "  P{}: {} pc={} outstanding={} store_queue={}",
                p.proc, p.status, p.pc, p.outstanding, p.store_queue_len
            )?;
            if let Some((reason, since)) = &p.stall {
                write!(f, " stalled({reason:?} since cycle {since})")?;
            }
            if !p.reserved_lines.is_empty() {
                write!(f, " reserved={:?}", self.fmt_locs(&p.reserved_lines))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  queued events: {}", self.queued_events)?;
        if !self.directory_busy.is_empty() {
            writeln!(f, "  directory busy lines: {:?}", self.fmt_locs(&self.directory_busy))?;
        }
        if let Some(chaos) = &self.chaos {
            writeln!(
                f,
                "  chaos: {} msgs, {} delayed, {} duplicated, {} dropped, {} blackholed, {} retries, {} exhausted",
                chaos.messages,
                chaos.delayed,
                chaos.duplicated,
                chaos.dropped,
                chaos.blackholed,
                chaos.retries,
                chaos.exhausted
            )?;
        }
        Ok(())
    }
}

impl StateDump {
    fn fmt_locs(&self, locs: &[Loc]) -> Vec<u32> {
        locs.iter().map(|l| l.0).collect()
    }
}
