//! Run results — per-operation timestamps, outcomes, statistics — and the
//! **wo-trace binary trace format** that serializes them.
//!
//! The trace format streams [`OpRecord`]s (the same per-operation record a
//! [`RunResult`] holds — one representation, not a parallel one) through a
//! versioned, checksummed container:
//!
//! ```text
//! file    := magic version blocks*
//! magic   := b"WOTRACE\0"                      (8 bytes)
//! version := u16 LE (= 1), u16 LE reserved (= 0)
//! block   := tag u8 · len u32 LE · payload[len] · fnv1a64(tag‖len‖payload) u64 LE
//! tag 1   := SegmentStart { procs u16, has_times u8, reserved u8,
//!                           label_len u16, label utf-8 }
//! tag 2   := Events { count u32, event × count }
//! tag 3   := SegmentEnd { events u64 }
//! event   := kind u8 · proc u16 · loc u32 · id u64
//!            · read u64  (iff kind bit 3)
//!            · write u64 (iff kind bit 4)
//!            · issue u64 · commit u64 · gp u64 (iff segment has_times)
//! ```
//!
//! One *segment* is one execution (one machine run, one explorer
//! interleaving, one synthetic stream): races never span segments, so a
//! streaming consumer resets per segment. Every block carries its own
//! FNV-1a checksum; a torn tail (the writer died mid-block) decodes to the
//! structured [`TraceError::Truncated`], a flipped byte to
//! [`TraceError::Corrupt`] — never a panic, mirroring the journal
//! discipline in `wo-serve`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};

use memory_model::{ExecutionResult, Loc, Observation, OpId, OpKind, Operation, ProcId, ThreadTrace, Value};
use simx::SimTime;

use litmus::NUM_REGS;

/// One memory operation as the hardware performed it, with the paper's
/// three event times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation with its final values (read value bound, write value
    /// stored).
    pub op: Operation,
    /// When the processor *generated* the access (Section 5.1's
    /// terminology: "an access is generated when it first comes into
    /// existence").
    pub issue: SimTime,
    /// When it *committed* (a write: modified the local copy; a read: its
    /// return value was dispatched).
    pub commit: SimTime,
    /// When it was *globally performed*.
    pub globally_performed: SimTime,
}

/// Why a processor was stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// Waiting for a load value (data dependence).
    ReadValue,
    /// SC only: waiting for the previous access to globally perform.
    ScGlobalPerform,
    /// Definition 1: waiting for all previous accesses to globally perform
    /// *before issuing* a synchronization operation.
    Def1BeforeSync,
    /// Definition 1: waiting for the synchronization operation to globally
    /// perform before issuing anything else.
    Def1AfterSync,
    /// Definition 2: waiting for a synchronization operation to commit
    /// (condition 4) — includes time blocked by another processor's
    /// reserve bit.
    SyncCommit,
    /// Definition 2: miss budget while a line is reserved exhausted;
    /// waiting for the counter to read zero.
    ReservedMissBudget,
    /// Waiting for an MSHR conflict (same-line request outstanding).
    MshrConflict,
    /// An RP3-style fence draining outstanding accesses.
    FenceDrain,
}

/// Per-processor statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycle the processor halted (0 if it never ran).
    pub finish_time: u64,
    /// Memory operations performed.
    pub ops: u64,
    /// Stall cycles by reason.
    pub stalls: BTreeMap<StallReason, u64>,
}

impl ProcStats {
    /// Total stall cycles across all reasons.
    #[must_use]
    pub fn total_stall(&self) -> u64 {
        self.stalls.values().sum()
    }

    /// Stall cycles for one reason.
    #[must_use]
    pub fn stall(&self, reason: StallReason) -> u64 {
        self.stalls.get(&reason).copied().unwrap_or(0)
    }
}

/// Whole-machine statistics.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Per-processor statistics, indexed by processor.
    pub procs: Vec<ProcStats>,
    /// Directory protocol counters (directory-coherent machines only).
    pub directory: Option<coherence::DirectoryStats>,
    /// Snooping-bus counters (snooping machines only).
    pub snoop: Option<coherence::snoop::SnoopStats>,
    /// Messages carried by the interconnect.
    pub messages: u64,
    /// What the fault plan did, when the run was chaos-injected.
    pub chaos: Option<simx::fault::FaultStats>,
    /// Total events the machine's event queue delivered — an
    /// implementation-effort proxy independent of wall clock, and a
    /// cross-check that a recycled machine replays a cold run exactly.
    pub events_popped: u64,
    /// Peak number of simultaneously pending events in the queue.
    pub peak_queue_len: u64,
}

/// Latency distributions derived from a run's records.
#[derive(Debug, Clone, Default)]
pub struct LatencyProfile {
    /// Issue → value-bound latency of reads (data and sync reads).
    pub read_latency: simx::stats::Histogram,
    /// Issue → commit latency of synchronization operations — what the
    /// issuing processor waits for under the Definition 2 implementation.
    pub sync_commit_latency: simx::stats::Histogram,
    /// Commit → globally-performed lag of writes — the window Definition 1
    /// stalls across and Definition 2 hides.
    pub write_gp_lag: simx::stats::Histogram,
}

/// The software-visible outcome of a run: final registers and memory —
/// directly comparable with `litmus::explore::Outcome`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// Final register file of each processor.
    pub regs: Vec<[Value; NUM_REGS]>,
    /// Final coherent memory cells differing from zero.
    pub final_memory: Vec<(Loc, Value)>,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Every memory operation with its timestamps, in completion (commit)
    /// order.
    pub records: Vec<OpRecord>,
    /// The software-visible outcome.
    pub outcome: Outcome,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Statistics.
    pub stats: MachineStats,
    /// Whether every thread ran to completion (false: the watchdog fired).
    pub completed: bool,
}

impl RunResult {
    /// The per-processor program-order [`Observation`] of the run, with
    /// the final memory attached — feed this to
    /// [`memory_model::sc::check_sc`] to decide whether the run *appears
    /// sequentially consistent* (Definition 2's question).
    ///
    /// # Panics
    ///
    /// Panics if the records are malformed (duplicate ids) — a simulator
    /// bug.
    #[must_use]
    pub fn observation(&self) -> Observation {
        let mut per_proc: BTreeMap<u16, Vec<Operation>> = BTreeMap::new();
        for rec in &self.records {
            per_proc.entry(rec.op.proc.0).or_default().push(rec.op);
        }
        let threads = per_proc
            .into_iter()
            .map(|(p, mut ops)| {
                // Program order = per-processor sequence number order.
                ops.sort_by_key(|o| o.id.seq_part());
                ThreadTrace::new(memory_model::ProcId(p), ops)
            })
            .collect();
        Observation::new(threads)
            .expect("simulator assigns unique per-processor ids")
            // Must stay: the observation owns its memory and `self` is
            // borrowed; this is per-run, not per-event.
            .with_final_memory(self.outcome.final_memory.clone())
    }

    /// The run's software-visible result — every read's returned value
    /// keyed by operation id, plus the final memory — in the same shape
    /// the idealized explorer produces, so a hardware run can be checked
    /// for membership in `litmus::explore::sc_outcomes` directly.
    #[must_use]
    pub fn execution_result(&self) -> ExecutionResult {
        let reads = self
            .records
            .iter()
            .filter_map(|r| r.op.read_value.map(|v| (r.op.id, v)))
            .collect();
        // Must stay: the result owns its memory and `self` is borrowed;
        // this is per-run, not per-event.
        ExecutionResult { reads, final_memory: self.outcome.final_memory.clone() }
    }

    /// Latency distributions of this run, derived from the records.
    #[must_use]
    pub fn latency_profile(&self) -> LatencyProfile {
        let mut profile = LatencyProfile::default();
        for rec in &self.records {
            if rec.op.kind.is_read() {
                profile
                    .read_latency
                    .record(rec.commit.saturating_since(rec.issue));
            }
            if rec.op.kind.is_sync() {
                profile
                    .sync_commit_latency
                    .record(rec.commit.saturating_since(rec.issue));
            }
            if rec.op.kind.is_write() {
                profile
                    .write_gp_lag
                    .record(rec.globally_performed.saturating_since(rec.commit));
            }
        }
        profile
    }

    /// Records of one processor, in program order.
    #[must_use]
    pub fn proc_records(&self, proc: u16) -> Vec<OpRecord> {
        let mut recs: Vec<OpRecord> = self
            .records
            .iter()
            .filter(|r| r.op.proc.0 == proc)
            .copied()
            .collect();
        recs.sort_by_key(|r| r.op.id.seq_part());
        recs
    }
}

// ---------------------------------------------------------------------------
// The wo-trace binary format.
// ---------------------------------------------------------------------------

/// File magic: identifies a wo-trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"WOTRACE\0";
/// Current format version.
pub const TRACE_VERSION: u16 = 1;
/// Events buffered per `Events` block by the writer.
const EVENTS_PER_BLOCK: u32 = 4096;
/// Reader sanity cap on one block's payload, guarding allocation against a
/// corrupt length field.
const MAX_BLOCK_LEN: u32 = 64 * 1024 * 1024;

const TAG_SEGMENT_START: u8 = 1;
const TAG_EVENTS: u8 = 2;
const TAG_SEGMENT_END: u8 = 3;

const KIND_MASK: u8 = 0b0000_0111;
const HAS_READ_BIT: u8 = 0b0000_1000;
const HAS_WRITE_BIT: u8 = 0b0001_0000;

fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::DataRead => 0,
        OpKind::DataWrite => 1,
        OpKind::SyncRead => 2,
        OpKind::SyncWrite => 3,
        OpKind::SyncRmw => 4,
    }
}

fn kind_of(code: u8) -> Option<OpKind> {
    Some(match code {
        0 => OpKind::DataRead,
        1 => OpKind::DataWrite,
        2 => OpKind::SyncRead,
        3 => OpKind::SyncWrite,
        4 => OpKind::SyncRmw,
        _ => return None,
    })
}

/// A structured error decoding a trace file. Every way a file can be bad —
/// torn tail, flipped byte, wrong magic, protocol misuse — maps to a
/// variant; the reader never panics on untrusted bytes.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error (not data-dependent).
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The file ends mid-block — the writer died (or the copy was cut)
    /// partway through a write.
    Truncated {
        /// Byte offset of the block whose tail is missing.
        offset: u64,
    },
    /// A block failed its checksum or decoded to nonsense.
    Corrupt {
        /// Byte offset of the offending block.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a wo-trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v} (reader speaks {TRACE_VERSION})")
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated mid-block at byte {offset}")
            }
            TraceError::Corrupt { offset, detail } => {
                write!(f, "trace corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Reorders a machine run's records into a *checkable* witness order:
/// each processor's operations in program order, processors interleaved
/// so that synchronization operations appear in the order they globally
/// performed (the run's synchronization order).
///
/// A weakly ordered machine commits and records operations out of
/// program order — that is the point of the model — so the raw
/// [`RunResult::records`] sequence is not a valid happens-before
/// witness: a releasing sync write can appear *before* a po-earlier data
/// write, or *after* the acquire that read from it, and a streaming
/// checker fed that sequence reports races the execution does not have.
/// The sequence built here is a linear extension of
/// `program order ∪ sync order`, which is exactly what race checking
/// needs: data operations carry no cross-processor ordering of their
/// own, so they are placed eagerly between their processor's sync
/// operations. Weak ordering globally performs each processor's sync
/// operations in program order, so ordering sync operations by
/// globally-performed time never contradicts program order.
/// Deterministic for a given record set.
#[must_use]
pub fn checkable_order(records: &[OpRecord]) -> Vec<OpRecord> {
    let procs =
        records.iter().map(|r| r.op.proc.index() + 1).max().unwrap_or(0);
    let mut queues: Vec<Vec<OpRecord>> = vec![Vec::new(); procs];
    for rec in records {
        queues[rec.op.proc.index()].push(*rec);
    }
    for q in &mut queues {
        q.sort_by_key(|r| r.op.id.seq_part());
    }
    let mut heads = vec![0usize; procs];
    let mut out = Vec::with_capacity(records.len());
    loop {
        // Data operations at a queue head are unconstrained across
        // processors: program order alone places them.
        for (p, q) in queues.iter().enumerate() {
            while let Some(rec) = q.get(heads[p]) {
                if rec.op.kind.is_sync() {
                    break;
                }
                out.push(*rec);
                heads[p] += 1;
            }
        }
        // Every remaining head is a sync operation; the earliest
        // globally performed one is next in sync order.
        let next = (0..procs)
            .filter_map(|p| {
                queues[p].get(heads[p]).map(|r| {
                    ((r.globally_performed.0, r.commit.0, r.issue.0, p), p)
                })
            })
            .min_by_key(|&(key, _)| key);
        match next {
            Some((_, p)) => {
                out.push(queues[p][heads[p]]);
                heads[p] += 1;
            }
            None => break,
        }
    }
    out
}

/// Streaming writer of the wo-trace format.
///
/// Open with [`TraceWriter::new`], then per execution:
/// [`TraceWriter::begin_segment`], any number of
/// [`TraceWriter::write_record`]/[`TraceWriter::write_op`] calls,
/// [`TraceWriter::end_segment`]. [`TraceWriter::write_run`] and
/// [`TraceWriter::write_execution`] wrap that for whole runs. Events are
/// buffered into checksummed blocks of a few thousand, so a million-event
/// stream costs a handful of syscalls per megabyte, not per event.
///
/// # Examples
///
/// ```
/// use memory_model::{Loc, Operation, OpId, ProcId};
/// use memsim::TraceWriter;
///
/// let mut writer = TraceWriter::new(Vec::new())?;
/// writer.write_execution(
///     "example",
///     2,
///     &[
///         Operation::data_write(OpId(0), ProcId(0), Loc(0), 1),
///         Operation::data_read(OpId(1), ProcId(1), Loc(0), 1),
///     ],
/// )?;
/// let bytes = writer.finish()?;
/// let segments = memsim::read_trace(&bytes[..]).unwrap();
/// assert_eq!(segments.len(), 1);
/// assert_eq!(segments[0].records.len(), 2);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    in_segment: bool,
    has_times: bool,
    seg_events: u64,
    /// Encoded events of the pending block.
    buf: Vec<u8>,
    buf_events: u32,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer, emitting the file header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(&TRACE_MAGIC)?;
        w.write_all(&TRACE_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            in_segment: false,
            has_times: false,
            seg_events: 0,
            buf: Vec::with_capacity(64 * 1024),
            buf_events: 0,
        })
    }

    fn write_block(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let len =
            u32::try_from(payload.len()).expect("block payload exceeds u32::MAX bytes");
        let len_bytes = len.to_le_bytes();
        let crc = fnv1a64(&[&[tag], &len_bytes, payload]);
        self.w.write_all(&[tag])?;
        self.w.write_all(&len_bytes)?;
        self.w.write_all(payload)?;
        self.w.write_all(&crc.to_le_bytes())
    }

    /// Opens a segment: one execution's events, from `procs` processors.
    /// `has_times` selects whether each event carries the three hardware
    /// event times (machine runs) or none (idealized executions, synthetic
    /// streams). `label` is free-form provenance (program name, seed).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    ///
    /// # Panics
    ///
    /// Panics if a segment is already open or the label exceeds `u16::MAX`
    /// bytes — API misuse, not data corruption.
    pub fn begin_segment(&mut self, procs: u16, has_times: bool, label: &str) -> io::Result<()> {
        assert!(!self.in_segment, "begin_segment inside an open segment");
        let label_len =
            u16::try_from(label.len()).expect("segment label exceeds u16::MAX bytes");
        let mut payload = Vec::with_capacity(6 + label.len());
        payload.extend_from_slice(&procs.to_le_bytes());
        payload.push(u8::from(has_times));
        payload.push(0);
        payload.extend_from_slice(&label_len.to_le_bytes());
        payload.extend_from_slice(label.as_bytes());
        self.write_block(TAG_SEGMENT_START, &payload)?;
        self.in_segment = true;
        self.has_times = has_times;
        self.seg_events = 0;
        Ok(())
    }

    /// Appends one event to the open segment.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn write_record(&mut self, rec: &OpRecord) -> io::Result<()> {
        assert!(self.in_segment, "write_record outside a segment");
        let op = &rec.op;
        let mut kind = kind_code(op.kind);
        if op.read_value.is_some() {
            kind |= HAS_READ_BIT;
        }
        if op.write_value.is_some() {
            kind |= HAS_WRITE_BIT;
        }
        self.buf.push(kind);
        self.buf.extend_from_slice(&op.proc.0.to_le_bytes());
        self.buf.extend_from_slice(&op.loc.0.to_le_bytes());
        self.buf.extend_from_slice(&op.id.0.to_le_bytes());
        if let Some(v) = op.read_value {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(v) = op.write_value {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        if self.has_times {
            self.buf.extend_from_slice(&rec.issue.0.to_le_bytes());
            self.buf.extend_from_slice(&rec.commit.0.to_le_bytes());
            self.buf.extend_from_slice(&rec.globally_performed.0.to_le_bytes());
        }
        self.buf_events += 1;
        self.seg_events += 1;
        if self.buf_events >= EVENTS_PER_BLOCK {
            self.flush_events()?;
        }
        Ok(())
    }

    /// Appends one timestamp-less operation (idealized executions).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn write_op(&mut self, op: &Operation) -> io::Result<()> {
        self.write_record(&OpRecord {
            op: *op,
            issue: SimTime(0),
            commit: SimTime(0),
            globally_performed: SimTime(0),
        })
    }

    fn flush_events(&mut self) -> io::Result<()> {
        if self.buf_events == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(4 + self.buf.len());
        payload.extend_from_slice(&self.buf_events.to_le_bytes());
        payload.extend_from_slice(&self.buf);
        self.write_block(TAG_EVENTS, &payload)?;
        self.buf.clear();
        self.buf_events = 0;
        Ok(())
    }

    /// Closes the open segment, sealing it with its event count.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn end_segment(&mut self) -> io::Result<()> {
        assert!(self.in_segment, "end_segment outside a segment");
        self.flush_events()?;
        let payload = self.seg_events.to_le_bytes();
        self.write_block(TAG_SEGMENT_END, &payload)?;
        self.in_segment = false;
        Ok(())
    }

    /// Writes a whole machine run as one timestamped segment — records in
    /// [`checkable_order`] (program order per processor, sync operations
    /// interleaved by globally-performed time), so the file can be fed
    /// straight to a streaming race checker.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    pub fn write_run(&mut self, label: &str, run: &RunResult) -> io::Result<()> {
        let procs = u16::try_from(run.outcome.regs.len())
            .expect("more processors than u16::MAX");
        self.begin_segment(procs, true, label)?;
        for rec in &checkable_order(&run.records) {
            self.write_record(rec)?;
        }
        self.end_segment()
    }

    /// Writes an idealized execution (operations in completion order,
    /// no timestamps) as one segment.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    pub fn write_execution(
        &mut self,
        label: &str,
        procs: u16,
        ops: &[Operation],
    ) -> io::Result<()> {
        self.begin_segment(procs, false, label)?;
        for op in ops {
            self.write_op(op)?;
        }
        self.end_segment()
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    ///
    /// # Panics
    ///
    /// Panics if a segment is still open.
    pub fn finish(mut self) -> io::Result<W> {
        assert!(!self.in_segment, "finish with an open segment");
        self.w.flush()?;
        Ok(self.w)
    }
}

/// One item decoded from a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceItem {
    /// A segment opened.
    SegmentStart {
        /// Processors in the recorded execution.
        procs: u16,
        /// Whether events carry hardware event times.
        has_times: bool,
        /// Free-form provenance label.
        label: String,
    },
    /// One event of the open segment.
    Record(OpRecord),
    /// The open segment closed after `events` events.
    SegmentEnd {
        /// Events the segment declared (verified against the decoded count).
        events: u64,
    },
}

/// Streaming reader of the wo-trace format: call [`TraceReader::next_item`]
/// until it returns `Ok(None)` (clean end of file). Every checksum is
/// verified before a block is decoded; malformed input yields a
/// [`TraceError`], never a panic.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    offset: u64,
    in_segment: bool,
    has_times: bool,
    seg_events: u64,
    pending: VecDeque<OpRecord>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader, validating the file header.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] on a
    /// foreign or future file, [`TraceError::Truncated`] if the header
    /// itself is cut short.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut header = [0u8; 12];
        read_exact_at(&mut r, &mut header, 0)?;
        if header[..8] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(TraceReader {
            r,
            offset: 12,
            in_segment: false,
            has_times: false,
            seg_events: 0,
            pending: VecDeque::new(),
        })
    }

    /// Decodes the next item, or `Ok(None)` at a clean end of file.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`]: torn tails are [`TraceError::Truncated`],
    /// checksum or structural failures [`TraceError::Corrupt`].
    pub fn next_item(&mut self) -> Result<Option<TraceItem>, TraceError> {
        if let Some(rec) = self.pending.pop_front() {
            return Ok(Some(TraceItem::Record(rec)));
        }
        let block_offset = self.offset;
        let mut tag = [0u8; 1];
        match self.r.read(&mut tag) {
            Ok(0) => {
                return if self.in_segment {
                    Err(TraceError::Truncated { offset: block_offset })
                } else {
                    Ok(None)
                };
            }
            Ok(_) => self.offset += 1,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return self.next_item(),
            Err(e) => return Err(TraceError::Io(e)),
        }
        let mut len_bytes = [0u8; 4];
        read_exact_at(&mut self.r, &mut len_bytes, block_offset)?;
        self.offset += 4;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_BLOCK_LEN {
            return Err(TraceError::Corrupt {
                offset: block_offset,
                detail: format!("block length {len} exceeds the {MAX_BLOCK_LEN} cap"),
            });
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_at(&mut self.r, &mut payload, block_offset)?;
        self.offset += u64::from(len);
        let mut crc_bytes = [0u8; 8];
        read_exact_at(&mut self.r, &mut crc_bytes, block_offset)?;
        self.offset += 8;
        if fnv1a64(&[&tag, &len_bytes, &payload]) != u64::from_le_bytes(crc_bytes) {
            return Err(TraceError::Corrupt {
                offset: block_offset,
                detail: "checksum mismatch".into(),
            });
        }
        self.decode_block(tag[0], &payload, block_offset).map(Some)
    }

    fn corrupt(&self, offset: u64, detail: impl Into<String>) -> TraceError {
        TraceError::Corrupt { offset, detail: detail.into() }
    }

    fn decode_block(
        &mut self,
        tag: u8,
        payload: &[u8],
        offset: u64,
    ) -> Result<TraceItem, TraceError> {
        let mut cur = Cursor { bytes: payload, pos: 0 };
        match tag {
            TAG_SEGMENT_START => {
                if self.in_segment {
                    return Err(self.corrupt(offset, "segment start inside a segment"));
                }
                let procs = cur.u16(self, offset)?;
                let has_times = cur.u8(self, offset)? != 0;
                let _reserved = cur.u8(self, offset)?;
                let label_len = cur.u16(self, offset)? as usize;
                let label_bytes = cur.take(label_len, self, offset)?;
                let label = String::from_utf8(label_bytes.to_vec())
                    .map_err(|_| self.corrupt(offset, "segment label is not utf-8"))?;
                cur.expect_end(self, offset)?;
                self.in_segment = true;
                self.has_times = has_times;
                self.seg_events = 0;
                Ok(TraceItem::SegmentStart { procs, has_times, label })
            }
            TAG_EVENTS => {
                if !self.in_segment {
                    return Err(self.corrupt(offset, "events block outside a segment"));
                }
                let count = cur.u32(self, offset)?;
                if count == 0 {
                    return Err(self.corrupt(offset, "empty events block"));
                }
                let has_times = self.has_times;
                let mut records = VecDeque::with_capacity(count as usize);
                for _ in 0..count {
                    records.push_back(self.decode_event(&mut cur, has_times, offset)?);
                }
                cur.expect_end(self, offset)?;
                self.seg_events += u64::from(count);
                self.pending = records;
                let first = self.pending.pop_front().expect("count >= 1");
                Ok(TraceItem::Record(first))
            }
            TAG_SEGMENT_END => {
                if !self.in_segment {
                    return Err(self.corrupt(offset, "segment end outside a segment"));
                }
                let declared = cur.u64(self, offset)?;
                cur.expect_end(self, offset)?;
                if declared != self.seg_events {
                    return Err(self.corrupt(
                        offset,
                        format!(
                            "segment declared {declared} events but carried {}",
                            self.seg_events
                        ),
                    ));
                }
                self.in_segment = false;
                Ok(TraceItem::SegmentEnd { events: declared })
            }
            other => Err(self.corrupt(offset, format!("unknown block tag {other}"))),
        }
    }

    fn decode_event(
        &self,
        cur: &mut Cursor<'_>,
        has_times: bool,
        offset: u64,
    ) -> Result<OpRecord, TraceError> {
        let kind_byte = cur.u8(self, offset)?;
        let kind = kind_of(kind_byte & KIND_MASK)
            .ok_or_else(|| self.corrupt(offset, format!("unknown op kind {kind_byte:#x}")))?;
        let has_read = kind_byte & HAS_READ_BIT != 0;
        let has_write = kind_byte & HAS_WRITE_BIT != 0;
        if (has_read && !kind.is_read()) || (has_write && !kind.is_write()) {
            return Err(self.corrupt(offset, "value-presence bits contradict the op kind"));
        }
        let proc = ProcId(cur.u16(self, offset)?);
        let loc = Loc(cur.u32(self, offset)?);
        let id = OpId(cur.u64(self, offset)?);
        let read_value = if has_read { Some(cur.u64(self, offset)?) } else { None };
        let write_value = if has_write { Some(cur.u64(self, offset)?) } else { None };
        let (issue, commit, gp) = if has_times {
            (cur.u64(self, offset)?, cur.u64(self, offset)?, cur.u64(self, offset)?)
        } else {
            (0, 0, 0)
        };
        Ok(OpRecord {
            op: Operation { id, proc, kind, loc, read_value, write_value },
            issue: SimTime(issue),
            commit: SimTime(commit),
            globally_performed: SimTime(gp),
        })
    }
}

/// A bounds-checked little-endian cursor over one block payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take<R: Read>(
        &mut self,
        n: usize,
        reader: &TraceReader<R>,
        offset: u64,
    ) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(reader.corrupt(offset, "block payload shorter than its contents")),
        }
    }

    fn u8<R: Read>(&mut self, r: &TraceReader<R>, o: u64) -> Result<u8, TraceError> {
        Ok(self.take(1, r, o)?[0])
    }

    fn u16<R: Read>(&mut self, r: &TraceReader<R>, o: u64) -> Result<u16, TraceError> {
        let b = self.take(2, r, o)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32<R: Read>(&mut self, r: &TraceReader<R>, o: u64) -> Result<u32, TraceError> {
        let b = self.take(4, r, o)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64<R: Read>(&mut self, r: &TraceReader<R>, o: u64) -> Result<u64, TraceError> {
        let b = self.take(8, r, o)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn expect_end<R: Read>(&self, r: &TraceReader<R>, o: u64) -> Result<(), TraceError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(r.corrupt(o, "trailing bytes in block payload"))
        }
    }
}

fn read_exact_at<R: Read>(r: &mut R, buf: &mut [u8], offset: u64) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { offset }
        } else {
            TraceError::Io(e)
        }
    })
}

/// One fully decoded trace segment.
#[derive(Debug, Clone)]
pub struct TraceSegment {
    /// Processors in the recorded execution.
    pub procs: u16,
    /// Whether events carry hardware event times.
    pub has_times: bool,
    /// Free-form provenance label.
    pub label: String,
    /// The events, in completion order.
    pub records: Vec<OpRecord>,
}

/// Eagerly decodes a whole trace into segments — convenient for tools and
/// tests; streaming consumers should drive [`TraceReader`] directly.
///
/// # Errors
///
/// Any [`TraceError`] the reader raises.
pub fn read_trace<R: Read>(r: R) -> Result<Vec<TraceSegment>, TraceError> {
    let mut reader = TraceReader::new(r)?;
    let mut segments = Vec::new();
    let mut open: Option<TraceSegment> = None;
    while let Some(item) = reader.next_item()? {
        match item {
            TraceItem::SegmentStart { procs, has_times, label } => {
                open = Some(TraceSegment { procs, has_times, label, records: Vec::new() });
            }
            TraceItem::Record(rec) => {
                open.as_mut().expect("reader yields records only inside segments").records.push(rec);
            }
            TraceItem::SegmentEnd { .. } => {
                segments.push(open.take().expect("reader yields end only inside segments"));
            }
        }
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memory_model::{OpId, ProcId};

    fn rec(proc: u16, seq: u32, commit: u64) -> OpRecord {
        OpRecord {
            op: Operation::data_write(
                OpId::for_thread_op(ProcId(proc), seq),
                ProcId(proc),
                Loc(seq),
                1,
            ),
            issue: SimTime(commit - 1),
            commit: SimTime(commit),
            globally_performed: SimTime(commit),
        }
    }

    fn result(records: Vec<OpRecord>) -> RunResult {
        RunResult {
            records,
            outcome: Outcome { regs: vec![[0; NUM_REGS]; 2], final_memory: vec![] },
            cycles: 100,
            stats: MachineStats::default(),
            completed: true,
        }
    }

    #[test]
    fn observation_groups_by_processor_in_program_order() {
        let r = result(vec![rec(1, 1, 30), rec(0, 0, 10), rec(1, 0, 20)]);
        let obs = r.observation();
        assert_eq!(obs.threads().len(), 2);
        let p1 = &obs.threads()[1];
        assert_eq!(p1.proc, ProcId(1));
        assert_eq!(
            p1.ops.iter().map(|o| o.id.seq_part()).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(obs.final_memory(), Some(&[][..]));
    }

    #[test]
    fn proc_records_sorted_by_program_order() {
        let r = result(vec![rec(0, 2, 50), rec(0, 0, 10), rec(0, 1, 30)]);
        let seqs: Vec<u32> = r.proc_records(0).iter().map(|x| x.op.id.seq_part()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(r.proc_records(9).is_empty());
    }

    #[test]
    fn latency_profile_buckets_by_kind() {
        use memory_model::Loc as L;
        let read = OpRecord {
            op: Operation::data_read(OpId::for_thread_op(ProcId(0), 0), ProcId(0), L(0), 1),
            issue: SimTime(10),
            commit: SimTime(25),
            globally_performed: SimTime(25),
        };
        let write = OpRecord {
            op: Operation::data_write(OpId::for_thread_op(ProcId(0), 1), ProcId(0), L(0), 1),
            issue: SimTime(30),
            commit: SimTime(40),
            globally_performed: SimTime(140),
        };
        let sync = OpRecord {
            op: Operation::sync_rmw(OpId::for_thread_op(ProcId(0), 2), ProcId(0), L(1), 0, 1),
            issue: SimTime(150),
            commit: SimTime(180),
            globally_performed: SimTime(200),
        };
        let r = result(vec![read, write, sync]);
        let p = r.latency_profile();
        assert_eq!(p.read_latency.count(), 2, "data read + sync rmw read component");
        assert_eq!(p.read_latency.min(), Some(15));
        assert_eq!(p.write_gp_lag.count(), 2, "data write + sync rmw write component");
        assert_eq!(p.write_gp_lag.max(), Some(100));
        assert_eq!(p.sync_commit_latency.count(), 1);
        assert_eq!(p.sync_commit_latency.min(), Some(30));
    }

    #[test]
    fn proc_stats_aggregates() {
        let mut s = ProcStats::default();
        *s.stalls.entry(StallReason::ReadValue).or_insert(0) += 5;
        *s.stalls.entry(StallReason::SyncCommit).or_insert(0) += 7;
        assert_eq!(s.total_stall(), 12);
        assert_eq!(s.stall(StallReason::SyncCommit), 7);
        assert_eq!(s.stall(StallReason::Def1AfterSync), 0);
    }

    // --- trace-format tests ------------------------------------------------

    #[test]
    fn checkable_order_restores_po_and_interleaves_sync_by_gp() {
        // Shape taken from a real weakly ordered run of the Figure 3
        // hand-off: P0's releasing sync write was *recorded* before its
        // po-earlier data write (the data write globally performed
        // later), and P1's acquiring sync RMW issued before the release
        // it eventually read from.
        let w = |seq: u32, gp: u64| OpRecord {
            op: Operation::data_write(
                OpId::for_thread_op(ProcId(0), seq),
                ProcId(0),
                Loc(0),
                1,
            ),
            issue: SimTime(seq.into()),
            commit: SimTime(gp),
            globally_performed: SimTime(gp),
        };
        let release = OpRecord {
            op: Operation::sync_write(OpId::for_thread_op(ProcId(0), 1), ProcId(0), Loc(100), 0),
            issue: SimTime(2),
            commit: SimTime(23),
            globally_performed: SimTime(23),
        };
        let acquire = OpRecord {
            op: Operation::sync_rmw(OpId::for_thread_op(ProcId(1), 0), ProcId(1), Loc(100), 0, 1),
            issue: SimTime(0),
            commit: SimTime(108),
            globally_performed: SimTime(108),
        };
        let read = OpRecord {
            op: Operation::data_read(OpId::for_thread_op(ProcId(1), 1), ProcId(1), Loc(0), 1),
            issue: SimTime(108),
            commit: SimTime(176),
            globally_performed: SimTime(176),
        };
        // Record order as a machine would log it: release first.
        let records = vec![release, w(0, 29), acquire, w(2, 59), read];
        let ordered = checkable_order(&records);
        let ids: Vec<(usize, u32)> =
            ordered.iter().map(|r| (r.op.proc.index(), r.op.id.seq_part())).collect();
        // P0 back in program order; P1's acquire after P0's release.
        assert_eq!(ids, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]);
    }

    fn sample_records() -> Vec<OpRecord> {
        vec![
            rec(0, 0, 10),
            OpRecord {
                op: Operation::sync_rmw(OpId::for_thread_op(ProcId(1), 0), ProcId(1), Loc(7), 0, 1),
                issue: SimTime(11),
                commit: SimTime(14),
                globally_performed: SimTime(20),
            },
            OpRecord {
                op: Operation::data_read(OpId::for_thread_op(ProcId(1), 1), ProcId(1), Loc(0), 1),
                issue: SimTime(21),
                commit: SimTime(25),
                globally_performed: SimTime(25),
            },
        ]
    }

    fn sample_trace() -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_run("run0", &result(sample_records())).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrips_timestamped_records() {
        let segments = read_trace(&sample_trace()[..]).unwrap();
        assert_eq!(segments.len(), 1);
        let seg = &segments[0];
        assert_eq!((seg.procs, seg.has_times, seg.label.as_str()), (2, true, "run0"));
        assert_eq!(seg.records, sample_records());
    }

    #[test]
    fn roundtrips_multiple_timeless_segments() {
        let ops: Vec<Operation> = (0..10_000)
            .map(|i| Operation::data_write(OpId(i), ProcId((i % 3) as u16), Loc(5), i))
            .collect();
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_execution("a", 3, &ops).unwrap();
        w.write_execution("b", 3, &ops[..17]).unwrap();
        let segments = read_trace(&w.finish().unwrap()[..]).unwrap();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].records.len(), 10_000, "spans multiple event blocks");
        assert!(!segments[0].has_times);
        assert_eq!(segments[0].records[9_999].op, ops[9_999]);
        assert_eq!(segments[0].records[9_999].commit, SimTime(0));
        assert_eq!(segments[1].label, "b");
        assert_eq!(segments[1].records.len(), 17);
    }

    #[test]
    fn torn_tail_is_truncated_not_panic() {
        let bytes = sample_trace();
        // Cut anywhere past the header: always Truncated, never a panic.
        for cut in 13..bytes.len() {
            match read_trace(&bytes[..cut]) {
                Err(TraceError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_byte_is_corrupt_not_panic() {
        let bytes = sample_trace();
        // Flip every byte past the header in turn; each read must return a
        // structured error or (if the flip lands in a length field in a way
        // that shortens the file view) Truncated — never panic, never
        // silently succeed with altered event data unnoticed by checksums.
        for i in 12..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match read_trace(&bad[..]) {
                Err(TraceError::Corrupt { .. } | TraceError::Truncated { .. }) => {}
                other => panic!("flip at {i}: expected structured error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_rejected() {
        assert!(matches!(read_trace(&b"NOTTRACE"[..]), Err(TraceError::Truncated { .. })));
        let mut bad = sample_trace();
        bad[0] = b'X';
        assert!(matches!(read_trace(&bad[..]), Err(TraceError::BadMagic)));
        let mut future = sample_trace();
        future[8] = 99;
        assert!(matches!(
            read_trace(&future[..]),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn segment_count_mismatch_is_corrupt() {
        let bytes = sample_trace();
        // The SegmentEnd block is the last 1 + 4 + 8 + 8 bytes; its payload
        // (the declared event count) starts 16 bytes from the end. Tamper
        // with the count and re-seal the checksum: structure intact, count
        // lies.
        let end_block = bytes.len() - 21;
        let mut bad = bytes.clone();
        bad[end_block + 5] = 9;
        let crc = fnv1a64(&[&bad[end_block..end_block + 13]]);
        bad[end_block + 13..].copy_from_slice(&crc.to_le_bytes());
        match read_trace(&bad[..]) {
            Err(TraceError::Corrupt { detail, .. }) => {
                assert!(detail.contains("declared 9 events"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceError::Corrupt { offset: 42, detail: "checksum mismatch".into() };
        assert_eq!(e.to_string(), "trace corrupt at byte 42: checksum mismatch");
        assert!(TraceError::Truncated { offset: 7 }.to_string().contains("byte 7"));
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::UnsupportedVersion(3).to_string().contains('3'));
    }
}
