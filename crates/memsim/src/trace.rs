//! Run results: per-operation timestamps, outcomes, statistics.

use std::collections::BTreeMap;

use memory_model::{ExecutionResult, Loc, Observation, Operation, ThreadTrace, Value};
use simx::SimTime;

use litmus::NUM_REGS;

/// One memory operation as the hardware performed it, with the paper's
/// three event times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation with its final values (read value bound, write value
    /// stored).
    pub op: Operation,
    /// When the processor *generated* the access (Section 5.1's
    /// terminology: "an access is generated when it first comes into
    /// existence").
    pub issue: SimTime,
    /// When it *committed* (a write: modified the local copy; a read: its
    /// return value was dispatched).
    pub commit: SimTime,
    /// When it was *globally performed*.
    pub globally_performed: SimTime,
}

/// Why a processor was stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// Waiting for a load value (data dependence).
    ReadValue,
    /// SC only: waiting for the previous access to globally perform.
    ScGlobalPerform,
    /// Definition 1: waiting for all previous accesses to globally perform
    /// *before issuing* a synchronization operation.
    Def1BeforeSync,
    /// Definition 1: waiting for the synchronization operation to globally
    /// perform before issuing anything else.
    Def1AfterSync,
    /// Definition 2: waiting for a synchronization operation to commit
    /// (condition 4) — includes time blocked by another processor's
    /// reserve bit.
    SyncCommit,
    /// Definition 2: miss budget while a line is reserved exhausted;
    /// waiting for the counter to read zero.
    ReservedMissBudget,
    /// Waiting for an MSHR conflict (same-line request outstanding).
    MshrConflict,
    /// An RP3-style fence draining outstanding accesses.
    FenceDrain,
}

/// Per-processor statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycle the processor halted (0 if it never ran).
    pub finish_time: u64,
    /// Memory operations performed.
    pub ops: u64,
    /// Stall cycles by reason.
    pub stalls: BTreeMap<StallReason, u64>,
}

impl ProcStats {
    /// Total stall cycles across all reasons.
    #[must_use]
    pub fn total_stall(&self) -> u64 {
        self.stalls.values().sum()
    }

    /// Stall cycles for one reason.
    #[must_use]
    pub fn stall(&self, reason: StallReason) -> u64 {
        self.stalls.get(&reason).copied().unwrap_or(0)
    }
}

/// Whole-machine statistics.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Per-processor statistics, indexed by processor.
    pub procs: Vec<ProcStats>,
    /// Directory protocol counters (directory-coherent machines only).
    pub directory: Option<coherence::DirectoryStats>,
    /// Snooping-bus counters (snooping machines only).
    pub snoop: Option<coherence::snoop::SnoopStats>,
    /// Messages carried by the interconnect.
    pub messages: u64,
    /// What the fault plan did, when the run was chaos-injected.
    pub chaos: Option<simx::fault::FaultStats>,
    /// Total events the machine's event queue delivered — an
    /// implementation-effort proxy independent of wall clock, and a
    /// cross-check that a recycled machine replays a cold run exactly.
    pub events_popped: u64,
    /// Peak number of simultaneously pending events in the queue.
    pub peak_queue_len: u64,
}

/// Latency distributions derived from a run's records.
#[derive(Debug, Clone, Default)]
pub struct LatencyProfile {
    /// Issue → value-bound latency of reads (data and sync reads).
    pub read_latency: simx::stats::Histogram,
    /// Issue → commit latency of synchronization operations — what the
    /// issuing processor waits for under the Definition 2 implementation.
    pub sync_commit_latency: simx::stats::Histogram,
    /// Commit → globally-performed lag of writes — the window Definition 1
    /// stalls across and Definition 2 hides.
    pub write_gp_lag: simx::stats::Histogram,
}

/// The software-visible outcome of a run: final registers and memory —
/// directly comparable with `litmus::explore::Outcome`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// Final register file of each processor.
    pub regs: Vec<[Value; NUM_REGS]>,
    /// Final coherent memory cells differing from zero.
    pub final_memory: Vec<(Loc, Value)>,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Every memory operation with its timestamps, in completion (commit)
    /// order.
    pub records: Vec<OpRecord>,
    /// The software-visible outcome.
    pub outcome: Outcome,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Statistics.
    pub stats: MachineStats,
    /// Whether every thread ran to completion (false: the watchdog fired).
    pub completed: bool,
}

impl RunResult {
    /// The per-processor program-order [`Observation`] of the run, with
    /// the final memory attached — feed this to
    /// [`memory_model::sc::check_sc`] to decide whether the run *appears
    /// sequentially consistent* (Definition 2's question).
    ///
    /// # Panics
    ///
    /// Panics if the records are malformed (duplicate ids) — a simulator
    /// bug.
    #[must_use]
    pub fn observation(&self) -> Observation {
        let mut per_proc: BTreeMap<u16, Vec<Operation>> = BTreeMap::new();
        for rec in &self.records {
            per_proc.entry(rec.op.proc.0).or_default().push(rec.op);
        }
        let threads = per_proc
            .into_iter()
            .map(|(p, mut ops)| {
                // Program order = per-processor sequence number order.
                ops.sort_by_key(|o| o.id.seq_part());
                ThreadTrace::new(memory_model::ProcId(p), ops)
            })
            .collect();
        Observation::new(threads)
            .expect("simulator assigns unique per-processor ids")
            // Must stay: the observation owns its memory and `self` is
            // borrowed; this is per-run, not per-event.
            .with_final_memory(self.outcome.final_memory.clone())
    }

    /// The run's software-visible result — every read's returned value
    /// keyed by operation id, plus the final memory — in the same shape
    /// the idealized explorer produces, so a hardware run can be checked
    /// for membership in `litmus::explore::sc_outcomes` directly.
    #[must_use]
    pub fn execution_result(&self) -> ExecutionResult {
        let reads = self
            .records
            .iter()
            .filter_map(|r| r.op.read_value.map(|v| (r.op.id, v)))
            .collect();
        // Must stay: the result owns its memory and `self` is borrowed;
        // this is per-run, not per-event.
        ExecutionResult { reads, final_memory: self.outcome.final_memory.clone() }
    }

    /// Latency distributions of this run, derived from the records.
    #[must_use]
    pub fn latency_profile(&self) -> LatencyProfile {
        let mut profile = LatencyProfile::default();
        for rec in &self.records {
            if rec.op.kind.is_read() {
                profile
                    .read_latency
                    .record(rec.commit.saturating_since(rec.issue));
            }
            if rec.op.kind.is_sync() {
                profile
                    .sync_commit_latency
                    .record(rec.commit.saturating_since(rec.issue));
            }
            if rec.op.kind.is_write() {
                profile
                    .write_gp_lag
                    .record(rec.globally_performed.saturating_since(rec.commit));
            }
        }
        profile
    }

    /// Records of one processor, in program order.
    #[must_use]
    pub fn proc_records(&self, proc: u16) -> Vec<OpRecord> {
        let mut recs: Vec<OpRecord> = self
            .records
            .iter()
            .filter(|r| r.op.proc.0 == proc)
            .copied()
            .collect();
        recs.sort_by_key(|r| r.op.id.seq_part());
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memory_model::{OpId, ProcId};

    fn rec(proc: u16, seq: u32, commit: u64) -> OpRecord {
        OpRecord {
            op: Operation::data_write(
                OpId::for_thread_op(ProcId(proc), seq),
                ProcId(proc),
                Loc(seq),
                1,
            ),
            issue: SimTime(commit - 1),
            commit: SimTime(commit),
            globally_performed: SimTime(commit),
        }
    }

    fn result(records: Vec<OpRecord>) -> RunResult {
        RunResult {
            records,
            outcome: Outcome { regs: vec![[0; NUM_REGS]; 2], final_memory: vec![] },
            cycles: 100,
            stats: MachineStats::default(),
            completed: true,
        }
    }

    #[test]
    fn observation_groups_by_processor_in_program_order() {
        let r = result(vec![rec(1, 1, 30), rec(0, 0, 10), rec(1, 0, 20)]);
        let obs = r.observation();
        assert_eq!(obs.threads().len(), 2);
        let p1 = &obs.threads()[1];
        assert_eq!(p1.proc, ProcId(1));
        assert_eq!(
            p1.ops.iter().map(|o| o.id.seq_part()).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(obs.final_memory(), Some(&[][..]));
    }

    #[test]
    fn proc_records_sorted_by_program_order() {
        let r = result(vec![rec(0, 2, 50), rec(0, 0, 10), rec(0, 1, 30)]);
        let seqs: Vec<u32> = r.proc_records(0).iter().map(|x| x.op.id.seq_part()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(r.proc_records(9).is_empty());
    }

    #[test]
    fn latency_profile_buckets_by_kind() {
        use memory_model::Loc as L;
        let read = OpRecord {
            op: Operation::data_read(OpId::for_thread_op(ProcId(0), 0), ProcId(0), L(0), 1),
            issue: SimTime(10),
            commit: SimTime(25),
            globally_performed: SimTime(25),
        };
        let write = OpRecord {
            op: Operation::data_write(OpId::for_thread_op(ProcId(0), 1), ProcId(0), L(0), 1),
            issue: SimTime(30),
            commit: SimTime(40),
            globally_performed: SimTime(140),
        };
        let sync = OpRecord {
            op: Operation::sync_rmw(OpId::for_thread_op(ProcId(0), 2), ProcId(0), L(1), 0, 1),
            issue: SimTime(150),
            commit: SimTime(180),
            globally_performed: SimTime(200),
        };
        let r = result(vec![read, write, sync]);
        let p = r.latency_profile();
        assert_eq!(p.read_latency.count(), 2, "data read + sync rmw read component");
        assert_eq!(p.read_latency.min(), Some(15));
        assert_eq!(p.write_gp_lag.count(), 2, "data write + sync rmw write component");
        assert_eq!(p.write_gp_lag.max(), Some(100));
        assert_eq!(p.sync_commit_latency.count(), 1);
        assert_eq!(p.sync_commit_latency.min(), Some(30));
    }

    #[test]
    fn proc_stats_aggregates() {
        let mut s = ProcStats::default();
        *s.stalls.entry(StallReason::ReadValue).or_insert(0) += 5;
        *s.stalls.entry(StallReason::SyncCommit).or_insert(0) += 7;
        assert_eq!(s.total_stall(), 12);
        assert_eq!(s.stall(StallReason::SyncCommit), 7);
        assert_eq!(s.stall(StallReason::Def1AfterSync), 0);
    }
}
