//! # memsim — event-driven shared-memory multiprocessor simulators
//!
//! This crate builds every machine the paper discusses:
//!
//! * the **four machine classes of Figure 1** — shared-bus and
//!   general-interconnection-network systems, each with and without
//!   caches ([`InterconnectConfig`], [`MachineConfig::caches`]);
//! * the **ordering policies** layered on them ([`Policy`]):
//!   - [`Policy::Sc`] — the Scheurich–Dubois sufficient condition for
//!     sequential consistency: issue in program order, stall until the
//!     previous access is globally performed;
//!   - [`Policy::Relaxed`] — the performance-enhancing relaxations of
//!     Figure 1 (non-blocking stores, write buffers with store-to-load
//!     forwarding, out-of-order completion across memory modules);
//!   - [`Policy::WoDef1`] — Dubois–Scheurich–Briggs weak ordering
//!     (Definition 1): a processor stalls *itself* on a synchronization
//!     operation until all its previous accesses are globally performed,
//!     and issues nothing past a synchronization operation until that
//!     operation is globally performed;
//!   - [`Policy::WoDef2`] — the paper's example implementation
//!     (Section 5.3): per-processor outstanding-access **counters**,
//!     per-line **reserve bits**, and stall-the-*subsequent*-synchronizer
//!     semantics, with the Section 6 read-only-synchronization
//!     optimization as an option.
//!
//! Cache-based machines run the directory protocol from the `coherence`
//! crate; cacheless machines issue directly to per-location memory
//! modules. Every run produces a [`RunResult`] carrying per-operation
//! timestamps (issue / commit / globally-performed), a
//! [`memory_model::Observation`] for sequential-consistency checking, the
//! software-visible [`Outcome`], and stall breakdowns for the Figure 3
//! analysis.
//!
//! # Examples
//!
//! Run the Figure 3 hand-off on the Definition 2 implementation:
//!
//! ```
//! use litmus::corpus;
//! use memsim::{presets, Machine};
//!
//! let program = corpus::fig3_handoff(2);
//! let config = presets::network_cached(2, presets::wo_def2(), 42);
//! let result = Machine::run_program(&program, &config).unwrap();
//! assert!(result.completed);
//! // P1's TestAndSet succeeded and then observed P0's write of x.
//! assert_eq!(result.outcome.regs[1][1], 1);
//! ```

#![deny(missing_docs)]

mod config;
mod interconnect;
mod machine;
mod trace;

pub mod diag;
pub mod pool;
pub mod presets;
pub mod sweep;
pub mod timeline;
pub mod workload;

pub use config::{CoherenceKind, Def2Config, InterconnectConfig, MachineConfig, MachineConfigError, Policy};
pub use diag::{ProcDump, StateDump};
pub use machine::{Machine, RunError};
pub use simx::fault::{Chance, FaultConfig, FaultStats};
pub use trace::{
    checkable_order, read_trace, LatencyProfile, MachineStats, OpRecord, Outcome, ProcStats, RunResult,
    StallReason, TraceError, TraceItem, TraceReader, TraceSegment, TraceWriter,
    TRACE_MAGIC, TRACE_VERSION,
};
