//! Named machine configurations: the four Figure 1 classes and the
//! hardware models compared throughout the paper.

use crate::config::{CoherenceKind, Def2Config, InterconnectConfig, MachineConfig, Policy};

/// Figure 1, class 1: shared-bus system without caches.
#[must_use]
pub fn bus_no_cache(num_procs: usize, policy: Policy, seed: u64) -> MachineConfig {
    MachineConfig {
        num_procs,
        caches: false,
        num_modules: 1,
        interconnect: InterconnectConfig::bus(),
        policy,
        seed,
        ..MachineConfig::default()
    }
}

/// Figure 1, class 2: general interconnection network without caches.
#[must_use]
pub fn network_no_cache(num_procs: usize, policy: Policy, seed: u64) -> MachineConfig {
    MachineConfig {
        num_procs,
        caches: false,
        num_modules: 8,
        interconnect: InterconnectConfig::network(),
        policy,
        seed,
        ..MachineConfig::default()
    }
}

/// Figure 1, class 3: shared-bus system with caches.
#[must_use]
pub fn bus_cached(num_procs: usize, policy: Policy, seed: u64) -> MachineConfig {
    MachineConfig {
        num_procs,
        caches: true,
        num_modules: 1,
        interconnect: InterconnectConfig::bus(),
        policy,
        seed,
        ..MachineConfig::default()
    }
}

/// Figure 1, class 3 with the classic snooping MSI protocol instead of a
/// directory: coherence by atomic-bus broadcast. Supports SC, Relaxed and
/// WO-Def1 (the Definition 2 implementation is directory-specific).
#[must_use]
pub fn bus_cached_snooping(num_procs: usize, policy: Policy, seed: u64) -> MachineConfig {
    MachineConfig {
        num_procs,
        caches: true,
        num_modules: 1,
        interconnect: InterconnectConfig::bus(),
        policy,
        coherence: CoherenceKind::Snooping,
        seed,
        ..MachineConfig::default()
    }
}

/// Figure 1, class 4 (and the Section 5.2 implementation model): general
/// interconnection network with caches and a directory protocol.
#[must_use]
pub fn network_cached(num_procs: usize, policy: Policy, seed: u64) -> MachineConfig {
    MachineConfig {
        num_procs,
        caches: true,
        num_modules: 8,
        interconnect: InterconnectConfig::network(),
        policy,
        seed,
        ..MachineConfig::default()
    }
}

/// The sequentially consistent baseline policy.
#[must_use]
pub fn sc() -> Policy {
    Policy::Sc
}

/// The Figure 1 relaxed policy with a write buffer.
#[must_use]
pub fn relaxed() -> Policy {
    Policy::Relaxed { write_delay: 16 }
}

/// Weak ordering per Definition 1 (Dubois–Scheurich–Briggs).
#[must_use]
pub fn wo_def1() -> Policy {
    Policy::WoDef1
}

/// The paper's Definition 2 example implementation (Section 5.3).
#[must_use]
pub fn wo_def2() -> Policy {
    Policy::WoDef2(Def2Config::default())
}

/// The Section 5.3 queue variant: synchronization requests to a reserved
/// line wait in a queue at the owner and are serviced when the counter
/// reads zero, instead of being NACKed and retried over the interconnect.
#[must_use]
pub fn wo_def2_queued() -> Policy {
    Policy::WoDef2(Def2Config { queue_stalled_syncs: true, ..Def2Config::default() })
}

/// The Section 6 optimized variant: read-only synchronization operations
/// are not serialized and set no reserve bits.
#[must_use]
pub fn wo_def2_optimized() -> Policy {
    Policy::WoDef2(Def2Config {
        read_only_sync_optimization: true,
        ..Def2Config::default()
    })
}

/// All four hardware models compared in the benchmark harness, with names.
#[must_use]
pub fn all_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("SC", sc()),
        ("WO-Def1", wo_def1()),
        ("WO-Def2", wo_def2()),
        ("WO-Def2-opt", wo_def2_optimized()),
    ]
}

/// The four Figure 1 machine classes, with names.
#[must_use]
pub fn fig1_classes(
    num_procs: usize,
    policy: Policy,
    seed: u64,
) -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("bus/no-cache", bus_no_cache(num_procs, policy, seed)),
        ("network/no-cache", network_no_cache(num_procs, policy, seed)),
        ("bus/cache", bus_cached(num_procs, policy, seed)),
        ("network/cache", network_cached(num_procs, policy, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for (_, cfg) in fig1_classes(4, sc(), 0) {
            assert!(cfg.validate().is_ok());
        }
        for (_, policy) in all_policies() {
            // Def2 variants need caches.
            let cfg = network_cached(2, policy, 0);
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn snooping_preset_validates_for_supported_policies() {
        for policy in [sc(), relaxed(), wo_def1()] {
            assert!(bus_cached_snooping(2, policy, 0).validate().is_ok());
        }
        assert!(bus_cached_snooping(2, wo_def2(), 0).validate().is_err());
    }

    #[test]
    fn policy_lists_are_complete() {
        assert_eq!(all_policies().len(), 4);
        assert_eq!(fig1_classes(2, sc(), 0).len(), 4);
    }
}
