//! Interconnect timing models.

use std::collections::HashMap;

use simx::rng::Xoshiro256;
use simx::SimTime;

use crate::config::InterconnectConfig;

/// A node on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Processor (cache) `p`.
    Proc(u16),
    /// Memory module / directory shard `m`.
    Module(u32),
}

/// What a message is, for timing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Ordinary request/response traffic.
    Normal,
    /// An invalidation acknowledgement — the network config may delay
    /// these extra to stretch the commit → globally-performed gap.
    InvAck,
}

/// Computes delivery times for messages, maintaining bus occupancy and
/// per-pair FIFO ordering.
#[derive(Debug, Clone)]
pub struct Interconnect {
    config: InterconnectConfig,
    rng: Xoshiro256,
    bus_free_at: SimTime,
    last_delivery: HashMap<(Node, Node), SimTime>,
    /// Total messages carried, for stats.
    pub messages: u64,
}

impl Interconnect {
    /// Creates an interconnect with the given timing model and seed.
    #[must_use]
    pub fn new(config: InterconnectConfig, seed: u64) -> Self {
        Interconnect {
            config,
            rng: Xoshiro256::seed_from(seed),
            bus_free_at: SimTime::ZERO,
            last_delivery: HashMap::new(),
            messages: 0,
        }
    }

    /// The delivery time of a message sent now from `src` to `dst`.
    ///
    /// Bus: messages serialize through the single shared bus in FIFO
    /// order. Network: an independent uniform latency per message, kept
    /// FIFO per (src, dst) pair.
    pub fn delivery_time(
        &mut self,
        now: SimTime,
        src: Node,
        dst: Node,
        class: MsgClass,
    ) -> SimTime {
        self.messages += 1;
        match self.config {
            InterconnectConfig::Bus { latency } => {
                let start = now.max(self.bus_free_at);
                let arrival = start + latency;
                self.bus_free_at = arrival;
                arrival
            }
            InterconnectConfig::Network { min_latency, max_latency, ack_extra_delay } => {
                let base = if min_latency == max_latency {
                    min_latency
                } else {
                    self.rng.range_u64(min_latency, max_latency + 1)
                };
                let extra = match class {
                    MsgClass::InvAck => ack_extra_delay,
                    MsgClass::Normal => 0,
                };
                let mut arrival = now + base + extra;
                let key = (src, dst);
                if let Some(&last) = self.last_delivery.get(&key) {
                    arrival = arrival.max(last + 1);
                }
                self.last_delivery.insert(key, arrival);
                arrival
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_serializes_messages() {
        let mut ic = Interconnect::new(InterconnectConfig::Bus { latency: 10 }, 0);
        let t1 = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let t2 = ic.delivery_time(SimTime(0), Node::Proc(1), Node::Module(1), MsgClass::Normal);
        assert_eq!(t1, SimTime(10));
        assert_eq!(t2, SimTime(20), "second message waits for the bus");
        assert_eq!(ic.messages, 2);
    }

    #[test]
    fn bus_idles_between_bursts() {
        let mut ic = Interconnect::new(InterconnectConfig::Bus { latency: 5 }, 0);
        ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let t = ic.delivery_time(SimTime(100), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        assert_eq!(t, SimTime(105));
    }

    #[test]
    fn network_latency_stays_in_range() {
        let cfg = InterconnectConfig::Network {
            min_latency: 5,
            max_latency: 9,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 7);
        for i in 0..100u32 {
            // Distinct destinations so per-pair FIFO does not inflate.
            let t = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(i), MsgClass::Normal);
            assert!((5..=9).contains(&t.cycles()), "latency {t} out of range");
        }
    }

    #[test]
    fn network_keeps_per_pair_fifo() {
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 50,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 3);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let t = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
            assert!(t > last, "same-pair messages must stay FIFO");
            last = t;
        }
    }

    #[test]
    fn network_can_reorder_across_modules() {
        // A later message to a near module may beat an earlier one to a far
        // module — the Figure 1 network reordering.
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 100,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 11);
        let mut reordered = false;
        for i in 0..50u32 {
            let a = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(2 * i), MsgClass::Normal);
            let b = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(2 * i + 1), MsgClass::Normal);
            if b < a {
                reordered = true;
            }
        }
        assert!(reordered, "cross-module reordering should occur");
    }

    #[test]
    fn ack_extra_delay_applies_to_acks_only() {
        let cfg = InterconnectConfig::Network {
            min_latency: 10,
            max_latency: 10,
            ack_extra_delay: 90,
        };
        let mut ic = Interconnect::new(cfg, 0);
        let normal =
            ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let ack = ic.delivery_time(SimTime(0), Node::Proc(1), Node::Module(0), MsgClass::InvAck);
        assert_eq!(normal, SimTime(10));
        assert_eq!(ack, SimTime(100));
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 100,
            ack_extra_delay: 0,
        };
        let mut a = Interconnect::new(cfg, 5);
        let mut b = Interconnect::new(cfg, 5);
        for i in 0..20u32 {
            assert_eq!(
                a.delivery_time(SimTime(i as u64), Node::Proc(0), Node::Module(i), MsgClass::Normal),
                b.delivery_time(SimTime(i as u64), Node::Proc(0), Node::Module(i), MsgClass::Normal)
            );
        }
    }
}
