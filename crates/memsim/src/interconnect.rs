//! Interconnect timing models.
//!
//! [`Interconnect::route`] layers an optional seeded
//! [`FaultPlan`] over the timing model: messages may pick up extra
//! latency, control messages (recalls/downgrades) may be duplicated, and
//! messages may be dropped — detectably (the sender is NACKed and retries
//! with exponential backoff, all folded into the final delivery time) or
//! silently (the watchdog-fodder [`Route::Blackholed`]). Perturbed or
//! not, per-(src, dst) FIFO is preserved: extra latency and retry delays
//! are applied *before* the FIFO clamp.

use std::collections::HashMap;

use simx::fault::{FaultConfig, FaultDecision, FaultPlan, FaultStats};
use simx::rng::Xoshiro256;
use simx::SimTime;

use crate::config::InterconnectConfig;

/// A node on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Processor (cache) `p`.
    Proc(u16),
    /// Memory module / directory shard `m`.
    Module(u32),
}

/// What a message is, for timing and fault-injection purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Ordinary request/response traffic.
    Normal,
    /// An invalidation acknowledgement — the network config may delay
    /// these extra to stretch the commit → globally-performed gap, and
    /// [`FaultConfig::ack_blackhole`] silently discards them.
    InvAck,
    /// An idempotent control message (recall/downgrade): the only class a
    /// fault plan may duplicate. Safe because the receiving cache ignores
    /// recalls and downgrades of lines it no longer owns, and per-pair
    /// FIFO lands the duplicate before any later grant.
    Control,
}

/// What the interconnect decided to do with one message under fault
/// injection (see [`Interconnect::route`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The message arrives — possibly late, possibly after NACKed
    /// retries, possibly twice.
    Deliver {
        /// Arrival time of the (first) copy.
        at: SimTime,
        /// Arrival time of a duplicate copy, if the plan duplicated the
        /// message. Always later than `at` on the same (src, dst) pair.
        duplicate_at: Option<SimTime>,
        /// Detected drops survived before this delivery succeeded.
        retries: u32,
    },
    /// The message silently vanished; no one will ever know — except the
    /// watchdogs.
    Blackholed,
    /// Every retry was dropped; the sender's retry budget is exhausted.
    Exhausted {
        /// Send attempts made (1 original + retries).
        attempts: u32,
    },
}

/// Computes delivery times for messages, maintaining bus occupancy and
/// per-pair FIFO ordering.
#[derive(Debug, Clone)]
pub struct Interconnect {
    config: InterconnectConfig,
    rng: Xoshiro256,
    bus_free_at: SimTime,
    last_delivery: HashMap<(Node, Node), SimTime>,
    chaos: Option<FaultPlan>,
    /// Total messages carried, for stats.
    pub messages: u64,
}

impl Interconnect {
    /// Creates an interconnect with the given timing model and seed.
    #[must_use]
    pub fn new(config: InterconnectConfig, seed: u64) -> Self {
        Interconnect {
            config,
            rng: Xoshiro256::seed_from(seed),
            bus_free_at: SimTime::ZERO,
            last_delivery: HashMap::new(),
            chaos: None,
            messages: 0,
        }
    }

    /// Creates a fault-injected interconnect. The fault plan draws from
    /// its own stream (`fault_seed`), independent of the latency stream,
    /// so enabling chaos perturbs message fates without reshuffling the
    /// underlying latency draws.
    #[must_use]
    pub fn with_chaos(
        config: InterconnectConfig,
        seed: u64,
        fault: FaultConfig,
        fault_seed: u64,
    ) -> Self {
        Interconnect { chaos: Some(FaultPlan::new(fault_seed, fault)), ..Self::new(config, seed) }
    }

    /// The fault plan's counters, if this interconnect injects faults.
    #[must_use]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.chaos.as_ref().map(FaultPlan::stats)
    }

    /// Reseeds the interconnect for a fresh run, keeping the FIFO map's
    /// allocation. After a reset the interconnect behaves exactly like a
    /// newly constructed one: the latency RNG restarts from `seed`, the
    /// fault plan (if any) is rebuilt from `chaos`, and all occupancy and
    /// ordering state is cleared.
    pub fn reset(
        &mut self,
        config: InterconnectConfig,
        seed: u64,
        chaos: Option<(FaultConfig, u64)>,
    ) {
        self.config = config;
        self.rng = Xoshiro256::seed_from(seed);
        self.bus_free_at = SimTime::ZERO;
        self.last_delivery.clear();
        self.chaos = chaos.map(|(fault, fault_seed)| FaultPlan::new(fault_seed, fault));
        self.messages = 0;
    }

    /// The delivery time of a message sent now from `src` to `dst`,
    /// ignoring fault injection (used directly by fault-free callers and
    /// as the base schedule under [`Interconnect::route`]).
    ///
    /// Bus: messages serialize through the single shared bus in FIFO
    /// order. Network: an independent uniform latency per message, kept
    /// FIFO per (src, dst) pair.
    pub fn delivery_time(
        &mut self,
        now: SimTime,
        src: Node,
        dst: Node,
        class: MsgClass,
    ) -> SimTime {
        self.schedule(now, src, dst, class, 0)
    }

    /// Routes one message under the fault plan (a plain delivery when
    /// chaos is off). Extra latency and retry penalties are added before
    /// the per-pair FIFO clamp, and a duplicate is scheduled through the
    /// same clamp, so perturbed traffic still obeys the ordering the
    /// protocol assumes.
    pub fn route(&mut self, now: SimTime, src: Node, dst: Node, class: MsgClass) -> Route {
        let Some(mut plan) = self.chaos.take() else {
            return Route::Deliver {
                at: self.delivery_time(now, src, dst, class),
                duplicate_at: None,
                retries: 0,
            };
        };
        let nack_rtt = self.nack_rtt();
        let mut penalty = 0u64;
        let mut attempt = 0u32;
        let route = loop {
            match plan.decide(class == MsgClass::Control, class == MsgClass::InvAck) {
                FaultDecision::Blackhole => break Route::Blackholed,
                FaultDecision::Drop => {
                    if attempt >= plan.config().max_retries {
                        plan.note_exhausted();
                        break Route::Exhausted { attempts: attempt + 1 };
                    }
                    // The sender learns of the loss one NACK round-trip
                    // later, backs off, and resends.
                    penalty += nack_rtt + plan.backoff(attempt);
                    plan.note_retry();
                    attempt += 1;
                }
                FaultDecision::Deliver { extra_delay, duplicate } => {
                    let at = self.schedule(now, src, dst, class, penalty + extra_delay);
                    let duplicate_at = duplicate
                        .then(|| self.schedule(now, src, dst, class, penalty + extra_delay));
                    break Route::Deliver { at, duplicate_at, retries: attempt };
                }
            }
        };
        self.chaos = Some(plan);
        route
    }

    /// One NACK round trip, used to price detected drops: the time for
    /// the loss notice to reach the sender and the resend to start.
    fn nack_rtt(&self) -> u64 {
        match self.config {
            InterconnectConfig::Bus { latency } => 2 * latency,
            InterconnectConfig::Network { min_latency, .. } => 2 * min_latency,
        }
    }

    fn schedule(
        &mut self,
        now: SimTime,
        src: Node,
        dst: Node,
        class: MsgClass,
        chaos_extra: u64,
    ) -> SimTime {
        self.messages += 1;
        match self.config {
            InterconnectConfig::Bus { latency } => {
                let start = now.max(self.bus_free_at);
                let arrival = start + latency + chaos_extra;
                self.bus_free_at = arrival;
                arrival
            }
            InterconnectConfig::Network { min_latency, max_latency, ack_extra_delay } => {
                let base = if min_latency == max_latency {
                    min_latency
                } else {
                    self.rng.range_u64(min_latency, max_latency + 1)
                };
                let extra = match class {
                    MsgClass::InvAck => ack_extra_delay,
                    MsgClass::Normal | MsgClass::Control => 0,
                };
                let mut arrival = now + base + extra + chaos_extra;
                let key = (src, dst);
                if let Some(&last) = self.last_delivery.get(&key) {
                    arrival = arrival.max(last + 1);
                }
                self.last_delivery.insert(key, arrival);
                arrival
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_serializes_messages() {
        let mut ic = Interconnect::new(InterconnectConfig::Bus { latency: 10 }, 0);
        let t1 = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let t2 = ic.delivery_time(SimTime(0), Node::Proc(1), Node::Module(1), MsgClass::Normal);
        assert_eq!(t1, SimTime(10));
        assert_eq!(t2, SimTime(20), "second message waits for the bus");
        assert_eq!(ic.messages, 2);
    }

    #[test]
    fn bus_idles_between_bursts() {
        let mut ic = Interconnect::new(InterconnectConfig::Bus { latency: 5 }, 0);
        ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let t = ic.delivery_time(SimTime(100), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        assert_eq!(t, SimTime(105));
    }

    #[test]
    fn network_latency_stays_in_range() {
        let cfg = InterconnectConfig::Network {
            min_latency: 5,
            max_latency: 9,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 7);
        for i in 0..100u32 {
            // Distinct destinations so per-pair FIFO does not inflate.
            let t = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(i), MsgClass::Normal);
            assert!((5..=9).contains(&t.cycles()), "latency {t} out of range");
        }
    }

    #[test]
    fn network_keeps_per_pair_fifo() {
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 50,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 3);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let t = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
            assert!(t > last, "same-pair messages must stay FIFO");
            last = t;
        }
    }

    #[test]
    fn network_can_reorder_across_modules() {
        // A later message to a near module may beat an earlier one to a far
        // module — the Figure 1 network reordering.
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 100,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::new(cfg, 11);
        let mut reordered = false;
        for i in 0..50u32 {
            let a = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(2 * i), MsgClass::Normal);
            let b = ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(2 * i + 1), MsgClass::Normal);
            if b < a {
                reordered = true;
            }
        }
        assert!(reordered, "cross-module reordering should occur");
    }

    #[test]
    fn ack_extra_delay_applies_to_acks_only() {
        let cfg = InterconnectConfig::Network {
            min_latency: 10,
            max_latency: 10,
            ack_extra_delay: 90,
        };
        let mut ic = Interconnect::new(cfg, 0);
        let normal =
            ic.delivery_time(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        let ack = ic.delivery_time(SimTime(0), Node::Proc(1), Node::Module(0), MsgClass::InvAck);
        assert_eq!(normal, SimTime(10));
        assert_eq!(ack, SimTime(100));
    }

    #[test]
    fn route_without_chaos_is_plain_delivery() {
        let mut ic = Interconnect::new(InterconnectConfig::Bus { latency: 10 }, 0);
        let r = ic.route(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        assert_eq!(r, Route::Deliver { at: SimTime(10), duplicate_at: None, retries: 0 });
        assert!(ic.fault_stats().is_none());
    }

    #[test]
    fn blackholes_swallow_messages() {
        use simx::fault::{Chance, FaultConfig};
        let fault = FaultConfig { blackhole_chance: Chance::always(), ..FaultConfig::off() };
        let mut ic = Interconnect::with_chaos(InterconnectConfig::bus(), 0, fault, 1);
        let r = ic.route(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        assert_eq!(r, Route::Blackholed);
        assert_eq!(ic.fault_stats().unwrap().blackholed, 1);
        assert_eq!(ic.messages, 0, "a blackholed message never occupies the wire");
    }

    #[test]
    fn detected_drops_retry_with_backoff_then_exhaust() {
        use simx::fault::{Chance, FaultConfig};
        let fault = FaultConfig {
            drop_chance: Chance::always(),
            max_retries: 3,
            backoff_base: 4,
            ..FaultConfig::off()
        };
        let mut ic = Interconnect::with_chaos(InterconnectConfig::Bus { latency: 5 }, 0, fault, 1);
        let r = ic.route(SimTime(0), Node::Proc(0), Node::Module(0), MsgClass::Normal);
        assert_eq!(r, Route::Exhausted { attempts: 4 });
        let stats = ic.fault_stats().unwrap();
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn retry_penalty_lands_in_the_delivery_time() {
        use simx::fault::{Chance, FaultConfig};
        // Half the messages drop; survivors must arrive strictly later
        // than the unperturbed latency whenever they retried.
        let fault = FaultConfig {
            drop_chance: Chance::of(1, 2),
            max_retries: 32,
            backoff_base: 4,
            ..FaultConfig::off()
        };
        let mut ic = Interconnect::with_chaos(InterconnectConfig::Bus { latency: 5 }, 0, fault, 3);
        let mut saw_retry = false;
        for i in 0..50u32 {
            if let Route::Deliver { at, retries, .. } =
                ic.route(SimTime(0), Node::Proc(0), Node::Module(i), MsgClass::Normal)
            {
                if retries > 0 {
                    saw_retry = true;
                    // First retry costs at least one NACK RTT (10) + backoff (4).
                    assert!(at.cycles() >= 5 + 14, "retried delivery too early: {at}");
                }
            }
        }
        assert!(saw_retry, "a 1/2 drop chance over 50 sends should retry at least once");
    }

    #[test]
    fn duplicates_follow_their_original_in_pair_order() {
        use simx::fault::{Chance, FaultConfig};
        let fault = FaultConfig { dup_chance: Chance::always(), ..FaultConfig::off() };
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 40,
            ack_extra_delay: 0,
        };
        let mut ic = Interconnect::with_chaos(cfg, 9, fault, 2);
        let mut last = SimTime::ZERO;
        for _ in 0..20 {
            match ic.route(SimTime(0), Node::Module(0), Node::Proc(0), MsgClass::Control) {
                Route::Deliver { at, duplicate_at: Some(dup), .. } => {
                    assert!(at > last, "originals stay FIFO");
                    assert!(dup > at, "duplicate arrives after its original");
                    last = dup;
                }
                other => panic!("expected duplicated delivery, got {other:?}"),
            }
        }
        // Normal-class traffic is never duplicated.
        let r = ic.route(SimTime(0), Node::Module(0), Node::Proc(1), MsgClass::Normal);
        assert!(matches!(r, Route::Deliver { duplicate_at: None, .. }), "got {r:?}");
    }

    #[test]
    fn same_seeds_same_routes() {
        use simx::fault::FaultConfig;
        let cfg = InterconnectConfig::network();
        let mut a = Interconnect::with_chaos(cfg, 5, FaultConfig::drop_heavy(), 7);
        let mut b = Interconnect::with_chaos(cfg, 5, FaultConfig::drop_heavy(), 7);
        for i in 0..100u32 {
            assert_eq!(
                a.route(SimTime(u64::from(i)), Node::Proc(0), Node::Module(i), MsgClass::Normal),
                b.route(SimTime(u64::from(i)), Node::Proc(0), Node::Module(i), MsgClass::Normal)
            );
        }
        assert_eq!(a.fault_stats(), b.fault_stats());
    }

    #[test]
    fn reset_replays_the_same_schedule_as_a_fresh_interconnect() {
        use simx::fault::FaultConfig;
        let cfg = InterconnectConfig::network();
        let mut reused = Interconnect::with_chaos(cfg, 5, FaultConfig::drop_heavy(), 7);
        for i in 0..50u32 {
            let _ = reused.route(SimTime(u64::from(i)), Node::Proc(0), Node::Module(i), MsgClass::Normal);
        }
        reused.reset(cfg, 5, Some((FaultConfig::drop_heavy(), 7)));
        let mut fresh = Interconnect::with_chaos(cfg, 5, FaultConfig::drop_heavy(), 7);
        for i in 0..50u32 {
            assert_eq!(
                reused.route(SimTime(u64::from(i)), Node::Proc(0), Node::Module(i), MsgClass::Normal),
                fresh.route(SimTime(u64::from(i)), Node::Proc(0), Node::Module(i), MsgClass::Normal)
            );
        }
        assert_eq!(reused.fault_stats(), fresh.fault_stats());
        assert_eq!(reused.messages, fresh.messages);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = InterconnectConfig::Network {
            min_latency: 1,
            max_latency: 100,
            ack_extra_delay: 0,
        };
        let mut a = Interconnect::new(cfg, 5);
        let mut b = Interconnect::new(cfg, 5);
        for i in 0..20u32 {
            assert_eq!(
                a.delivery_time(SimTime(i as u64), Node::Proc(0), Node::Module(i), MsgClass::Normal),
                b.delivery_time(SimTime(i as u64), Node::Proc(0), Node::Module(i), MsgClass::Normal)
            );
        }
    }
}
