//! ASCII timelines of simulation runs — Figure 3 as a renderer.
//!
//! Each memory operation becomes one row: a bar spanning simulated time
//! from *issue* (`|`) through *commit* (`C`) to *globally performed*
//! (`G`), grouped by processor. The gap between `C` and `G` is exactly
//! the window the paper's analysis turns on: Definition 1 stalls
//! processors across it, the Definition 2 implementation rides through
//! it.

use std::fmt::Write as _;

use crate::trace::{OpRecord, RunResult};

/// Options for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Character columns for the time axis.
    pub width: usize,
    /// Maximum rows (operations) to render, in commit order.
    pub max_ops: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig { width: 64, max_ops: 40 }
    }
}

/// Renders the run as an ASCII timeline.
///
/// # Examples
///
/// ```
/// use litmus::corpus;
/// use memsim::{presets, timeline, Machine};
///
/// let program = corpus::fig3_handoff(1);
/// let cfg = presets::network_cached(2, presets::wo_def2(), 3);
/// let result = Machine::run_program(&program, &cfg).unwrap();
/// let art = timeline::render(&result, &timeline::TimelineConfig::default());
/// assert!(art.contains("P0"));
/// assert!(art.contains('G'));
/// ```
#[must_use]
pub fn render(result: &RunResult, config: &TimelineConfig) -> String {
    let mut out = String::new();
    let total = result.cycles.max(1);
    let scale = |t: u64| -> usize {
        ((t as f64 / total as f64) * (config.width.saturating_sub(1)) as f64).round()
            as usize
    };

    let _ = writeln!(
        out,
        "{:<22} 0{:>width$}",
        "op",
        format!("{total}cy"),
        width = config.width
    );

    let mut shown = 0usize;
    let procs: Vec<u16> = {
        let mut ps: Vec<u16> = result.records.iter().map(|r| r.op.proc.0).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    };
    for &p in &procs {
        for rec in result.proc_records(p) {
            if shown >= config.max_ops {
                let _ = writeln!(out, "... ({} more ops)", result.records.len() - shown);
                return out;
            }
            shown += 1;
            out.push_str(&row(&rec, config.width, scale));
        }
    }
    out
}

fn row(rec: &OpRecord, width: usize, scale: impl Fn(u64) -> usize) -> String {
    let mut bar = vec![b' '; width];
    let issue = scale(rec.issue.cycles()).min(width - 1);
    let commit = scale(rec.commit.cycles()).min(width - 1);
    let gp = scale(rec.globally_performed.cycles()).min(width - 1);
    for cell in bar.iter_mut().take(commit).skip(issue) {
        *cell = b'-';
    }
    for cell in bar.iter_mut().take(gp).skip(commit) {
        *cell = b'.';
    }
    bar[issue] = b'|';
    bar[commit] = b'C';
    bar[gp] = b'G';
    let mut label = format!("{} {}({})", rec.op.proc, rec.op.kind, rec.op.loc);
    if let Some(v) = rec.op.read_value {
        let _ = write!(label, "->{v}");
    }
    format!(
        "{label:<22} {}  [{} {} {}]\n",
        String::from_utf8(bar).expect("ascii bar"),
        rec.issue.cycles(),
        rec.commit.cycles(),
        rec.globally_performed.cycles()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, Machine};
    use litmus::corpus;

    fn sample() -> RunResult {
        let program = corpus::fig3_handoff(1);
        let cfg = crate::MachineConfig {
            interconnect: crate::InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 8,
                ack_extra_delay: 60,
            },
            ..presets::network_cached(2, presets::wo_def2(), 3)
        };
        Machine::run_program(&program, &cfg).unwrap()
    }

    #[test]
    fn renders_one_row_per_op_grouped_by_processor() {
        let result = sample();
        let art = render(&result, &TimelineConfig::default());
        let rows = art.lines().filter(|l| l.contains('[')).count();
        assert_eq!(rows, result.records.len().min(40));
        // P0 rows precede P1 rows.
        let first_p1 = art.lines().position(|l| l.starts_with("P1")).unwrap();
        assert!(art.lines().skip(first_p1).all(|l| !l.starts_with("P0")));
    }

    #[test]
    fn markers_appear_in_causal_order() {
        let result = sample();
        let art = render(&result, &TimelineConfig::default());
        for line in art.lines().filter(|l| l.contains('[')) {
            let bar: &str = &line[23..23 + 64];
            let i = bar.find('|');
            let c = bar.find('C');
            let g = bar.find('G');
            if let (Some(i), Some(g)) = (i, g) {
                assert!(i <= g, "issue right of gp: {line}");
            }
            if let (Some(c), Some(g)) = (c, g) {
                assert!(c <= g, "commit right of gp: {line}");
            }
        }
    }

    #[test]
    fn max_ops_truncates_with_a_note() {
        let result = sample();
        let art = render(&result, &TimelineConfig { width: 40, max_ops: 2 });
        assert!(art.contains("more ops"));
        assert_eq!(art.lines().filter(|l| l.contains('[')).count(), 2);
    }

    #[test]
    fn the_commit_to_gp_gap_is_visible_for_slow_writes() {
        // Warm a sharer so W(x) needs a slow invalidation round: P0's
        // W(x) then shows a '.' run between C and G.
        use litmus::{Program, Reg, Thread};
        use memory_model::Loc;
        let program = Program::new(vec![
            Thread::new()
                .sync_read(corpus::LOC_T, Reg(2))
                .branch_ne(Reg(2), 1u64, 0)
                .write(corpus::LOC_X, 1)
                .sync_write(corpus::LOC_S, 0),
            Thread::new()
                .read(corpus::LOC_X, Reg(0))
                .sync_write(corpus::LOC_T, 1),
        ])
        .unwrap()
        .with_init(vec![(Loc(100), 1)]);
        let cfg = crate::MachineConfig {
            interconnect: crate::InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 8,
                ack_extra_delay: 120,
            },
            ..presets::network_cached(2, presets::wo_def2(), 3)
        };
        let result = Machine::run_program(&program, &cfg).unwrap();
        let art = render(&result, &TimelineConfig { width: 100, max_ops: 40 });
        let wx = art
            .lines()
            .find(|l| l.starts_with("P0 W(m0)"))
            .expect("W(x) row present");
        assert!(wx.contains('.'), "commit→GP gap should render as dots: {wx}");
    }
}
