//! A tiny work-stealing index pool.
//!
//! [`run_with_worker`] fans the indexes `0..count` across worker threads
//! that steal from a shared atomic cursor and merges the per-index results
//! back **in index order**, so the returned vector is independent of the
//! thread count and of which worker ran which index. Each worker carries
//! one piece of reusable state (`S`), created once per worker — the sweep
//! engine recycles a whole [`crate::Machine`] there, the `wo-trace` shard
//! engine needs none.
//!
//! This is the scheduling core [`crate::sweep::sweep`] always had,
//! extracted so other batch consumers (per-location shard processing in
//! the streaming trace checker) reuse the same pool instead of growing a
//! parallel one.
//!
//! # Examples
//!
//! ```
//! use memsim::pool::run_with_worker;
//!
//! let squares = run_with_worker(5, 2, || (), |(), i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work` for every index in `0..count` and returns the results in
/// index order.
///
/// `threads == 0` uses the machine's available parallelism; `threads == 1`
/// runs serially on the calling thread. In both cases `init` is called
/// once per worker to build its reusable state. Workers steal indexes
/// from a shared cursor, so load imbalance between cheap and expensive
/// indexes self-corrects.
///
/// # Panics
///
/// Panics if `work` panics on any index (the panic is propagated after
/// the other workers drain).
pub fn run_with_worker<S, T, I, F>(count: usize, threads: usize, init: I, work: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..count).map(|i| work(&mut state, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, work(&mut state, i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("pool worker thread panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was assigned to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_thread_count() {
        let serial = run_with_worker(17, 1, || (), |(), i| i * 3);
        for threads in [0, 2, 5, 32] {
            assert_eq!(run_with_worker(17, threads, || (), |(), i| i * 3), serial);
        }
    }

    #[test]
    fn worker_state_is_reused_across_stolen_indexes() {
        // Serial: one worker sees every index, so its counter reaches 10.
        let counts = run_with_worker(
            10,
            1,
            || 0u32,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.last(), Some(&10));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = run_with_worker(0, 4, || (), |(), i| i);
        assert!(out.is_empty());
    }
}
