//! Machine configuration: interconnect, caches, ordering policy.

use std::error::Error;
use std::fmt;

use simx::fault::FaultConfig;

/// The interconnect joining processors to memory (or to the directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectConfig {
    /// A shared bus: one message at a time, FIFO, fixed latency. The bus
    /// is the serialization point of bus-based machines.
    Bus {
        /// Cycles each message occupies the bus.
        latency: u64,
    },
    /// A general interconnection network: messages to different
    /// destinations travel independently with per-message latencies drawn
    /// uniformly from `[min_latency, max_latency]`; messages between the
    /// same (source, destination) pair stay FIFO (virtual-channel
    /// ordering, which directory protocols assume), but messages from one
    /// source to *different* modules may arrive out of order — exactly the
    /// reordering Figure 1's network case turns on.
    Network {
        /// Minimum per-hop latency in cycles.
        min_latency: u64,
        /// Maximum per-hop latency in cycles (inclusive).
        max_latency: u64,
        /// Extra cycles added to invalidation acknowledgements, modeling a
        /// congested ack path; raising this stretches the gap between a
        /// write's *commit* and its *global perform* (the lever behind the
        /// Figure 3 analysis).
        ack_extra_delay: u64,
    },
}

impl InterconnectConfig {
    /// A default bus.
    #[must_use]
    pub fn bus() -> Self {
        InterconnectConfig::Bus { latency: 4 }
    }

    /// A default network.
    #[must_use]
    pub fn network() -> Self {
        InterconnectConfig::Network { min_latency: 8, max_latency: 24, ack_extra_delay: 0 }
    }
}

/// Which coherence mechanism cached machines use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceKind {
    /// The directory-based protocol of Section 5.2 (works on any
    /// interconnect; required by the Definition 2 implementation).
    #[default]
    Directory,
    /// A snooping MSI protocol over an atomic bus (the classic design for
    /// Figure 1's bus+cache class). Writes commit and globally perform at
    /// the bus grant, so the Section 5.3 reserve-bit implementation does
    /// not apply; supported policies: SC, Relaxed, WO-Def1.
    Snooping,
}

/// Options for the Definition 2 example implementation (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Def2Config {
    /// Apply the Section 6 optimization: read-only synchronization
    /// operations (`Test`) are not treated as writes by the coherence
    /// protocol, are not serialized, and do not set reserve bits.
    pub read_only_sync_optimization: bool,
    /// "Allowing only a limited number of cache misses to be sent to
    /// memory while any line is reserved in the cache" (Section 5.3) —
    /// bounds how long a stalled synchronization request can wait.
    /// `None` means unlimited.
    pub max_misses_while_reserved: Option<u32>,
    /// Section 5.3 offers two ways to stall a synchronization request on a
    /// reserved line: "maintaining a queue of stalled requests to be
    /// serviced when the counter reads zero" (`true`) "or a negative ack
    /// may be sent to the processor that sent the request, asking it to
    /// try again" (`false`, the default).
    pub queue_stalled_syncs: bool,
}

/// The memory-ordering policy the processors enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Sequential consistency by brute force: a processor issues its
    /// accesses in program order and stalls until each is globally
    /// performed before issuing the next (Scheurich & Dubois's sufficient
    /// condition).
    Sc,
    /// The Figure 1 relaxations: stores are non-blocking (fire-and-forget)
    /// and may additionally sit in a write buffer for `write_delay` cycles
    /// before issuing, with reads bypassing them (store-to-load forwarding
    /// keeps intra-processor dependences intact). Loads still block their
    /// own processor until the value returns.
    Relaxed {
        /// Cycles a data write lingers in the write buffer before issuing.
        write_delay: u64,
    },
    /// Weak ordering per Dubois–Scheurich–Briggs (Definition 1): stall
    /// *before* a synchronization operation until all previous accesses
    /// are globally performed, and after it until the synchronization
    /// operation itself is globally performed.
    WoDef1,
    /// The paper's Definition 2 example implementation (Section 5.3):
    /// counters + reserve bits; the issuing processor never stalls for its
    /// previous accesses — the *next* processor to synchronize on the same
    /// location does.
    WoDef2(Def2Config),
}

impl Policy {
    /// Short human-readable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Sc => "SC",
            Policy::Relaxed { .. } => "Relaxed",
            Policy::WoDef1 => "WO-Def1",
            Policy::WoDef2(cfg) if cfg.read_only_sync_optimization => "WO-Def2-opt",
            Policy::WoDef2(_) => "WO-Def2",
        }
    }
}

/// A complete machine description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors.
    pub num_procs: usize,
    /// Whether processors have (coherent) caches.
    pub caches: bool,
    /// Number of memory modules (cacheless machines) or directory shards
    /// (cached machines); locations map to modules round-robin.
    pub num_modules: u32,
    /// The interconnect.
    pub interconnect: InterconnectConfig,
    /// The ordering policy.
    pub policy: Policy,
    /// Coherence mechanism for cached machines.
    pub coherence: CoherenceKind,
    /// Cache capacity in lines (`None`: unbounded). Bounded caches evict
    /// LRU lines with write-backs; reserved lines are never flushed
    /// (Section 5.3) — the processor stalls instead.
    pub cache_capacity: Option<usize>,
    /// RNG seed for network latencies.
    pub seed: u64,
    /// Watchdog: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Fault injection on the interconnect (`None`: a perfect wire). The
    /// fault plan's decision stream is seeded from [`MachineConfig::seed`],
    /// so a chaos run replays exactly from its config.
    pub chaos: Option<FaultConfig>,
    /// Livelock watchdog: abort with [`crate::RunError::Livelock`] if no
    /// processor commits an access for this many cycles while the machine
    /// is still busy. `None` disables the watchdog.
    pub stall_limit: Option<u64>,
}

impl MachineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// * [`MachineConfigError::Def2NeedsCaches`] — the Section 5.3
    ///   implementation is defined in terms of cache lines and reserve
    ///   bits; it cannot run on a cacheless machine.
    /// * [`MachineConfigError::NoProcessors`] / other structural problems.
    pub fn validate(&self) -> Result<(), MachineConfigError> {
        if self.num_procs == 0 {
            return Err(MachineConfigError::NoProcessors);
        }
        if self.num_modules == 0 {
            return Err(MachineConfigError::NoModules);
        }
        if matches!(self.policy, Policy::WoDef2(_)) && !self.caches {
            return Err(MachineConfigError::Def2NeedsCaches);
        }
        if self.cache_capacity == Some(0) {
            return Err(MachineConfigError::ZeroCacheCapacity);
        }
        if self.coherence == CoherenceKind::Snooping {
            if !self.caches {
                return Err(MachineConfigError::SnoopingNeedsCaches);
            }
            if !matches!(self.interconnect, InterconnectConfig::Bus { .. }) {
                return Err(MachineConfigError::SnoopingNeedsBus);
            }
            if matches!(self.policy, Policy::WoDef2(_)) {
                return Err(MachineConfigError::SnoopingExcludesDef2);
            }
            if self.cache_capacity.is_some() {
                return Err(MachineConfigError::SnoopingUnboundedOnly);
            }
        }
        if let InterconnectConfig::Network { min_latency, max_latency, .. } =
            self.interconnect
        {
            if min_latency > max_latency {
                return Err(MachineConfigError::BadLatencyRange {
                    min: min_latency,
                    max: max_latency,
                });
            }
        }
        if let Some(chaos) = self.chaos {
            if !chaos.is_valid() {
                return Err(MachineConfigError::InvalidChaosConfig);
            }
        }
        if self.stall_limit == Some(0) {
            return Err(MachineConfigError::ZeroStallLimit);
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_procs: 2,
            caches: true,
            num_modules: 4,
            interconnect: InterconnectConfig::network(),
            policy: Policy::Sc,
            coherence: CoherenceKind::Directory,
            cache_capacity: None,
            seed: 1,
            max_cycles: 10_000_000,
            chaos: None,
            stall_limit: Some(1_000_000),
        }
    }
}

/// A structural problem with a [`MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineConfigError {
    /// `num_procs == 0`.
    NoProcessors,
    /// `num_modules == 0`.
    NoModules,
    /// The Definition 2 implementation requires caches.
    Def2NeedsCaches,
    /// `cache_capacity` was `Some(0)`.
    ZeroCacheCapacity,
    /// Snooping coherence on a cacheless machine.
    SnoopingNeedsCaches,
    /// Snooping coherence requires the atomic bus (it broadcasts).
    SnoopingNeedsBus,
    /// The Definition 2 implementation is directory-specific: on the
    /// atomic bus writes globally perform at commit, leaving nothing for
    /// reserve bits to track.
    SnoopingExcludesDef2,
    /// Capacity-bounded snooping caches are not modeled.
    SnoopingUnboundedOnly,
    /// `min_latency > max_latency`.
    BadLatencyRange {
        /// Configured minimum.
        min: u64,
        /// Configured maximum.
        max: u64,
    },
    /// The chaos [`FaultConfig`] failed [`FaultConfig::is_valid`] — a
    /// malformed chance, a delay with no latency bound, or a drop chance
    /// with no retry budget.
    InvalidChaosConfig,
    /// `stall_limit` was `Some(0)` — the livelock watchdog would fire
    /// before the first access could commit.
    ZeroStallLimit,
}

impl fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineConfigError::NoProcessors => write!(f, "machine has no processors"),
            MachineConfigError::NoModules => write!(f, "machine has no memory modules"),
            MachineConfigError::Def2NeedsCaches => write!(
                f,
                "the Definition 2 implementation (Section 5.3) is defined in terms of cache lines and reserve bits; enable caches"
            ),
            MachineConfigError::BadLatencyRange { min, max } => {
                write!(f, "network latency range is empty: min {min} > max {max}")
            }
            MachineConfigError::ZeroCacheCapacity => {
                write!(f, "cache capacity must be at least one line")
            }
            MachineConfigError::SnoopingNeedsCaches => {
                write!(f, "snooping coherence requires caches")
            }
            MachineConfigError::SnoopingNeedsBus => {
                write!(f, "snooping coherence requires the atomic bus interconnect")
            }
            MachineConfigError::SnoopingExcludesDef2 => write!(
                f,
                "the Definition 2 implementation is directory-specific; snooping buses have no commit/globally-performed gap for reserve bits to exploit"
            ),
            MachineConfigError::SnoopingUnboundedOnly => {
                write!(f, "capacity-bounded snooping caches are not modeled")
            }
            MachineConfigError::InvalidChaosConfig => {
                write!(f, "chaos fault config is malformed (bad chance, delay without a latency bound, or drop without a retry budget)")
            }
            MachineConfigError::ZeroStallLimit => {
                write!(f, "stall limit must be at least one cycle (use None to disable the livelock watchdog)")
            }
        }
    }
}

impl Error for MachineConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MachineConfig::default().validate().is_ok());
    }

    #[test]
    fn def2_requires_caches() {
        let cfg = MachineConfig {
            caches: false,
            policy: Policy::WoDef2(Def2Config::default()),
            ..MachineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(MachineConfigError::Def2NeedsCaches));
        assert!(cfg.validate().unwrap_err().to_string().contains("reserve bits"));
    }

    #[test]
    fn structural_errors() {
        let cfg = MachineConfig { num_procs: 0, ..MachineConfig::default() };
        assert_eq!(cfg.validate(), Err(MachineConfigError::NoProcessors));
        let cfg = MachineConfig { num_modules: 0, ..MachineConfig::default() };
        assert_eq!(cfg.validate(), Err(MachineConfigError::NoModules));
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Network {
                min_latency: 9,
                max_latency: 3,
                ack_extra_delay: 0,
            },
            ..MachineConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(MachineConfigError::BadLatencyRange { min: 9, max: 3 })
        ));
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Sc.name(), "SC");
        assert_eq!(Policy::Relaxed { write_delay: 0 }.name(), "Relaxed");
        assert_eq!(Policy::WoDef1.name(), "WO-Def1");
        assert_eq!(Policy::WoDef2(Def2Config::default()).name(), "WO-Def2");
        let opt = Def2Config { read_only_sync_optimization: true, ..Default::default() };
        assert_eq!(Policy::WoDef2(opt).name(), "WO-Def2-opt");
    }
}
