//! The sweep engine's determinism contract, checked on the real PERF
//! grid: the merged report is byte-identical at any thread count, and a
//! recycled machine replays a cold run cycle-for-cycle.

use memsim::sweep::sweep;
use memsim::{presets, Machine, MachineConfig};
use wo_bench::perf_grid::PerfGrid;

/// The full PERF grid — every cell `perf_comparison` publishes — merged
/// at 1, 2, and N threads must produce byte-identical reports. The
/// 1-thread pass also recycles one machine across all 340 cells, so this
/// doubles as a grid-wide recycling check against the multi-worker runs.
#[test]
fn perf_grid_reports_are_identical_at_any_thread_count() {
    let grid = PerfGrid::full();
    let cells = grid.cells();
    let baseline = format!("{:?}", sweep(&cells, 1));
    for threads in [2, 0] {
        let report = format!("{:?}", sweep(&cells, threads));
        assert_eq!(
            baseline, report,
            "thread count {threads} changed the merged PERF-grid report"
        );
    }
}

/// `Machine::run_many` (one recycled machine) must match a fresh machine
/// per config cycle-for-cycle, across every policy class — including
/// policy changes mid-sequence, which exercise `reset`'s re-derivation of
/// every RNG stream and policy knob.
#[test]
fn run_many_matches_fresh_machines_across_policies() {
    let program = memsim::workload::drf_kernel(&memsim::workload::DrfKernelConfig {
        threads: 3,
        phases: 2,
        accesses_per_phase: 6,
        ..Default::default()
    });
    let mut configs: Vec<MachineConfig> = Vec::new();
    for policy in [
        presets::sc(),
        presets::wo_def1(),
        presets::wo_def2(),
        presets::wo_def2_optimized(),
    ] {
        for seed in 0..3 {
            configs.push(presets::network_cached(3, policy, seed));
        }
    }
    let recycled = Machine::run_many(&program, &configs);
    assert_eq!(recycled.len(), configs.len());
    for (config, warm) in configs.iter().zip(recycled) {
        let cold = Machine::run_program(&program, config);
        assert_eq!(
            format!("{cold:?}"),
            format!("{warm:?}"),
            "recycled machine diverged from a cold run (policy {:?}, seed {})",
            config.policy,
            config.seed
        );
    }
}

/// Recycling across *different programs and machine shapes* — the sweep
/// worker's actual usage — replays cold runs exactly too.
#[test]
fn recycling_across_programs_and_shapes_matches_cold_runs() {
    let grid = PerfGrid::smoke();
    let cells = grid.cells();
    for (cell, outcome) in cells.iter().zip(sweep(&cells, 1)) {
        let cold = Machine::run_program(cell.program, &cell.config);
        assert_eq!(
            format!("{cold:?}"),
            format!("{:?}", outcome.into_result()),
            "seed {} procs {}",
            cell.config.seed,
            cell.config.num_procs
        );
    }
}
