//! The shipped `.litmus` files: every file parses, and its `# expect:`
//! header matches the DRF0 classifier's verdict.

use weak_ordering::litmus::explore::ExploreConfig;
use weak_ordering::litmus::parse::parse_program;
use weak_ordering::weakord::{Drf0, ModelVerdict, SynchronizationModel};

#[test]
fn shipped_litmus_files_parse_and_match_their_expectations() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus-tests");
    let mut checked = 0;
    let mut generated = 0;
    // The hand-written corpus plus the checked-in sample of wo-fuzz
    // generator output in gen/.
    let entries = std::fs::read_dir(&dir)
        .expect("litmus-tests directory exists")
        .chain(std::fs::read_dir(dir.join("gen")).expect("litmus-tests/gen exists"));
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "litmus") {
            continue;
        }
        if path.parent().is_some_and(|p| p.ends_with("gen")) {
            generated += 1;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let expect = text
            .lines()
            .find_map(|l| l.strip_prefix("# expect: "))
            .expect("every shipped file declares an expectation")
            .trim()
            .to_string();
        let program = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if expect == "unknown" {
            checked += 1;
            continue; // spin-heavy programs: classification is budgeted out
        }
        let budget = ExploreConfig {
            max_ops_per_execution: 40,
            max_total_steps: 400_000,
            ..ExploreConfig::default()
        };
        let verdict = match Drf0.obeys(&program, &budget) {
            ModelVerdict::Obeys => "drf0",
            ModelVerdict::Violates(_) => "racy",
            ModelVerdict::Unknown => "unknown",
        };
        assert_eq!(verdict, expect, "{}", path.display());
        checked += 1;
    }
    assert!(checked >= 15, "expected the full shipped corpus, saw {checked}");
    assert!(
        generated >= 10,
        "expected the checked-in generated sample, saw {generated}"
    );
}

#[test]
fn export_is_current() {
    // The shipped files must round-trip to the in-tree corpus: re-render
    // a couple of entries and compare against disk.
    use weak_ordering::litmus::corpus;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus-tests");
    for (name, program) in [
        ("fig1_dekker", corpus::fig1_dekker()),
        ("spinlock_2x1", corpus::spinlock_bounded(2, 1, 3)),
    ] {
        let text = std::fs::read_to_string(dir.join(format!("{name}.litmus"))).unwrap();
        let parsed = parse_program(&text).unwrap();
        assert_eq!(parsed, program, "{name}.litmus is stale; re-run export_litmus");
    }
}
