//! End-to-end chaos tests: seeded fault injection across the whole
//! simulator stack.
//!
//! These exercise the contract the fault fabric must keep: perturbed
//! runs are reproducible from their seed, wedged machines abort with a
//! structured [`RunError`] carrying a usable diagnostic dump (never a
//! panic), bounded-backoff retries drain transient drop storms, and —
//! the paper's Definition 2 — DRF0 programs still appear sequentially
//! consistent no matter what the interconnect does.

use litmus::corpus;
use litmus::explore::{sc_outcomes, ExploreConfig};
use memory_model::sc::{check_sc, ScCheckConfig};
use memsim::{presets, Chance, FaultConfig, Machine, MachineConfig, RunError};

fn chaos_cfg(fault: FaultConfig, procs: usize, seed: u64) -> MachineConfig {
    MachineConfig {
        chaos: Some(fault),
        ..presets::network_cached(procs, presets::wo_def2(), seed)
    }
}

#[test]
fn fault_plans_replay_byte_identically_from_their_seed() {
    let p = corpus::spinlock_bounded(2, 2, 6);
    for fault in [
        FaultConfig::latency_heavy(),
        FaultConfig::dup_heavy(),
        FaultConfig::drop_heavy(),
    ] {
        for seed in [0, 7, 1234] {
            let cfg = chaos_cfg(fault, 2, seed);
            let a = Machine::run_program(&p, &cfg);
            let b = Machine::run_program(&p, &cfg);
            // The full run result — timestamps, outcome, stats, fault
            // counters, or the structured error — must be identical.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "seed {seed} under {fault:?} must replay exactly"
            );
        }
    }
}

#[test]
fn wedged_machine_reports_a_deadlock_with_a_diagnostic_dump() {
    // Silently vanishing messages wedge the hand-off: the consumer waits
    // on a flag whose update traffic is gone. The watchdog must say who
    // was stuck, on what, and what the fault plan had done.
    let p = corpus::message_passing_sync(2);
    let fault = FaultConfig {
        blackhole_chance: Chance::of(1, 2),
        ..FaultConfig::off()
    };
    let mut saw_abort = false;
    for seed in 0..10 {
        match Machine::run_program(&p, &chaos_cfg(fault, 2, seed)) {
            Ok(result) => assert!(result.completed || result.cycles > 0),
            Err(RunError::Deadlock { dump } | RunError::Livelock { dump }) => {
                saw_abort = true;
                assert!(!dump.procs.is_empty(), "dump lists every processor");
                assert!(
                    dump.procs.iter().any(|pr| pr.status.contains("Waiting")),
                    "someone must be visibly stuck: {dump}"
                );
                let chaos = dump.chaos.expect("fault counters ride in the dump");
                assert!(chaos.blackholed > 0, "the dump explains the loss: {chaos:?}");
                // The rendered dump is a self-contained post-mortem.
                let text = dump.to_string();
                assert!(text.contains("cycle"), "dump text: {text}");
                assert!(text.contains("queued events"), "dump text: {text}");
            }
            Err(other) => panic!("unexpected abort shape: {other}"),
        }
    }
    assert!(saw_abort, "a 1/2 blackhole rate must wedge some seed");
}

#[test]
fn retry_backoff_drains_a_nack_storm() {
    // Every third message is detectably dropped; with retries the run
    // completes anyway, and the stats show the storm was weathered.
    let p = corpus::message_passing_sync(4);
    let fault = FaultConfig {
        drop_chance: Chance::of(1, 3),
        max_retries: 16,
        backoff_base: 8,
        ..FaultConfig::off()
    };
    let r = Machine::run_program(&p, &chaos_cfg(fault, 2, 5))
        .expect("bounded backoff must converge");
    assert!(r.completed);
    let chaos = r.stats.chaos.expect("chaos stats are reported");
    assert!(chaos.retries > 0, "a 1/3 drop rate must force resends: {chaos:?}");
    assert_eq!(chaos.exhausted, 0, "no sender may give up: {chaos:?}");
    assert!(
        check_sc(&r.observation(), &p.initial_memory(), &ScCheckConfig::default())
            .is_consistent()
    );
}

#[test]
fn exhausted_retries_abort_with_the_attempt_count() {
    let p = corpus::sync_only_tas();
    let fault = FaultConfig {
        drop_chance: Chance::always(),
        max_retries: 3,
        backoff_base: 4,
        ..FaultConfig::off()
    };
    let err = Machine::run_program(&p, &chaos_cfg(fault, 2, 0)).unwrap_err();
    let RunError::RetriesExhausted { attempts, dump, .. } = err else {
        panic!("expected exhausted retries, got: {err}");
    };
    assert_eq!(attempts, 4, "1 original + 3 retries");
    assert_eq!(dump.chaos.expect("counters present").exhausted, 1);
}

#[test]
fn drf0_corpus_appears_sc_under_drop_free_chaos() {
    // Definition 2, end to end: delays, cross-pair reordering, and
    // duplicated control messages must be invisible to DRF0 software.
    // Drop-free profiles cannot wedge, so every run must also complete.
    let budget = ExploreConfig {
        max_ops_per_execution: 64,
        max_total_steps: 3_000_000,
        ..ExploreConfig::default()
    };
    for (name, program) in corpus::drf0_suite() {
        let reference = sc_outcomes(&program, &budget);
        for fault in [FaultConfig::latency_heavy(), FaultConfig::dup_heavy()] {
            for seed in 0..4 {
                let cfg = chaos_cfg(fault, program.num_threads(), seed);
                let r = Machine::run_program(&program, &cfg)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                assert!(r.completed, "{name} seed {seed} must complete");
                assert!(
                    check_sc(
                        &r.observation(),
                        &program.initial_memory(),
                        &ScCheckConfig::default()
                    )
                    .is_consistent(),
                    "{name} seed {seed} must appear SC under {fault:?}"
                );
                if reference.complete {
                    assert!(
                        reference.allows(&r.execution_result()),
                        "{name} seed {seed}: result outside the ideal SC set"
                    );
                }
            }
        }
    }
}

#[test]
fn racy_programs_may_wedge_but_never_panic_or_lie() {
    // Chaos over the racy corpus: no guarantees about outcomes, but the
    // machine must still either finish or abort with a structured error.
    for (name, program) in corpus::racy_suite() {
        let cfg = chaos_cfg(FaultConfig::drop_heavy(), program.num_threads(), 2);
        match Machine::run_program(&program, &cfg) {
            Ok(_) => {}
            Err(
                RunError::Deadlock { .. }
                | RunError::Livelock { .. }
                | RunError::RetriesExhausted { .. },
            ) => {}
            Err(other) => panic!("{name}: unexpected abort shape: {other}"),
        }
    }
}
