//! Property-based tests (proptest) over the core data structures and
//! invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use weak_ordering::memory_model::hb::HbRelation;
use weak_ordering::memory_model::race::RaceDetector;
use weak_ordering::memory_model::sc::{check_sc, ScCheckConfig, ScVerdict};
use weak_ordering::memory_model::vc::VcHb;
use weak_ordering::memory_model::{
    drf0, drf1, Execution, Loc, Memory, Observation, OpId, OpKind, Operation, ProcId,
    SyncMode,
};
use weak_ordering::simx::stats::Histogram;
use weak_ordering::simx::{EventQueue, SimTime};

/// A recipe for one operation, to be materialized against atomic memory.
#[derive(Debug, Clone, Copy)]
struct OpRecipe {
    proc: u16,
    kind: u8,
    loc: u32,
    value: u64,
}

fn recipe_strategy(procs: u16, locs: u32) -> impl Strategy<Value = OpRecipe> {
    (0..procs, 0u8..5, 0..locs, 1u64..100).prop_map(|(proc, kind, loc, value)| OpRecipe {
        proc,
        kind,
        loc,
        value,
    })
}

/// Materializes recipes into a valid idealized execution: reads return
/// what atomic memory held, RMWs read-then-write.
fn build_execution(recipes: &[OpRecipe]) -> Execution {
    let mut mem = Memory::new();
    let mut seqs = std::collections::HashMap::new();
    let mut ops = Vec::with_capacity(recipes.len());
    for r in recipes {
        let proc = ProcId(r.proc);
        let seq = seqs.entry(r.proc).or_insert(0u32);
        let id = OpId::for_thread_op(proc, *seq);
        *seq += 1;
        let loc = Loc(r.loc);
        let op = match r.kind {
            0 => Operation::data_read(id, proc, loc, mem.read(loc)),
            1 => {
                mem.write(loc, r.value);
                Operation::data_write(id, proc, loc, r.value)
            }
            2 => Operation::sync_read(id, proc, loc, mem.read(loc)),
            3 => {
                mem.write(loc, r.value);
                Operation::sync_write(id, proc, loc, r.value)
            }
            _ => {
                let old = mem.read(loc);
                mem.write(loc, old + 1);
                Operation::sync_rmw(id, proc, loc, old, old + 1)
            }
        };
        ops.push(op);
    }
    Execution::new(ops).expect("per-proc sequence numbers are unique")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two happens-before implementations agree on every pair, for
    /// arbitrary executions.
    #[test]
    fn hb_matrix_equals_vector_clocks(
        recipes in vec(recipe_strategy(4, 6), 0..40)
    ) {
        let exec = build_execution(&recipes);
        let matrix = HbRelation::from_execution(&exec);
        let vc = VcHb::from_execution(&exec);
        for a in exec.ops() {
            for b in exec.ops() {
                prop_assert_eq!(
                    matrix.happens_before(a.id, b.id),
                    vc.happens_before(a.id, b.id)
                );
            }
        }
    }

    /// hb is irreflexive and antisymmetric (a strict partial order; with
    /// transitivity given by construction).
    #[test]
    fn hb_is_a_strict_partial_order(
        recipes in vec(recipe_strategy(4, 6), 0..40)
    ) {
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        for a in exec.ops() {
            prop_assert!(!hb.happens_before(a.id, a.id));
            for b in exec.ops() {
                if hb.happens_before(a.id, b.id) {
                    prop_assert!(!hb.happens_before(b.id, a.id));
                }
            }
        }
    }

    /// hb refines execution order: an op never happens-before an earlier op.
    #[test]
    fn hb_respects_completion_order(
        recipes in vec(recipe_strategy(3, 4), 0..30)
    ) {
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        let ops = exec.ops();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[..i] {
                prop_assert!(!hb.happens_before(a.id, b.id));
            }
        }
    }

    /// The streaming detector and the pairwise check agree on race freedom.
    #[test]
    fn race_detectors_agree(
        recipes in vec(recipe_strategy(4, 4), 0..50)
    ) {
        let exec = build_execution(&recipes);
        prop_assert_eq!(
            RaceDetector::check_execution(&exec),
            drf0::is_data_race_free(&exec)
        );
    }

    /// The mode-aware streaming detector agrees with the pairwise refined
    /// check (Section 6 semantics).
    #[test]
    fn refined_race_detectors_agree(
        recipes in vec(recipe_strategy(4, 4), 0..50)
    ) {
        let exec = build_execution(&recipes);
        let mut det = RaceDetector::with_mode(4, SyncMode::ReleaseWrites);
        let mut streaming_clean = true;
        for op in exec.ops() {
            if !det.observe(op).is_empty() {
                streaming_clean = false;
            }
        }
        prop_assert_eq!(streaming_clean, drf1::is_refined_race_free(&exec));
    }

    /// Matrix and vector-clock happens-before agree under ReleaseWrites
    /// mode too.
    #[test]
    fn hb_modes_agree_between_matrix_and_vc(
        recipes in vec(recipe_strategy(4, 5), 0..40)
    ) {
        use weak_ordering::memory_model::vc::VcHb;
        let exec = build_execution(&recipes);
        let matrix = HbRelation::with_mode(&exec, SyncMode::ReleaseWrites);
        let vc = VcHb::with_mode(&exec, SyncMode::ReleaseWrites);
        for a in exec.ops() {
            for b in exec.ops() {
                prop_assert_eq!(
                    matrix.happens_before(a.id, b.id),
                    vc.happens_before(a.id, b.id)
                );
            }
        }
    }

    /// Refined happens-before is a subset of DRF0 happens-before, so DRF0
    /// races are a subset of refined races.
    #[test]
    fn refined_hb_is_a_subset_of_drf0_hb(
        recipes in vec(recipe_strategy(4, 4), 0..40)
    ) {
        let exec = build_execution(&recipes);
        let full = HbRelation::with_mode(&exec, SyncMode::Drf0);
        let refined = HbRelation::with_mode(&exec, SyncMode::ReleaseWrites);
        for a in exec.ops() {
            for b in exec.ops() {
                if refined.happens_before(a.id, b.id) {
                    prop_assert!(full.happens_before(a.id, b.id));
                }
            }
        }
        let drf0_races: std::collections::HashSet<_> =
            drf0::races_in(&exec).into_iter().collect();
        let refined_races: std::collections::HashSet<_> =
            drf1::refined_races_in(&exec).into_iter().collect();
        prop_assert!(drf0_races.is_subset(&refined_races));
    }

    /// Generated executions satisfy atomic semantics by construction, and
    /// the validator accepts them.
    #[test]
    fn generated_executions_are_atomic(
        recipes in vec(recipe_strategy(4, 6), 0..50)
    ) {
        let exec = build_execution(&recipes);
        prop_assert!(exec.validate_atomic_semantics(&Memory::new()).is_ok());
    }

    /// Any observation projected from an idealized execution appears
    /// sequentially consistent — the SC checker must find the witness.
    #[test]
    fn observations_of_atomic_executions_are_sc(
        recipes in vec(recipe_strategy(3, 4), 0..16)
    ) {
        let exec = build_execution(&recipes);
        let obs = Observation::from_execution(&exec);
        let verdict = check_sc(&obs, &Memory::new(), &ScCheckConfig::default());
        prop_assert!(matches!(verdict, ScVerdict::Consistent(_)));
    }

    /// Race-free random executions satisfy Lemma 1's read-value condition.
    #[test]
    fn race_free_executions_satisfy_lemma1(
        recipes in vec(recipe_strategy(3, 4), 0..30)
    ) {
        use weak_ordering::memory_model::lemma1::reads_see_last_hb_write;
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        if drf0::races_with(&exec, &hb).is_empty() {
            prop_assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
        }
    }

    /// EventQueue delivers in (time, insertion) order for arbitrary
    /// schedules.
    #[test]
    fn event_queue_orders_any_schedule(times in vec(0u64..1000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li));
            }
            last = Some((t, i));
        }
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(samples in vec(0u64..10_000, 1..200)) {
        let h: Histogram = samples.iter().copied().collect();
        let quantiles: Vec<u64> = (0..=10)
            .map(|i| h.quantile(f64::from(i) / 10.0).unwrap())
            .collect();
        for w in quantiles.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(quantiles[0], h.min().unwrap());
        prop_assert_eq!(quantiles[10], h.max().unwrap());
    }

    /// Memory read-your-writes.
    #[test]
    fn memory_reads_last_write(
        writes in vec((0u32..8, 0u64..100), 0..50)
    ) {
        let mut mem = Memory::new();
        let mut shadow = std::collections::HashMap::new();
        for &(loc, v) in &writes {
            mem.write(Loc(loc), v);
            shadow.insert(loc, v);
        }
        for loc in 0u32..8 {
            prop_assert_eq!(mem.read(Loc(loc)), shadow.get(&loc).copied().unwrap_or(0));
        }
    }

    /// OpKind invariants: sync-ness and read/write components are
    /// consistent with conflicts.
    #[test]
    fn conflict_is_symmetric(
        recipes in vec(recipe_strategy(3, 3), 2..20)
    ) {
        let exec = build_execution(&recipes);
        let ops = exec.ops();
        for a in ops {
            for b in ops {
                prop_assert_eq!(a.conflicts_with(b), b.conflicts_with(a));
                if a.conflicts_with(b) {
                    prop_assert_eq!(a.loc, b.loc);
                    prop_assert!(a.kind.is_write() || b.kind.is_write());
                }
            }
        }
    }

    /// OpId round-trips through its (proc, seq) encoding.
    #[test]
    fn opid_encoding_round_trips(proc in 0u16..1000, seq in 0u32..1_000_000) {
        let id = OpId::for_thread_op(ProcId(proc), seq);
        prop_assert_eq!(id.proc_part(), ProcId(proc));
        prop_assert_eq!(id.seq_part(), seq);
    }

    /// Sync ops on one location are always hb-ordered (so is total per
    /// location) — no pair may be concurrent.
    #[test]
    fn sync_ops_on_same_location_are_totally_ordered(
        recipes in vec(recipe_strategy(4, 3), 0..30)
    ) {
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        let ops = exec.ops();
        for a in ops {
            for b in ops {
                if a.id != b.id && a.so_related(b) {
                    prop_assert!(hb.ordered(a.id, b.id), "{} vs {}", a.id, b.id);
                }
            }
        }
    }

    /// A race implies the execution has two ops with kinds that make a
    /// conflict; removing all races (by checking only read-only recipes)
    /// yields race freedom.
    #[test]
    fn all_reads_never_race(
        mut recipes in vec(recipe_strategy(4, 4), 0..30)
    ) {
        for r in &mut recipes {
            r.kind = 0; // force every op to be a data read
        }
        let exec = build_execution(&recipes);
        prop_assert!(drf0::is_data_race_free(&exec));
        prop_assert!(exec.ops().iter().all(|o| o.kind == OpKind::DataRead));
    }
}
