//! Seeded randomized property tests over the core data structures and
//! invariants.
//!
//! These used to run under `proptest`; they now draw their cases from the
//! in-repo [`simx::rng`] generators so the tier-1 suite builds with no
//! registry access and every failure is reproducible from the printed
//! iteration seed.

use weak_ordering::memory_model::hb::HbRelation;
use weak_ordering::memory_model::race::RaceDetector;
use weak_ordering::memory_model::sc::{check_sc, ScCheckConfig, ScVerdict};
use weak_ordering::memory_model::vc::VcHb;
use weak_ordering::memory_model::{
    drf0, drf1, Execution, Loc, Memory, Observation, OpId, OpKind, Operation, ProcId,
    SyncMode,
};
use weak_ordering::simx::rng::Xoshiro256;
use weak_ordering::simx::stats::Histogram;
use weak_ordering::simx::{EventQueue, SimTime};

/// Cases per property: comparable coverage to the old
/// `ProptestConfig::with_cases(64)`.
const CASES: u64 = 64;

/// A recipe for one operation, to be materialized against atomic memory.
#[derive(Debug, Clone, Copy)]
struct OpRecipe {
    proc: u16,
    kind: u8,
    loc: u32,
    value: u64,
}

/// Draws `0..max_len` random recipes, mirroring the old
/// `vec(recipe_strategy(procs, locs), 0..max_len)` strategy.
fn random_recipes(rng: &mut Xoshiro256, procs: u16, locs: u32, max_len: usize) -> Vec<OpRecipe> {
    let len = rng.index(max_len);
    (0..len)
        .map(|_| OpRecipe {
            proc: rng.range_u64(0, u64::from(procs)) as u16,
            kind: rng.range_u64(0, 5) as u8,
            loc: rng.range_u64(0, u64::from(locs)) as u32,
            value: rng.range_u64(1, 100),
        })
        .collect()
}

/// Runs `CASES` iterations of a property, each with a fresh seeded RNG, and
/// names the failing seed so a failure replays exactly.
fn for_each_case(name: &str, mut property: impl FnMut(&mut Xoshiro256)) {
    for case in 0..CASES {
        // Derive a distinct, stable stream per (property, case).
        let seed = 0x9E37_79B9 ^ (case << 8) ^ name.len() as u64;
        let mut rng = Xoshiro256::seed_from(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        assert!(
            result.is_ok(),
            "property {name} failed on case {case} (rng seed {seed})"
        );
    }
}

/// Materializes recipes into a valid idealized execution: reads return
/// what atomic memory held, RMWs read-then-write.
fn build_execution(recipes: &[OpRecipe]) -> Execution {
    let mut mem = Memory::new();
    let mut seqs = std::collections::HashMap::new();
    let mut ops = Vec::with_capacity(recipes.len());
    for r in recipes {
        let proc = ProcId(r.proc);
        let seq = seqs.entry(r.proc).or_insert(0u32);
        let id = OpId::for_thread_op(proc, *seq);
        *seq += 1;
        let loc = Loc(r.loc);
        let op = match r.kind {
            0 => Operation::data_read(id, proc, loc, mem.read(loc)),
            1 => {
                mem.write(loc, r.value);
                Operation::data_write(id, proc, loc, r.value)
            }
            2 => Operation::sync_read(id, proc, loc, mem.read(loc)),
            3 => {
                mem.write(loc, r.value);
                Operation::sync_write(id, proc, loc, r.value)
            }
            _ => {
                let old = mem.read(loc);
                mem.write(loc, old + 1);
                Operation::sync_rmw(id, proc, loc, old, old + 1)
            }
        };
        ops.push(op);
    }
    Execution::new(ops).expect("per-proc sequence numbers are unique")
}

/// The two happens-before implementations agree on every pair, for
/// arbitrary executions.
#[test]
fn hb_matrix_equals_vector_clocks() {
    for_each_case("hb_matrix_equals_vector_clocks", |rng| {
        let recipes = random_recipes(rng, 4, 6, 40);
        let exec = build_execution(&recipes);
        let matrix = HbRelation::from_execution(&exec);
        let vc = VcHb::from_execution(&exec);
        for a in exec.ops() {
            for b in exec.ops() {
                assert_eq!(
                    matrix.happens_before(a.id, b.id),
                    vc.happens_before(a.id, b.id)
                );
            }
        }
    });
}

/// hb is irreflexive and antisymmetric (a strict partial order; with
/// transitivity given by construction).
#[test]
fn hb_is_a_strict_partial_order() {
    for_each_case("hb_is_a_strict_partial_order", |rng| {
        let recipes = random_recipes(rng, 4, 6, 40);
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        for a in exec.ops() {
            assert!(!hb.happens_before(a.id, a.id));
            for b in exec.ops() {
                if hb.happens_before(a.id, b.id) {
                    assert!(!hb.happens_before(b.id, a.id));
                }
            }
        }
    });
}

/// hb refines execution order: an op never happens-before an earlier op.
#[test]
fn hb_respects_completion_order() {
    for_each_case("hb_respects_completion_order", |rng| {
        let recipes = random_recipes(rng, 3, 4, 30);
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        let ops = exec.ops();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[..i] {
                assert!(!hb.happens_before(a.id, b.id));
            }
        }
    });
}

/// The streaming detector and the pairwise check agree on race freedom.
#[test]
fn race_detectors_agree() {
    for_each_case("race_detectors_agree", |rng| {
        let recipes = random_recipes(rng, 4, 4, 50);
        let exec = build_execution(&recipes);
        assert_eq!(
            RaceDetector::check_execution(&exec),
            drf0::is_data_race_free(&exec)
        );
    });
}

/// The mode-aware streaming detector agrees with the pairwise refined
/// check (Section 6 semantics).
#[test]
fn refined_race_detectors_agree() {
    for_each_case("refined_race_detectors_agree", |rng| {
        let recipes = random_recipes(rng, 4, 4, 50);
        let exec = build_execution(&recipes);
        let mut det = RaceDetector::with_mode(4, SyncMode::ReleaseWrites);
        let mut streaming_clean = true;
        for op in exec.ops() {
            if !det.observe(op).is_empty() {
                streaming_clean = false;
            }
        }
        assert_eq!(streaming_clean, drf1::is_refined_race_free(&exec));
    });
}

/// Matrix and vector-clock happens-before agree under ReleaseWrites
/// mode too.
#[test]
fn hb_modes_agree_between_matrix_and_vc() {
    for_each_case("hb_modes_agree_between_matrix_and_vc", |rng| {
        let recipes = random_recipes(rng, 4, 5, 40);
        let exec = build_execution(&recipes);
        let matrix = HbRelation::with_mode(&exec, SyncMode::ReleaseWrites);
        let vc = VcHb::with_mode(&exec, SyncMode::ReleaseWrites);
        for a in exec.ops() {
            for b in exec.ops() {
                assert_eq!(
                    matrix.happens_before(a.id, b.id),
                    vc.happens_before(a.id, b.id)
                );
            }
        }
    });
}

/// Refined happens-before is a subset of DRF0 happens-before, so DRF0
/// races are a subset of refined races.
#[test]
fn refined_hb_is_a_subset_of_drf0_hb() {
    for_each_case("refined_hb_is_a_subset_of_drf0_hb", |rng| {
        let recipes = random_recipes(rng, 4, 4, 40);
        let exec = build_execution(&recipes);
        let full = HbRelation::with_mode(&exec, SyncMode::Drf0);
        let refined = HbRelation::with_mode(&exec, SyncMode::ReleaseWrites);
        for a in exec.ops() {
            for b in exec.ops() {
                if refined.happens_before(a.id, b.id) {
                    assert!(full.happens_before(a.id, b.id));
                }
            }
        }
        let drf0_races: std::collections::HashSet<_> =
            drf0::races_in(&exec).into_iter().collect();
        let refined_races: std::collections::HashSet<_> =
            drf1::refined_races_in(&exec).into_iter().collect();
        assert!(drf0_races.is_subset(&refined_races));
    });
}

/// Generated executions satisfy atomic semantics by construction, and
/// the validator accepts them.
#[test]
fn generated_executions_are_atomic() {
    for_each_case("generated_executions_are_atomic", |rng| {
        let recipes = random_recipes(rng, 4, 6, 50);
        let exec = build_execution(&recipes);
        assert!(exec.validate_atomic_semantics(&Memory::new()).is_ok());
    });
}

/// Any observation projected from an idealized execution appears
/// sequentially consistent — the SC checker must find the witness.
#[test]
fn observations_of_atomic_executions_are_sc() {
    for_each_case("observations_of_atomic_executions_are_sc", |rng| {
        let recipes = random_recipes(rng, 3, 4, 16);
        let exec = build_execution(&recipes);
        let obs = Observation::from_execution(&exec);
        let verdict = check_sc(&obs, &Memory::new(), &ScCheckConfig::default());
        assert!(matches!(verdict, ScVerdict::Consistent(_)));
    });
}

/// Race-free random executions satisfy Lemma 1's read-value condition.
#[test]
fn race_free_executions_satisfy_lemma1() {
    for_each_case("race_free_executions_satisfy_lemma1", |rng| {
        use weak_ordering::memory_model::lemma1::reads_see_last_hb_write;
        let recipes = random_recipes(rng, 3, 4, 30);
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        if drf0::races_with(&exec, &hb).is_empty() {
            assert!(reads_see_last_hb_write(&exec, &hb, &Memory::new()).is_ok());
        }
    });
}

/// EventQueue delivers in (time, insertion) order for arbitrary
/// schedules.
#[test]
fn event_queue_orders_any_schedule() {
    for_each_case("event_queue_orders_any_schedule", |rng| {
        let len = rng.index(100);
        let times: Vec<u64> = (0..len).map(|_| rng.range_u64(0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li));
            }
            last = Some((t, i));
        }
    });
}

/// Histogram quantiles are monotone in q and bounded by min/max.
#[test]
fn histogram_quantiles_are_monotone() {
    for_each_case("histogram_quantiles_are_monotone", |rng| {
        let len = 1 + rng.index(199);
        let samples: Vec<u64> = (0..len).map(|_| rng.range_u64(0, 10_000)).collect();
        let h: Histogram = samples.iter().copied().collect();
        let quantiles: Vec<u64> = (0..=10)
            .map(|i| h.quantile(f64::from(i) / 10.0).unwrap())
            .collect();
        for w in quantiles.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(quantiles[0], h.min().unwrap());
        assert_eq!(quantiles[10], h.max().unwrap());
    });
}

/// Memory read-your-writes.
#[test]
fn memory_reads_last_write() {
    for_each_case("memory_reads_last_write", |rng| {
        let len = rng.index(50);
        let writes: Vec<(u32, u64)> = (0..len)
            .map(|_| (rng.range_u64(0, 8) as u32, rng.range_u64(0, 100)))
            .collect();
        let mut mem = Memory::new();
        let mut shadow = std::collections::HashMap::new();
        for &(loc, v) in &writes {
            mem.write(Loc(loc), v);
            shadow.insert(loc, v);
        }
        for loc in 0u32..8 {
            assert_eq!(mem.read(Loc(loc)), shadow.get(&loc).copied().unwrap_or(0));
        }
    });
}

/// OpKind invariants: sync-ness and read/write components are
/// consistent with conflicts.
#[test]
fn conflict_is_symmetric() {
    for_each_case("conflict_is_symmetric", |rng| {
        let mut recipes = random_recipes(rng, 3, 3, 20);
        if recipes.len() < 2 {
            recipes = random_recipes(rng, 3, 3, 20);
        }
        let exec = build_execution(&recipes);
        let ops = exec.ops();
        for a in ops {
            for b in ops {
                assert_eq!(a.conflicts_with(b), b.conflicts_with(a));
                if a.conflicts_with(b) {
                    assert_eq!(a.loc, b.loc);
                    assert!(a.kind.is_write() || b.kind.is_write());
                }
            }
        }
    });
}

/// OpId round-trips through its (proc, seq) encoding.
#[test]
fn opid_encoding_round_trips() {
    for_each_case("opid_encoding_round_trips", |rng| {
        let proc = rng.range_u64(0, 1000) as u16;
        let seq = rng.range_u64(0, 1_000_000) as u32;
        let id = OpId::for_thread_op(ProcId(proc), seq);
        assert_eq!(id.proc_part(), ProcId(proc));
        assert_eq!(id.seq_part(), seq);
    });
}

/// Sync ops on one location are always hb-ordered (so is total per
/// location) — no pair may be concurrent.
#[test]
fn sync_ops_on_same_location_are_totally_ordered() {
    for_each_case("sync_ops_on_same_location_are_totally_ordered", |rng| {
        let recipes = random_recipes(rng, 4, 3, 30);
        let exec = build_execution(&recipes);
        let hb = HbRelation::from_execution(&exec);
        let ops = exec.ops();
        for a in ops {
            for b in ops {
                if a.id != b.id && a.so_related(b) {
                    assert!(hb.ordered(a.id, b.id), "{} vs {}", a.id, b.id);
                }
            }
        }
    });
}

/// A race implies the execution has two ops with kinds that make a
/// conflict; removing all races (by checking only read-only recipes)
/// yields race freedom.
#[test]
fn all_reads_never_race() {
    for_each_case("all_reads_never_race", |rng| {
        let mut recipes = random_recipes(rng, 4, 4, 30);
        for r in &mut recipes {
            r.kind = 0; // force every op to be a data read
        }
        let exec = build_execution(&recipes);
        assert!(drf0::is_data_race_free(&exec));
        assert!(exec.ops().iter().all(|o| o.kind == OpKind::DataRead));
    });
}
