//! End-to-end contract tests: the full pipeline from programs through the
//! synchronization-model check, the hardware simulators, and the
//! sequential-consistency verdict.

use weak_ordering::litmus::corpus;
use weak_ordering::litmus::explore::ExploreConfig;
use weak_ordering::memsim::presets;
use weak_ordering::weakord::{verify, Drf0, ModelVerdict, SynchronizationModel};

fn budget() -> ExploreConfig {
    ExploreConfig { max_ops_per_execution: 48, ..ExploreConfig::default() }
}

#[test]
fn drf0_suite_obeys_and_racy_suite_violates() {
    for (name, p) in corpus::drf0_suite() {
        assert_eq!(Drf0.obeys(&p, &budget()), ModelVerdict::Obeys, "{name}");
    }
    for (name, p) in corpus::racy_suite() {
        assert!(Drf0.obeys(&p, &budget()).is_violation(), "{name}");
    }
}

#[test]
fn every_hardware_model_honors_definition_2_on_the_drf0_suite() {
    let seeds = [0u64, 3, 9];
    for (prog_name, program) in corpus::drf0_suite() {
        for (policy_name, policy) in presets::all_policies() {
            let base = presets::network_cached(program.num_threads(), policy, 0);
            let report = verify::check_appears_sc(&program, &base, &seeds);
            assert!(
                report.all_sc(),
                "{prog_name} on {policy_name}: {:?}",
                report.violating_seeds()
            );
        }
    }
}

#[test]
fn definition_2_holds_on_bus_machines_too() {
    let seeds = [1u64, 5];
    for (prog_name, program) in corpus::drf0_suite() {
        for (policy_name, policy) in presets::all_policies() {
            let base = presets::bus_cached(program.num_threads(), policy, 0);
            let report = verify::check_appears_sc(&program, &base, &seeds);
            assert!(report.all_sc(), "{prog_name} on bus/{policy_name}");
        }
    }
}

#[test]
fn def1_hardware_is_weakly_ordered_by_definition_2() {
    // The Section 6 claim, as an integration test on a larger workload.
    let program = corpus::spinlock(3, 2);
    let base = presets::network_cached(3, presets::wo_def1(), 0);
    let report = verify::check_appears_sc(&program, &base, &[0, 1, 2, 3, 4]);
    assert!(report.all_sc());
}

#[test]
fn relaxed_hardware_is_not_weakly_ordered_wrt_nothing() {
    // Racy Dekker on a write-buffer machine: Definition 2 with respect to
    // DRF0 doesn't constrain it (the program is racy), but against the
    // *empty* synchronization model (all programs) the machine fails —
    // i.e. it is not sequentially consistent hardware.
    let program = corpus::fig1_dekker();
    let base = weak_ordering::memsim::MachineConfig {
        interconnect: weak_ordering::memsim::InterconnectConfig::Bus { latency: 4 },
        ..presets::bus_no_cache(2, weak_ordering::memsim::Policy::Relaxed { write_delay: 40 }, 0)
    };
    let report = verify::check_appears_sc(&program, &base, &[0, 1, 2]);
    assert!(!report.all_sc());
}

#[test]
fn sc_hardware_appears_sc_even_to_racy_programs() {
    // Stronger than the contract requires: strict SC hardware appears
    // sequentially consistent to everything.
    let seeds = [0u64, 7, 13];
    for (name, program) in corpus::racy_suite() {
        let base = presets::network_cached(program.num_threads(), presets::sc(), 0);
        let report = verify::check_appears_sc(&program, &base, &seeds);
        assert!(report.all_sc(), "{name}");
    }
}

#[test]
fn async_algorithm_still_terminates_with_reasonable_result_on_weak_hardware() {
    // Section 3: "we expect it will be straightforward to implement weakly
    // ordered hardware to obtain reasonable results for asynchronous
    // algorithms". The relaxation kernel is racy, yet the run completes
    // and the shared cell holds one of the written values.
    let program = corpus::async_relaxation(3, 2);
    let base = presets::network_cached(3, presets::wo_def2(), 3);
    let result = weak_ordering::memsim::Machine::run_program(&program, &base).unwrap();
    assert!(result.completed);
    let x = result
        .outcome
        .final_memory
        .iter()
        .find(|(l, _)| *l == corpus::LOC_X)
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert!(x > 0, "some relaxation step landed");
}
