//! Simulator-wide invariants, exercised across machine classes, policies
//! and workloads: timestamp coherence, Section 5.1 condition audits,
//! deadlock freedom, and mutual-exclusion preservation.

use weak_ordering::litmus::corpus;
use weak_ordering::memsim::workload::{drf_kernel, DrfKernelConfig};
use weak_ordering::memsim::{
    presets, InterconnectConfig, Machine, MachineConfig, Policy, StallReason,
};
use weak_ordering::weakord::conditions;

fn all_machines(procs: usize) -> Vec<(String, MachineConfig)> {
    let mut configs = Vec::new();
    for (class, base) in presets::fig1_classes(procs, presets::sc(), 0) {
        for (policy_name, policy) in presets::all_policies() {
            if matches!(policy, Policy::WoDef2(_)) && !base.caches {
                continue; // Def2 needs caches
            }
            configs.push((
                format!("{class}/{policy_name}"),
                MachineConfig { policy, ..base },
            ));
        }
    }
    configs
}

#[test]
fn timestamps_are_coherent_everywhere() {
    let program = corpus::spinlock(2, 2);
    for (name, base) in all_machines(2) {
        for seed in [0u64, 9] {
            let cfg = MachineConfig { seed, ..base };
            let r = Machine::run_program(&program, &cfg).unwrap();
            assert!(r.completed, "{name} seed {seed} hit the watchdog");
            for rec in &r.records {
                assert!(rec.issue <= rec.commit, "{name}: {rec:?}");
                assert!(rec.commit <= rec.globally_performed, "{name}: {rec:?}");
            }
        }
    }
}

#[test]
fn mutual_exclusion_is_never_lost() {
    // The lock-protected counter must equal threads × increments on every
    // machine/policy combination — a simulator that loses updates would be
    // violating the coherence protocol or the sync semantics.
    for procs in [2usize, 3] {
        let increments = 2u64;
        let program = corpus::spinlock(procs, increments);
        for (name, base) in all_machines(procs) {
            let r = Machine::run_program(&program, &base).unwrap();
            assert!(r.completed, "{name}");
            let counter = r
                .outcome
                .final_memory
                .iter()
                .find(|(l, _)| *l == corpus::LOC_X)
                .map_or(0, |&(_, v)| v);
            assert_eq!(
                counter,
                procs as u64 * increments,
                "{name}: lost updates under the lock"
            );
        }
    }
}

#[test]
fn section_5_1_conditions_hold_for_sc_def1_def2() {
    // The conditions are *sufficient* for weak ordering w.r.t. DRF0;
    // SC, Def1 and Def2 machines should all satisfy them (SC trivially,
    // Def1 because it is strictly stronger, Def2 by design).
    let workloads: Vec<(&str, litmus::Program)> = vec![
        ("spinlock", corpus::spinlock(3, 2)),
        ("barrier", corpus::barrier(3)),
        ("tts", corpus::tts_spinlock(3, 1)),
        ("mp_sync", {
            // Three-processor variant so thread counts line up.
            corpus::message_passing_sync(4)
        }),
    ];
    for (wname, program) in &workloads {
        let procs = program.num_threads();
        for (pname, policy) in [
            ("SC", presets::sc()),
            ("Def1", presets::wo_def1()),
            ("Def2", presets::wo_def2()),
            ("Def2opt", presets::wo_def2_optimized()),
        ] {
            for seed in 0..3 {
                let cfg = presets::network_cached(procs, policy, seed);
                let r = Machine::run_program(program, &cfg).unwrap();
                assert!(r.completed);
                let violations = conditions::check_all(&r, &program.initial_memory());
                assert!(
                    violations.is_empty(),
                    "{wname} on {pname} seed {seed}: {violations:?}"
                );
            }
        }
    }
}

#[test]
fn no_deadlock_under_heavy_contention() {
    // The paper argues the Section 5.3 implementation cannot deadlock:
    // blocked processors always unblock because writes are always
    // eventually globally performed. Hammer one lock with 8 processors
    // and slow acks.
    let program = corpus::spinlock(8, 2);
    for seed in 0..4 {
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Network {
                min_latency: 4,
                max_latency: 32,
                ack_extra_delay: 150,
            },
            max_cycles: 5_000_000,
            ..presets::network_cached(8, presets::wo_def2(), seed)
        };
        let r = Machine::run_program(&program, &cfg).unwrap();
        assert!(r.completed, "seed {seed}: potential deadlock/livelock");
    }
}

#[test]
fn bounded_miss_window_still_completes_and_stays_correct() {
    // Section 5.3's "limited number of cache misses while a line is
    // reserved" option.
    let program = corpus::spinlock(3, 2);
    for max in [0u32, 1, 4] {
        let policy = Policy::WoDef2(weak_ordering::memsim::Def2Config {
            read_only_sync_optimization: false,
            max_misses_while_reserved: Some(max),
            ..Default::default()
        });
        let cfg = presets::network_cached(3, policy, 2);
        let r = Machine::run_program(&program, &cfg).unwrap();
        assert!(r.completed, "max={max}");
        let counter = r
            .outcome
            .final_memory
            .iter()
            .find(|(l, _)| *l == corpus::LOC_X)
            .map_or(0, |&(_, v)| v);
        assert_eq!(counter, 6, "max={max}");
        // The budget may actually bite (stall time recorded) without
        // breaking anything.
        let _budget_stalls: u64 = r
            .stats
            .procs
            .iter()
            .map(|p| p.stall(StallReason::ReservedMissBudget))
            .sum();
    }
}

#[test]
fn kernels_scale_without_watchdog_on_all_policies() {
    let kernel = drf_kernel(&DrfKernelConfig {
        threads: 6,
        phases: 3,
        accesses_per_phase: 12,
        ..Default::default()
    });
    for (name, policy) in presets::all_policies() {
        let cfg = presets::network_cached(6, policy, 1);
        let r = Machine::run_program(&kernel, &cfg).unwrap();
        assert!(r.completed, "{name}");
        let counter = r
            .outcome
            .final_memory
            .iter()
            .find(|(l, _)| *l == weak_ordering::memsim::workload::KERNEL_SHARED)
            .map_or(0, |&(_, v)| v);
        assert_eq!(counter, 18, "{name}: 6 threads x 3 phases");
    }
}

#[test]
fn def2_outperforms_def1_when_acks_are_slow() {
    // The headline quantitative claim, as a regression test.
    let kernel = drf_kernel(&DrfKernelConfig {
        threads: 4,
        phases: 3,
        accesses_per_phase: 12,
        ..Default::default()
    });
    let slow = InterconnectConfig::Network {
        min_latency: 8,
        max_latency: 24,
        ack_extra_delay: 200,
    };
    let mut def1_total = 0u64;
    let mut def2_total = 0u64;
    for seed in 0..3 {
        let d1 = MachineConfig {
            interconnect: slow,
            ..presets::network_cached(4, presets::wo_def1(), seed)
        };
        let d2 = MachineConfig {
            interconnect: slow,
            ..presets::network_cached(4, presets::wo_def2(), seed)
        };
        def1_total += Machine::run_program(&kernel, &d1).unwrap().cycles;
        def2_total += Machine::run_program(&kernel, &d2).unwrap().cycles;
    }
    assert!(
        def2_total < def1_total,
        "Def2 ({def2_total}) should beat Def1 ({def1_total}) with slow acks"
    );
}

#[test]
fn observation_reflects_program_order() {
    let program = corpus::fig3_handoff_bounded(2, 3);
    let cfg = presets::network_cached(2, presets::wo_def2(), 1);
    let r = Machine::run_program(&program, &cfg).unwrap();
    let obs = r.observation();
    for thread in obs.threads() {
        for pair in thread.ops.windows(2) {
            assert!(
                pair[0].id.seq_part() < pair[1].id.seq_part(),
                "observation must list ops in program order"
            );
        }
    }
}
