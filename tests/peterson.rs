//! Peterson's algorithm across the machine models: the canonical victim
//! of weak ordering.
//!
//! Peterson's mutual exclusion is *correct under sequential consistency*
//! but relies on racy flag/turn accesses, so DRF0 offers it nothing: on
//! weakly ordered or write-buffered hardware both threads can enter the
//! critical section. Rewriting the flags as synchronization operations
//! restores it everywhere — the paper's whole program(me) in one test
//! file.

use weak_ordering::litmus::corpus;
use weak_ordering::memory_model::Loc;
use weak_ordering::memsim::{presets, InterconnectConfig, Machine, MachineConfig, Policy};

fn violated(r: &weak_ordering::memsim::RunResult) -> bool {
    r.outcome
        .final_memory
        .iter()
        .any(|&(l, v)| (l == Loc(20) || l == Loc(21)) && v == 1)
}

#[test]
fn peterson_data_holds_on_sc_hardware() {
    let p = corpus::peterson_data();
    for (class, cfg) in presets::fig1_classes(2, presets::sc(), 0) {
        for seed in 0..10 {
            let cfg = MachineConfig { seed, ..cfg };
            let r = Machine::run_program(&p, &cfg).unwrap();
            assert!(r.completed, "{class} seed {seed}");
            assert!(!violated(&r), "{class} seed {seed}: SC must preserve Peterson");
        }
    }
}

#[test]
fn peterson_data_breaks_under_write_buffers() {
    // The flag writes sit in the write buffer while each thread reads the
    // other's flag as 0: both enter.
    let p = corpus::peterson_data();
    let base = MachineConfig {
        interconnect: InterconnectConfig::Bus { latency: 4 },
        ..presets::bus_no_cache(2, Policy::Relaxed { write_delay: 40 }, 0)
    };
    let mut broken = false;
    for seed in 0..10 {
        let cfg = MachineConfig { seed, ..base };
        let r = Machine::run_program(&p, &cfg).unwrap();
        assert!(r.completed);
        if violated(&r) {
            broken = true;
            break;
        }
    }
    assert!(broken, "write buffers should defeat data-access Peterson");
}

#[test]
fn peterson_sync_holds_on_every_weak_machine() {
    // With the flags/turn as synchronization operations the algorithm is
    // ordered by so edges; every weakly ordered model preserves it.
    let p = corpus::peterson_sync();
    for (name, policy) in presets::all_policies() {
        for seed in 0..8 {
            let cfg = MachineConfig {
                interconnect: InterconnectConfig::Network {
                    min_latency: 2,
                    max_latency: 40,
                    ack_extra_delay: 100,
                },
                seed,
                ..presets::network_cached(2, policy, 0)
            };
            let r = Machine::run_program(&p, &cfg).unwrap();
            assert!(r.completed, "{name} seed {seed}");
            assert!(!violated(&r), "{name} seed {seed}: sync Peterson must hold");
        }
    }
}

#[test]
fn peterson_data_can_break_even_on_def2_hardware() {
    // DRF0 promises nothing to racy programs: the Definition 2 machine may
    // break data-access Peterson too (commit-before-globally-performed
    // lets each thread read the other's stale flag).
    let p = corpus::peterson_data();
    let mut broken = false;
    for seed in 0..40 {
        let cfg = MachineConfig {
            interconnect: InterconnectConfig::Network {
                min_latency: 2,
                max_latency: 60,
                ack_extra_delay: 200,
            },
            seed,
            ..presets::network_cached(2, presets::wo_def2(), 0)
        };
        let r = Machine::run_program(&p, &cfg).unwrap();
        if r.completed && violated(&r) {
            broken = true;
            break;
        }
    }
    assert!(broken, "some seed should defeat racy Peterson on WO-Def2");
}
