//! The litmus matrix: classic memory-model shapes across every machine
//! class and policy, documenting exactly which relaxed behaviors each
//! hardware model can exhibit.

use std::collections::HashSet;

use weak_ordering::litmus::corpus;
use weak_ordering::litmus::Program;
use weak_ordering::memsim::{presets, InterconnectConfig, Machine, MachineConfig, Policy};

/// Runs `program` across many seeds on `base`, collecting
/// (P0.r0, P1.r0, final x, final y) tuples.
fn observe(program: &Program, base: &MachineConfig, seeds: u64) -> HashSet<(u64, u64, u64, u64)> {
    let mut seen = HashSet::new();
    for seed in 0..seeds {
        let cfg = MachineConfig { seed, ..*base };
        let r = Machine::run_program(program, &cfg).unwrap();
        assert!(r.completed);
        let get = |loc| {
            r.outcome
                .final_memory
                .iter()
                .find(|(l, _)| *l == loc)
                .map_or(0, |&(_, v)| v)
        };
        seen.insert((
            r.outcome.regs[0][0],
            r.outcome.regs[1][0],
            get(corpus::LOC_X),
            get(corpus::LOC_Y),
        ));
    }
    seen
}

fn relaxed_bus() -> MachineConfig {
    MachineConfig {
        interconnect: InterconnectConfig::Bus { latency: 4 },
        ..presets::bus_no_cache(2, Policy::Relaxed { write_delay: 40 }, 0)
    }
}

fn relaxed_net_cached() -> MachineConfig {
    MachineConfig {
        interconnect: InterconnectConfig::Network {
            min_latency: 2,
            max_latency: 60,
            ack_extra_delay: 0,
        },
        ..presets::network_cached(2, Policy::Relaxed { write_delay: 0 }, 0)
    }
}

#[test]
fn store_buffering_is_observable_only_on_relaxed_machines() {
    let p = corpus::fig1_dekker();
    // Relaxed bus machine: (0,0) observable.
    assert!(observe(&p, &relaxed_bus(), 10).iter().any(|&(a, b, _, _)| a == 0 && b == 0));
    // SC machines: never.
    for (_, cfg) in presets::fig1_classes(2, presets::sc(), 0) {
        assert!(
            !observe(&p, &cfg, 10).iter().any(|&(a, b, _, _)| a == 0 && b == 0),
            "SC machine showed the forbidden Dekker outcome"
        );
    }
}

#[test]
fn load_buffering_is_never_observable_here() {
    // Loads block their issuing processor in every model (condition 1 /
    // intra-processor dependences), so no machine reorders a write above
    // an older read: LB's forbidden outcome is unreachable.
    let p = corpus::load_buffering();
    for base in [relaxed_bus(), relaxed_net_cached()] {
        assert!(
            !observe(&p, &base, 15).iter().any(|&(a, b, _, _)| a == 1 && b == 1),
            "no machine in this workspace reorders R -> W"
        );
    }
}

#[test]
fn coherence_rr_holds_on_every_machine() {
    // Per-location write serialization (condition 2) holds even on the
    // relaxed machines: a processor never reads values against the commit
    // order of writes.
    let p = corpus::coherence_rr();
    for base in [
        relaxed_bus(),
        relaxed_net_cached(),
        presets::network_cached(2, presets::wo_def2(), 0),
    ] {
        for seed in 0..10 {
            let cfg = MachineConfig { seed, ..base };
            let r = Machine::run_program(&p, &cfg).unwrap();
            let (r0, r1) = (r.outcome.regs[1][0], r.outcome.regs[1][1]);
            assert!(
                !(r0 == 2 && r1 == 1),
                "coherence violation: read 2 then 1 (seed {seed})"
            );
        }
    }
}

#[test]
fn two_plus_two_w_forbidden_state_on_weak_machines() {
    // On SC hardware the final state (x, y) == (1, 1) never appears; the
    // relaxed cached machine can produce it (writes commit locally and
    // propagate out of order).
    let p = corpus::two_plus_two_w();
    for (_, cfg) in presets::fig1_classes(2, presets::sc(), 0) {
        assert!(
            !observe(&p, &cfg, 10).iter().any(|&(_, _, x, y)| x == 1 && y == 1),
            "SC machine showed 2+2W's forbidden final state"
        );
    }
}

#[test]
fn fences_tame_the_relaxed_bus_machine() {
    // Fenced Dekker and fenced MP behave sequentially consistently on the
    // write-buffer machine that breaks their unfenced twins.
    let dekker = corpus::fig1_dekker_fenced();
    assert!(
        !observe(&dekker, &relaxed_bus(), 10).iter().any(|&(a, b, _, _)| a == 0 && b == 0)
    );
    let mp = corpus::message_passing_fenced();
    for seed in 0..10 {
        let cfg = MachineConfig { seed, ..relaxed_bus() };
        let r = Machine::run_program(&mp, &cfg).unwrap();
        // If the consumer saw the flag, it must see the data.
        if r.outcome.regs[1][0] == 1 {
            assert_eq!(r.outcome.regs[1][1], 42, "fenced MP lost the hand-off");
        }
    }
}

#[test]
fn unfenced_mp_survives_the_fifo_write_buffer_but_not_the_network() {
    // A FIFO write buffer drains stores in order, so message passing
    // survives the relaxed *bus* machine (TSO-like). The cacheless
    // *network* machine delivers the two stores to different memory
    // modules with independent latencies — there the hand-off breaks.
    let mp = corpus::message_passing_data();
    for seed in 0..10 {
        let cfg = MachineConfig { seed, ..relaxed_bus() };
        let r = Machine::run_program(&mp, &cfg).unwrap();
        if r.outcome.regs[1][0] == 1 {
            assert_eq!(r.outcome.regs[1][1], 42, "FIFO buffer preserves MP");
        }
    }
    let net = MachineConfig {
        interconnect: InterconnectConfig::Network {
            min_latency: 2,
            max_latency: 80,
            ack_extra_delay: 0,
        },
        ..presets::network_no_cache(2, Policy::Relaxed { write_delay: 0 }, 0)
    };
    let mut broken = false;
    for seed in 0..30 {
        let cfg = MachineConfig { seed, ..net };
        let r = Machine::run_program(&mp, &cfg).unwrap();
        if r.outcome.regs[1][0] == 1 && r.outcome.regs[1][1] != 42 {
            broken = true;
            break;
        }
    }
    assert!(broken, "cross-module reordering should break unfenced MP");
}

#[test]
fn weak_machines_respect_sc_for_the_drf0_s_shape_variant() {
    // The S shape made DRF0 (flag through a sync location) keeps its
    // forbidden outcome impossible on the weak machines.
    use weak_ordering::litmus::{Reg, Thread};
    let p = Program::new(vec![
        Thread::new()
            .write(corpus::LOC_X, 2)
            .sync_write(corpus::LOC_S, 1),
        Thread::new()
            .sync_read(corpus::LOC_S, Reg(0))
            .branch_ne(Reg(0), 1u64, 0)
            .write(corpus::LOC_X, 1),
    ])
    .unwrap();
    for (_, policy) in presets::all_policies() {
        for seed in 0..6 {
            let cfg = presets::network_cached(2, policy, seed);
            let r = Machine::run_program(&p, &cfg).unwrap();
            assert!(r.completed);
            let x = r
                .outcome
                .final_memory
                .iter()
                .find(|(l, _)| *l == corpus::LOC_X)
                .map_or(0, |&(_, v)| v);
            // P1 only writes after acquiring the flag: its write is last.
            assert_eq!(x, 1, "{} seed {seed}", policy.name());
        }
    }
}
