//! Cross-validation: independent implementations of the same mathematics
//! must agree, and the simulators must refine the idealized semantics.

use std::collections::HashSet;

use weak_ordering::litmus::corpus;
use weak_ordering::litmus::explore::{explore, explore_results, ExploreConfig};
use weak_ordering::memory_model::hb::HbRelation;
use weak_ordering::memory_model::race::RaceDetector;
use weak_ordering::memory_model::vc::VcHb;
use weak_ordering::memory_model::{drf0, Memory};
use weak_ordering::memsim::{presets, Machine, MachineConfig};

fn keep_execs() -> ExploreConfig {
    ExploreConfig {
        keep_executions: true,
        max_ops_per_execution: 32,
        max_executions: 3_000,
        ..ExploreConfig::default()
    }
}

/// Every corpus program's explored executions: the hb bit-matrix and the
/// vector-clock hb must agree on every ordered pair.
#[test]
fn hb_matrix_and_vector_clocks_agree_on_corpus_executions() {
    for (name, program) in corpus::drf0_suite().iter().chain(corpus::racy_suite().iter())
    {
        let report = explore(program, &keep_execs());
        for exec in report.executions.iter().take(100) {
            let matrix = HbRelation::from_execution(exec);
            let vc = VcHb::from_execution(exec);
            for a in exec.ops() {
                for b in exec.ops() {
                    assert_eq!(
                        matrix.happens_before(a.id, b.id),
                        vc.happens_before(a.id, b.id),
                        "{name}: disagreement on ({}, {})",
                        a.id,
                        b.id
                    );
                }
            }
        }
    }
}

/// The streaming race detector and the exhaustive pairwise check must give
/// the same race-free verdict on every explored execution.
#[test]
fn streaming_and_pairwise_race_detection_agree() {
    for (name, program) in corpus::drf0_suite().iter().chain(corpus::racy_suite().iter())
    {
        let report = explore(program, &keep_execs());
        for exec in report.executions.iter().take(200) {
            assert_eq!(
                RaceDetector::check_execution(exec),
                drf0::is_data_race_free(exec),
                "{name}: detectors disagree on an execution"
            );
        }
    }
}

/// Every idealized execution satisfies atomic-memory semantics (interpreter
/// self-check) and appears SC (the idealized architecture IS sequentially
/// consistent).
#[test]
fn idealized_executions_are_atomic_and_sc() {
    use weak_ordering::memory_model::sc::appears_sc;
    use weak_ordering::memory_model::Observation;
    for (name, program) in corpus::drf0_suite() {
        let report = explore(&program, &keep_execs());
        let initial: Memory = program.initial_memory();
        for exec in report.executions.iter().take(50) {
            assert!(
                exec.validate_atomic_semantics(&initial).is_ok(),
                "{name}: interpreter broke atomicity"
            );
            let obs = Observation::from_execution(exec);
            assert!(appears_sc(&obs, &initial), "{name}: idealized execution not SC");
        }
    }
}

/// **Refinement**: on DRF0 programs, every outcome the weak hardware
/// produces must be an outcome the idealized (sequentially consistent)
/// architecture can produce. This is Definition 2 stated over observable
/// outcomes, checked against the exhaustively enumerated SC outcome set.
#[test]
fn simulator_outcomes_refine_idealized_outcomes_on_drf0_programs() {
    let explore_cfg = ExploreConfig {
        max_ops_per_execution: 64,
        max_executions: 500_000,
        ..ExploreConfig::default()
    };
    for (name, program) in corpus::drf0_suite() {
        let ideal = explore_results(&program, &explore_cfg);
        assert!(ideal.complete, "{name}: idealized enumeration incomplete");
        type FlatOutcome = (Vec<u64>, Vec<(u32, u64)>);
        let ideal_outcomes: HashSet<FlatOutcome> = ideal
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.regs.iter().flat_map(|r| r.iter().copied()).collect(),
                    o.final_memory.iter().map(|&(l, v)| (l.0, v)).collect(),
                )
            })
            .collect();

        for (policy_name, policy) in presets::all_policies() {
            for seed in 0..6 {
                let cfg = presets::network_cached(program.num_threads(), policy, seed);
                let result = Machine::run_program(&program, &cfg).unwrap();
                assert!(result.completed, "{name} on {policy_name} seed {seed}");
                let got = (
                    result
                        .outcome
                        .regs
                        .iter()
                        .flat_map(|r| r.iter().copied())
                        .collect::<Vec<u64>>(),
                    result
                        .outcome
                        .final_memory
                        .iter()
                        .map(|&(l, v)| (l.0, v))
                        .collect::<Vec<(u32, u64)>>(),
                );
                assert!(
                    ideal_outcomes.contains(&got),
                    "{name} on {policy_name} seed {seed}: hardware produced an outcome \
                     outside the SC set: {got:?}"
                );
            }
        }
    }
}

/// Lemma 1 closes the loop on hardware runs: the SC witness of a DRF0
/// run, replayed as an idealized execution, must satisfy the
/// reads-see-last-hb-write condition (Appendix A's characterization).
#[test]
fn lemma1_holds_on_witnesses_of_hardware_runs() {
    use weak_ordering::memory_model::hb::HbRelation;
    use weak_ordering::memory_model::lemma1::reads_see_last_hb_write;
    use weak_ordering::memory_model::sc::{check_sc, ScCheckConfig, ScVerdict};
    use weak_ordering::memory_model::{Execution, Operation};
    for (name, program) in corpus::drf0_suite() {
        for (policy_name, policy) in presets::all_policies() {
            let cfg = presets::network_cached(program.num_threads(), policy, 11);
            let result = Machine::run_program(&program, &cfg).unwrap();
            assert!(result.completed);
            let obs = result.observation();
            let ScVerdict::Consistent(witness) =
                check_sc(&obs, &program.initial_memory(), &ScCheckConfig::default())
            else {
                panic!("{name} on {policy_name}: DRF0 run must appear SC");
            };
            let ordered: Vec<Operation> = witness
                .iter()
                .map(|&id| *obs.op(id).expect("witness ids come from obs"))
                .collect();
            let exec = Execution::new(ordered).unwrap();
            let hb = HbRelation::from_execution(&exec);
            reads_see_last_hb_write(&exec, &hb, &program.initial_memory())
                .unwrap_or_else(|e| {
                    panic!("{name} on {policy_name}: Lemma 1 violated: {e}")
                });
        }
    }
}

/// The snooping-bus machine also refines the idealized outcomes on DRF0
/// programs (same check as the directory machines).
#[test]
fn snooping_machine_refines_idealized_outcomes() {
    let explore_cfg = ExploreConfig {
        max_ops_per_execution: 64,
        max_executions: 500_000,
        ..ExploreConfig::default()
    };
    for (name, program) in corpus::drf0_suite() {
        let ideal = explore_results(&program, &explore_cfg);
        assert!(ideal.complete);
        let outcomes: HashSet<Vec<u64>> = ideal
            .outcomes
            .iter()
            .map(|o| o.regs.iter().flat_map(|r| r.iter().copied()).collect())
            .collect();
        for policy in [
            weak_ordering::memsim::Policy::Sc,
            weak_ordering::memsim::Policy::WoDef1,
        ] {
            for seed in 0..4 {
                let cfg = presets::bus_cached_snooping(program.num_threads(), policy, seed);
                let r = Machine::run_program(&program, &cfg).unwrap();
                assert!(r.completed, "{name} snoop seed {seed}");
                let got: Vec<u64> =
                    r.outcome.regs.iter().flat_map(|x| x.iter().copied()).collect();
                assert!(
                    outcomes.contains(&got),
                    "{name}: snooping machine left the SC outcome set: {got:?}"
                );
            }
        }
    }
}

/// Determinism across the whole stack: identical configs yield identical
/// everything.
#[test]
fn whole_stack_is_deterministic() {
    let program = corpus::tts_spinlock(3, 2);
    let cfg = presets::network_cached(3, presets::wo_def2_optimized(), 42);
    let a = Machine::run_program(&program, &cfg).unwrap();
    let b = Machine::run_program(&program, &cfg).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra, rb);
    }
}

/// Different seeds explore genuinely different timings (sanity check that
/// the seed actually matters).
#[test]
fn seeds_change_timing() {
    let program = corpus::spinlock(3, 2);
    let cycles: HashSet<u64> = (0..8)
        .map(|seed| {
            let cfg = presets::network_cached(3, presets::wo_def2(), seed);
            Machine::run_program(&program, &cfg).unwrap().cycles
        })
        .collect();
    assert!(cycles.len() > 1, "all seeds produced identical timing");
}

/// The SC witness returned by the checker replays correctly against the
/// hardware observation for simulator runs.
#[test]
fn sc_witness_replays_against_hardware_observations() {
    use weak_ordering::memory_model::sc::{check_sc, ScCheckConfig, ScVerdict};
    use weak_ordering::memory_model::{Execution, Operation};
    let program = corpus::fig3_handoff_bounded(1, 3);
    let cfg = MachineConfig { seed: 3, ..presets::network_cached(2, presets::wo_def2(), 3) };
    let result = Machine::run_program(&program, &cfg).unwrap();
    let obs = result.observation();
    let ScVerdict::Consistent(witness) =
        check_sc(&obs, &program.initial_memory(), &ScCheckConfig::default())
    else {
        panic!("DRF0 run must appear SC");
    };
    let ordered: Vec<Operation> = witness
        .iter()
        .map(|&id| *obs.op(id).expect("witness ids come from the observation"))
        .collect();
    let exec = Execution::new(ordered).unwrap();
    assert!(exec.validate_atomic_semantics(&program.initial_memory()).is_ok());
}
