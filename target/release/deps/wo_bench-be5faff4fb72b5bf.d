/root/repo/target/release/deps/wo_bench-be5faff4fb72b5bf.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libwo_bench-be5faff4fb72b5bf.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libwo_bench-be5faff4fb72b5bf.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
