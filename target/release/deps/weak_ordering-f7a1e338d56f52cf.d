/root/repo/target/release/deps/weak_ordering-f7a1e338d56f52cf.d: src/lib.rs

/root/repo/target/release/deps/libweak_ordering-f7a1e338d56f52cf.rlib: src/lib.rs

/root/repo/target/release/deps/libweak_ordering-f7a1e338d56f52cf.rmeta: src/lib.rs

src/lib.rs:
