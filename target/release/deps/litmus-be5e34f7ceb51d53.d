/root/repo/target/release/deps/litmus-be5e34f7ceb51d53.d: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

/root/repo/target/release/deps/liblitmus-be5e34f7ceb51d53.rlib: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

/root/repo/target/release/deps/liblitmus-be5e34f7ceb51d53.rmeta: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

crates/litmus/src/lib.rs:
crates/litmus/src/program.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/explore.rs:
crates/litmus/src/ideal.rs:
crates/litmus/src/parse.rs:
