/root/repo/target/release/deps/weakord-f5923c86cf224af3.d: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libweakord-f5923c86cf224af3.rlib: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libweakord-f5923c86cf224af3.rmeta: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/discipline.rs:
crates/core/src/model.rs:
crates/core/src/conditions.rs:
crates/core/src/verify.rs:
