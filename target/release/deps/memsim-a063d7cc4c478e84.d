/root/repo/target/release/deps/memsim-a063d7cc4c478e84.d: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

/root/repo/target/release/deps/libmemsim-a063d7cc4c478e84.rlib: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

/root/repo/target/release/deps/libmemsim-a063d7cc4c478e84.rmeta: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

crates/memsim/src/lib.rs:
crates/memsim/src/config.rs:
crates/memsim/src/interconnect.rs:
crates/memsim/src/machine.rs:
crates/memsim/src/trace.rs:
crates/memsim/src/diag.rs:
crates/memsim/src/presets.rs:
crates/memsim/src/timeline.rs:
crates/memsim/src/workload.rs:
