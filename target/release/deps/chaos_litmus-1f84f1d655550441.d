/root/repo/target/release/deps/chaos_litmus-1f84f1d655550441.d: crates/bench/src/bin/chaos_litmus.rs

/root/repo/target/release/deps/chaos_litmus-1f84f1d655550441: crates/bench/src/bin/chaos_litmus.rs

crates/bench/src/bin/chaos_litmus.rs:
