/root/repo/target/release/deps/simx-2e1096d1115fb621.d: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

/root/repo/target/release/deps/libsimx-2e1096d1115fb621.rlib: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

/root/repo/target/release/deps/libsimx-2e1096d1115fb621.rmeta: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

crates/simx/src/lib.rs:
crates/simx/src/queue.rs:
crates/simx/src/time.rs:
crates/simx/src/fault.rs:
crates/simx/src/rng.rs:
crates/simx/src/stats.rs:
