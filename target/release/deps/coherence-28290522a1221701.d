/root/repo/target/release/deps/coherence-28290522a1221701.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

/root/repo/target/release/deps/libcoherence-28290522a1221701.rlib: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

/root/repo/target/release/deps/libcoherence-28290522a1221701.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/error.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/fabric.rs:
crates/coherence/src/snoop.rs:
