/root/repo/target/release/deps/dbg_barrier-e92759f74a633be5.d: crates/bench/src/bin/dbg_barrier.rs

/root/repo/target/release/deps/dbg_barrier-e92759f74a633be5: crates/bench/src/bin/dbg_barrier.rs

crates/bench/src/bin/dbg_barrier.rs:
