/root/repo/target/release/examples/quickstart-06e9ff94b87dda20.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-06e9ff94b87dda20: examples/quickstart.rs

examples/quickstart.rs:
