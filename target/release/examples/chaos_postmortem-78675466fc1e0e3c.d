/root/repo/target/release/examples/chaos_postmortem-78675466fc1e0e3c.d: examples/chaos_postmortem.rs

/root/repo/target/release/examples/chaos_postmortem-78675466fc1e0e3c: examples/chaos_postmortem.rs

examples/chaos_postmortem.rs:
