/root/repo/target/debug/examples/verify_hardware-0fad0a66839438a4.d: examples/verify_hardware.rs Cargo.toml

/root/repo/target/debug/examples/libverify_hardware-0fad0a66839438a4.rmeta: examples/verify_hardware.rs Cargo.toml

examples/verify_hardware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
