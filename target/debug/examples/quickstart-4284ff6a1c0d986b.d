/root/repo/target/debug/examples/quickstart-4284ff6a1c0d986b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4284ff6a1c0d986b: examples/quickstart.rs

examples/quickstart.rs:
