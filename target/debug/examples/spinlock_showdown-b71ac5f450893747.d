/root/repo/target/debug/examples/spinlock_showdown-b71ac5f450893747.d: examples/spinlock_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libspinlock_showdown-b71ac5f450893747.rmeta: examples/spinlock_showdown.rs Cargo.toml

examples/spinlock_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
