/root/repo/target/debug/examples/async_algorithm-5c99a8428b867ab2.d: examples/async_algorithm.rs Cargo.toml

/root/repo/target/debug/examples/libasync_algorithm-5c99a8428b867ab2.rmeta: examples/async_algorithm.rs Cargo.toml

examples/async_algorithm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
