/root/repo/target/debug/examples/export_litmus-f8d249c14195952f.d: examples/export_litmus.rs Cargo.toml

/root/repo/target/debug/examples/libexport_litmus-f8d249c14195952f.rmeta: examples/export_litmus.rs Cargo.toml

examples/export_litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
