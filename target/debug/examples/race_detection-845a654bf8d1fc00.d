/root/repo/target/debug/examples/race_detection-845a654bf8d1fc00.d: examples/race_detection.rs

/root/repo/target/debug/examples/race_detection-845a654bf8d1fc00: examples/race_detection.rs

examples/race_detection.rs:
