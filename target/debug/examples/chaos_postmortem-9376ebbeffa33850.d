/root/repo/target/debug/examples/chaos_postmortem-9376ebbeffa33850.d: examples/chaos_postmortem.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_postmortem-9376ebbeffa33850.rmeta: examples/chaos_postmortem.rs Cargo.toml

examples/chaos_postmortem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
