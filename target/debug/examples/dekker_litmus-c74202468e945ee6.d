/root/repo/target/debug/examples/dekker_litmus-c74202468e945ee6.d: examples/dekker_litmus.rs Cargo.toml

/root/repo/target/debug/examples/libdekker_litmus-c74202468e945ee6.rmeta: examples/dekker_litmus.rs Cargo.toml

examples/dekker_litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
