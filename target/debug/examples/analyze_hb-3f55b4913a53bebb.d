/root/repo/target/debug/examples/analyze_hb-3f55b4913a53bebb.d: examples/analyze_hb.rs Cargo.toml

/root/repo/target/debug/examples/libanalyze_hb-3f55b4913a53bebb.rmeta: examples/analyze_hb.rs Cargo.toml

examples/analyze_hb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
