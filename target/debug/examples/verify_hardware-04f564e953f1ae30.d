/root/repo/target/debug/examples/verify_hardware-04f564e953f1ae30.d: examples/verify_hardware.rs

/root/repo/target/debug/examples/verify_hardware-04f564e953f1ae30: examples/verify_hardware.rs

examples/verify_hardware.rs:
