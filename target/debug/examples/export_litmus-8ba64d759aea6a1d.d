/root/repo/target/debug/examples/export_litmus-8ba64d759aea6a1d.d: examples/export_litmus.rs

/root/repo/target/debug/examples/export_litmus-8ba64d759aea6a1d: examples/export_litmus.rs

examples/export_litmus.rs:
