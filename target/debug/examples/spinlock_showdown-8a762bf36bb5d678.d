/root/repo/target/debug/examples/spinlock_showdown-8a762bf36bb5d678.d: examples/spinlock_showdown.rs

/root/repo/target/debug/examples/spinlock_showdown-8a762bf36bb5d678: examples/spinlock_showdown.rs

examples/spinlock_showdown.rs:
