/root/repo/target/debug/examples/analyze_hb-2cde5a7799550e1b.d: examples/analyze_hb.rs

/root/repo/target/debug/examples/analyze_hb-2cde5a7799550e1b: examples/analyze_hb.rs

examples/analyze_hb.rs:
