/root/repo/target/debug/examples/chaos_postmortem-6a772cea81b13356.d: examples/chaos_postmortem.rs

/root/repo/target/debug/examples/chaos_postmortem-6a772cea81b13356: examples/chaos_postmortem.rs

examples/chaos_postmortem.rs:
