/root/repo/target/debug/examples/dekker_litmus-2d1812f0dc8bd754.d: examples/dekker_litmus.rs

/root/repo/target/debug/examples/dekker_litmus-2d1812f0dc8bd754: examples/dekker_litmus.rs

examples/dekker_litmus.rs:
