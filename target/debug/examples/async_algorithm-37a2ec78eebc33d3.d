/root/repo/target/debug/examples/async_algorithm-37a2ec78eebc33d3.d: examples/async_algorithm.rs

/root/repo/target/debug/examples/async_algorithm-37a2ec78eebc33d3: examples/async_algorithm.rs

examples/async_algorithm.rs:
