/root/repo/target/debug/deps/proptests-b51fdabf6b94b512.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-b51fdabf6b94b512: tests/proptests.rs

tests/proptests.rs:
