/root/repo/target/debug/deps/def2_verification-566760c7abab7457.d: crates/bench/src/bin/def2_verification.rs Cargo.toml

/root/repo/target/debug/deps/libdef2_verification-566760c7abab7457.rmeta: crates/bench/src/bin/def2_verification.rs Cargo.toml

crates/bench/src/bin/def2_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
