/root/repo/target/debug/deps/fig3_stall_analysis-138a72f438f45599.d: crates/bench/src/bin/fig3_stall_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_stall_analysis-138a72f438f45599.rmeta: crates/bench/src/bin/fig3_stall_analysis.rs Cargo.toml

crates/bench/src/bin/fig3_stall_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
