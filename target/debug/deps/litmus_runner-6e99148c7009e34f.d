/root/repo/target/debug/deps/litmus_runner-6e99148c7009e34f.d: crates/bench/src/bin/litmus_runner.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_runner-6e99148c7009e34f.rmeta: crates/bench/src/bin/litmus_runner.rs Cargo.toml

crates/bench/src/bin/litmus_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
