/root/repo/target/debug/deps/weak_ordering-806443b938741da6.d: src/lib.rs

/root/repo/target/debug/deps/weak_ordering-806443b938741da6: src/lib.rs

src/lib.rs:
