/root/repo/target/debug/deps/litmus-34d7fffd981db06c.d: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus-34d7fffd981db06c.rmeta: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs Cargo.toml

crates/litmus/src/lib.rs:
crates/litmus/src/program.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/explore.rs:
crates/litmus/src/ideal.rs:
crates/litmus/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
