/root/repo/target/debug/deps/simx-60b85e01424eb267.d: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsimx-60b85e01424eb267.rmeta: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs Cargo.toml

crates/simx/src/lib.rs:
crates/simx/src/queue.rs:
crates/simx/src/time.rs:
crates/simx/src/fault.rs:
crates/simx/src/rng.rs:
crates/simx/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
