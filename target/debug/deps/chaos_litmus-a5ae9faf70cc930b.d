/root/repo/target/debug/deps/chaos_litmus-a5ae9faf70cc930b.d: crates/bench/src/bin/chaos_litmus.rs

/root/repo/target/debug/deps/chaos_litmus-a5ae9faf70cc930b: crates/bench/src/bin/chaos_litmus.rs

crates/bench/src/bin/chaos_litmus.rs:
