/root/repo/target/debug/deps/memsim-ddd5c0a986ed1268.d: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmemsim-ddd5c0a986ed1268.rmeta: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs Cargo.toml

crates/memsim/src/lib.rs:
crates/memsim/src/config.rs:
crates/memsim/src/interconnect.rs:
crates/memsim/src/machine.rs:
crates/memsim/src/trace.rs:
crates/memsim/src/diag.rs:
crates/memsim/src/presets.rs:
crates/memsim/src/timeline.rs:
crates/memsim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
