/root/repo/target/debug/deps/chaos_litmus-24d2435ac77ca630.d: crates/bench/src/bin/chaos_litmus.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_litmus-24d2435ac77ca630.rmeta: crates/bench/src/bin/chaos_litmus.rs Cargo.toml

crates/bench/src/bin/chaos_litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
