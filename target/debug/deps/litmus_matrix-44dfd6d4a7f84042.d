/root/repo/target/debug/deps/litmus_matrix-44dfd6d4a7f84042.d: tests/litmus_matrix.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_matrix-44dfd6d4a7f84042.rmeta: tests/litmus_matrix.rs Cargo.toml

tests/litmus_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
