/root/repo/target/debug/deps/def2_verification-421347f050b6c3b3.d: crates/bench/src/bin/def2_verification.rs Cargo.toml

/root/repo/target/debug/deps/libdef2_verification-421347f050b6c3b3.rmeta: crates/bench/src/bin/def2_verification.rs Cargo.toml

crates/bench/src/bin/def2_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
