/root/repo/target/debug/deps/fig3_stall_analysis-f32c005632a2fd3a.d: crates/bench/src/bin/fig3_stall_analysis.rs

/root/repo/target/debug/deps/fig3_stall_analysis-f32c005632a2fd3a: crates/bench/src/bin/fig3_stall_analysis.rs

crates/bench/src/bin/fig3_stall_analysis.rs:
