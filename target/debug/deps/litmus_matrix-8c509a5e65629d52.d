/root/repo/target/debug/deps/litmus_matrix-8c509a5e65629d52.d: tests/litmus_matrix.rs

/root/repo/target/debug/deps/litmus_matrix-8c509a5e65629d52: tests/litmus_matrix.rs

tests/litmus_matrix.rs:
