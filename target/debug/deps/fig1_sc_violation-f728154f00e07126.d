/root/repo/target/debug/deps/fig1_sc_violation-f728154f00e07126.d: crates/bench/src/bin/fig1_sc_violation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_sc_violation-f728154f00e07126.rmeta: crates/bench/src/bin/fig1_sc_violation.rs Cargo.toml

crates/bench/src/bin/fig1_sc_violation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
