/root/repo/target/debug/deps/wo_bench-1507377af42fabc2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libwo_bench-1507377af42fabc2.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libwo_bench-1507377af42fabc2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
