/root/repo/target/debug/deps/weakord-7b4f568551632c1e.d: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libweakord-7b4f568551632c1e.rlib: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libweakord-7b4f568551632c1e.rmeta: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/discipline.rs:
crates/core/src/model.rs:
crates/core/src/conditions.rs:
crates/core/src/verify.rs:
