/root/repo/target/debug/deps/sc_checker-267e1dba0b747c9f.d: crates/bench/benches/sc_checker.rs Cargo.toml

/root/repo/target/debug/deps/libsc_checker-267e1dba0b747c9f.rmeta: crates/bench/benches/sc_checker.rs Cargo.toml

crates/bench/benches/sc_checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
