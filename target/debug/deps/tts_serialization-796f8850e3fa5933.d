/root/repo/target/debug/deps/tts_serialization-796f8850e3fa5933.d: crates/bench/src/bin/tts_serialization.rs Cargo.toml

/root/repo/target/debug/deps/libtts_serialization-796f8850e3fa5933.rmeta: crates/bench/src/bin/tts_serialization.rs Cargo.toml

crates/bench/src/bin/tts_serialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
