/root/repo/target/debug/deps/memsim-0267b2591a59bdb7.d: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

/root/repo/target/debug/deps/libmemsim-0267b2591a59bdb7.rlib: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

/root/repo/target/debug/deps/libmemsim-0267b2591a59bdb7.rmeta: crates/memsim/src/lib.rs crates/memsim/src/config.rs crates/memsim/src/interconnect.rs crates/memsim/src/machine.rs crates/memsim/src/trace.rs crates/memsim/src/diag.rs crates/memsim/src/presets.rs crates/memsim/src/timeline.rs crates/memsim/src/workload.rs

crates/memsim/src/lib.rs:
crates/memsim/src/config.rs:
crates/memsim/src/interconnect.rs:
crates/memsim/src/machine.rs:
crates/memsim/src/trace.rs:
crates/memsim/src/diag.rs:
crates/memsim/src/presets.rs:
crates/memsim/src/timeline.rs:
crates/memsim/src/workload.rs:
