/root/repo/target/debug/deps/models_lattice-516a51c9f51882d5.d: crates/bench/src/bin/models_lattice.rs

/root/repo/target/debug/deps/models_lattice-516a51c9f51882d5: crates/bench/src/bin/models_lattice.rs

crates/bench/src/bin/models_lattice.rs:
