/root/repo/target/debug/deps/race_detection-a3f90878cbd68333.d: crates/bench/benches/race_detection.rs Cargo.toml

/root/repo/target/debug/deps/librace_detection-a3f90878cbd68333.rmeta: crates/bench/benches/race_detection.rs Cargo.toml

crates/bench/benches/race_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
