/root/repo/target/debug/deps/explore_ablation-a2c59d3ce684d2e3.d: crates/bench/benches/explore_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexplore_ablation-a2c59d3ce684d2e3.rmeta: crates/bench/benches/explore_ablation.rs Cargo.toml

crates/bench/benches/explore_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
