/root/repo/target/debug/deps/perf_comparison-86ed70f956bf6848.d: crates/bench/src/bin/perf_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libperf_comparison-86ed70f956bf6848.rmeta: crates/bench/src/bin/perf_comparison.rs Cargo.toml

crates/bench/src/bin/perf_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
