/root/repo/target/debug/deps/fig2_drf0-7efcbf2e7a138f54.d: crates/bench/src/bin/fig2_drf0.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_drf0-7efcbf2e7a138f54.rmeta: crates/bench/src/bin/fig2_drf0.rs Cargo.toml

crates/bench/src/bin/fig2_drf0.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
