/root/repo/target/debug/deps/machine_sim-79f76d0d7fd65337.d: crates/bench/benches/machine_sim.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_sim-79f76d0d7fd65337.rmeta: crates/bench/benches/machine_sim.rs Cargo.toml

crates/bench/benches/machine_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
