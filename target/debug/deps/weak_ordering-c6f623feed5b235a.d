/root/repo/target/debug/deps/weak_ordering-c6f623feed5b235a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libweak_ordering-c6f623feed5b235a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
