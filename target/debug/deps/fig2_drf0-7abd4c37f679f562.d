/root/repo/target/debug/deps/fig2_drf0-7abd4c37f679f562.d: crates/bench/src/bin/fig2_drf0.rs

/root/repo/target/debug/deps/fig2_drf0-7abd4c37f679f562: crates/bench/src/bin/fig2_drf0.rs

crates/bench/src/bin/fig2_drf0.rs:
