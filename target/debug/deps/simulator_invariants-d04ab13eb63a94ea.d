/root/repo/target/debug/deps/simulator_invariants-d04ab13eb63a94ea.d: tests/simulator_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_invariants-d04ab13eb63a94ea.rmeta: tests/simulator_invariants.rs Cargo.toml

tests/simulator_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
