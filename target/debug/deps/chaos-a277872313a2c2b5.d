/root/repo/target/debug/deps/chaos-a277872313a2c2b5.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-a277872313a2c2b5: tests/chaos.rs

tests/chaos.rs:
