/root/repo/target/debug/deps/coherence-924829b512511d09.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs Cargo.toml

/root/repo/target/debug/deps/libcoherence-924829b512511d09.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs Cargo.toml

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/error.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/fabric.rs:
crates/coherence/src/snoop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
