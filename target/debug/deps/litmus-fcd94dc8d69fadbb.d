/root/repo/target/debug/deps/litmus-fcd94dc8d69fadbb.d: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

/root/repo/target/debug/deps/liblitmus-fcd94dc8d69fadbb.rlib: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

/root/repo/target/debug/deps/liblitmus-fcd94dc8d69fadbb.rmeta: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

crates/litmus/src/lib.rs:
crates/litmus/src/program.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/explore.rs:
crates/litmus/src/ideal.rs:
crates/litmus/src/parse.rs:
