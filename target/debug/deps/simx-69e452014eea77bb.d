/root/repo/target/debug/deps/simx-69e452014eea77bb.d: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

/root/repo/target/debug/deps/libsimx-69e452014eea77bb.rlib: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

/root/repo/target/debug/deps/libsimx-69e452014eea77bb.rmeta: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

crates/simx/src/lib.rs:
crates/simx/src/queue.rs:
crates/simx/src/time.rs:
crates/simx/src/fault.rs:
crates/simx/src/rng.rs:
crates/simx/src/stats.rs:
