/root/repo/target/debug/deps/tts_serialization-cb9521bd20159455.d: crates/bench/src/bin/tts_serialization.rs

/root/repo/target/debug/deps/tts_serialization-cb9521bd20159455: crates/bench/src/bin/tts_serialization.rs

crates/bench/src/bin/tts_serialization.rs:
