/root/repo/target/debug/deps/chaos_litmus-c4981677916f46d1.d: crates/bench/src/bin/chaos_litmus.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_litmus-c4981677916f46d1.rmeta: crates/bench/src/bin/chaos_litmus.rs Cargo.toml

crates/bench/src/bin/chaos_litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
