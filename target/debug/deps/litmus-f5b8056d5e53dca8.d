/root/repo/target/debug/deps/litmus-f5b8056d5e53dca8.d: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

/root/repo/target/debug/deps/litmus-f5b8056d5e53dca8: crates/litmus/src/lib.rs crates/litmus/src/program.rs crates/litmus/src/corpus.rs crates/litmus/src/explore.rs crates/litmus/src/ideal.rs crates/litmus/src/parse.rs

crates/litmus/src/lib.rs:
crates/litmus/src/program.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/explore.rs:
crates/litmus/src/ideal.rs:
crates/litmus/src/parse.rs:
