/root/repo/target/debug/deps/weakord-94b84180437061ba.d: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/weakord-94b84180437061ba: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/discipline.rs:
crates/core/src/model.rs:
crates/core/src/conditions.rs:
crates/core/src/verify.rs:
