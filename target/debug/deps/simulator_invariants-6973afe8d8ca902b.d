/root/repo/target/debug/deps/simulator_invariants-6973afe8d8ca902b.d: tests/simulator_invariants.rs

/root/repo/target/debug/deps/simulator_invariants-6973afe8d8ca902b: tests/simulator_invariants.rs

tests/simulator_invariants.rs:
