/root/repo/target/debug/deps/weakord-e58b17f10785d857.d: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libweakord-e58b17f10785d857.rmeta: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/discipline.rs:
crates/core/src/model.rs:
crates/core/src/conditions.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
