/root/repo/target/debug/deps/memory_model-2b1e6de8e09b22ca.d: crates/memory-model/src/lib.rs crates/memory-model/src/execution.rs crates/memory-model/src/ids.rs crates/memory-model/src/memory.rs crates/memory-model/src/observation.rs crates/memory-model/src/op.rs crates/memory-model/src/analysis.rs crates/memory-model/src/drf0.rs crates/memory-model/src/drf1.rs crates/memory-model/src/hb.rs crates/memory-model/src/lemma1.rs crates/memory-model/src/race.rs crates/memory-model/src/sc.rs crates/memory-model/src/vc.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_model-2b1e6de8e09b22ca.rmeta: crates/memory-model/src/lib.rs crates/memory-model/src/execution.rs crates/memory-model/src/ids.rs crates/memory-model/src/memory.rs crates/memory-model/src/observation.rs crates/memory-model/src/op.rs crates/memory-model/src/analysis.rs crates/memory-model/src/drf0.rs crates/memory-model/src/drf1.rs crates/memory-model/src/hb.rs crates/memory-model/src/lemma1.rs crates/memory-model/src/race.rs crates/memory-model/src/sc.rs crates/memory-model/src/vc.rs Cargo.toml

crates/memory-model/src/lib.rs:
crates/memory-model/src/execution.rs:
crates/memory-model/src/ids.rs:
crates/memory-model/src/memory.rs:
crates/memory-model/src/observation.rs:
crates/memory-model/src/op.rs:
crates/memory-model/src/analysis.rs:
crates/memory-model/src/drf0.rs:
crates/memory-model/src/drf1.rs:
crates/memory-model/src/hb.rs:
crates/memory-model/src/lemma1.rs:
crates/memory-model/src/race.rs:
crates/memory-model/src/sc.rs:
crates/memory-model/src/vc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
