/root/repo/target/debug/deps/contract_roundtrip-343c5415546f5114.d: tests/contract_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libcontract_roundtrip-343c5415546f5114.rmeta: tests/contract_roundtrip.rs Cargo.toml

tests/contract_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
