/root/repo/target/debug/deps/coherence-9cd69f1bd2225e13.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

/root/repo/target/debug/deps/libcoherence-9cd69f1bd2225e13.rlib: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

/root/repo/target/debug/deps/libcoherence-9cd69f1bd2225e13.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/error.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/fabric.rs:
crates/coherence/src/snoop.rs:
