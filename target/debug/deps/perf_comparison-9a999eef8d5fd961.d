/root/repo/target/debug/deps/perf_comparison-9a999eef8d5fd961.d: crates/bench/src/bin/perf_comparison.rs

/root/repo/target/debug/deps/perf_comparison-9a999eef8d5fd961: crates/bench/src/bin/perf_comparison.rs

crates/bench/src/bin/perf_comparison.rs:
