/root/repo/target/debug/deps/wo_bench-d2b6f4a097094337.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/wo_bench-d2b6f4a097094337: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
