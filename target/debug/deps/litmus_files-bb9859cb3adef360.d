/root/repo/target/debug/deps/litmus_files-bb9859cb3adef360.d: tests/litmus_files.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_files-bb9859cb3adef360.rmeta: tests/litmus_files.rs Cargo.toml

tests/litmus_files.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
