/root/repo/target/debug/deps/litmus_runner-f33bae276cef28d5.d: crates/bench/src/bin/litmus_runner.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_runner-f33bae276cef28d5.rmeta: crates/bench/src/bin/litmus_runner.rs Cargo.toml

crates/bench/src/bin/litmus_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
