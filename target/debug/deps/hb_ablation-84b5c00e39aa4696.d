/root/repo/target/debug/deps/hb_ablation-84b5c00e39aa4696.d: crates/bench/benches/hb_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libhb_ablation-84b5c00e39aa4696.rmeta: crates/bench/benches/hb_ablation.rs Cargo.toml

crates/bench/benches/hb_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
