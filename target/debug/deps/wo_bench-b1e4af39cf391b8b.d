/root/repo/target/debug/deps/wo_bench-b1e4af39cf391b8b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libwo_bench-b1e4af39cf391b8b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
