/root/repo/target/debug/deps/weak_ordering-eac3f309e1ce3631.d: src/lib.rs

/root/repo/target/debug/deps/libweak_ordering-eac3f309e1ce3631.rlib: src/lib.rs

/root/repo/target/debug/deps/libweak_ordering-eac3f309e1ce3631.rmeta: src/lib.rs

src/lib.rs:
