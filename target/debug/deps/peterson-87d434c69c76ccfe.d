/root/repo/target/debug/deps/peterson-87d434c69c76ccfe.d: tests/peterson.rs

/root/repo/target/debug/deps/peterson-87d434c69c76ccfe: tests/peterson.rs

tests/peterson.rs:
