/root/repo/target/debug/deps/simx-8af18466484c62de.d: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

/root/repo/target/debug/deps/simx-8af18466484c62de: crates/simx/src/lib.rs crates/simx/src/queue.rs crates/simx/src/time.rs crates/simx/src/fault.rs crates/simx/src/rng.rs crates/simx/src/stats.rs

crates/simx/src/lib.rs:
crates/simx/src/queue.rs:
crates/simx/src/time.rs:
crates/simx/src/fault.rs:
crates/simx/src/rng.rs:
crates/simx/src/stats.rs:
