/root/repo/target/debug/deps/litmus_files-44216d4ba1ce8130.d: tests/litmus_files.rs

/root/repo/target/debug/deps/litmus_files-44216d4ba1ce8130: tests/litmus_files.rs

tests/litmus_files.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
