/root/repo/target/debug/deps/litmus_runner-6885c984a2d21d3d.d: crates/bench/src/bin/litmus_runner.rs

/root/repo/target/debug/deps/litmus_runner-6885c984a2d21d3d: crates/bench/src/bin/litmus_runner.rs

crates/bench/src/bin/litmus_runner.rs:
