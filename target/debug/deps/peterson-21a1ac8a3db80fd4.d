/root/repo/target/debug/deps/peterson-21a1ac8a3db80fd4.d: tests/peterson.rs Cargo.toml

/root/repo/target/debug/deps/libpeterson-21a1ac8a3db80fd4.rmeta: tests/peterson.rs Cargo.toml

tests/peterson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
