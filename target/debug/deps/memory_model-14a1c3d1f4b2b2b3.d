/root/repo/target/debug/deps/memory_model-14a1c3d1f4b2b2b3.d: crates/memory-model/src/lib.rs crates/memory-model/src/execution.rs crates/memory-model/src/ids.rs crates/memory-model/src/memory.rs crates/memory-model/src/observation.rs crates/memory-model/src/op.rs crates/memory-model/src/analysis.rs crates/memory-model/src/drf0.rs crates/memory-model/src/drf1.rs crates/memory-model/src/hb.rs crates/memory-model/src/lemma1.rs crates/memory-model/src/race.rs crates/memory-model/src/sc.rs crates/memory-model/src/vc.rs

/root/repo/target/debug/deps/memory_model-14a1c3d1f4b2b2b3: crates/memory-model/src/lib.rs crates/memory-model/src/execution.rs crates/memory-model/src/ids.rs crates/memory-model/src/memory.rs crates/memory-model/src/observation.rs crates/memory-model/src/op.rs crates/memory-model/src/analysis.rs crates/memory-model/src/drf0.rs crates/memory-model/src/drf1.rs crates/memory-model/src/hb.rs crates/memory-model/src/lemma1.rs crates/memory-model/src/race.rs crates/memory-model/src/sc.rs crates/memory-model/src/vc.rs

crates/memory-model/src/lib.rs:
crates/memory-model/src/execution.rs:
crates/memory-model/src/ids.rs:
crates/memory-model/src/memory.rs:
crates/memory-model/src/observation.rs:
crates/memory-model/src/op.rs:
crates/memory-model/src/analysis.rs:
crates/memory-model/src/drf0.rs:
crates/memory-model/src/drf1.rs:
crates/memory-model/src/hb.rs:
crates/memory-model/src/lemma1.rs:
crates/memory-model/src/race.rs:
crates/memory-model/src/sc.rs:
crates/memory-model/src/vc.rs:
