/root/repo/target/debug/deps/weakord-95bb2e9acffc3c92.d: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libweakord-95bb2e9acffc3c92.rmeta: crates/core/src/lib.rs crates/core/src/discipline.rs crates/core/src/model.rs crates/core/src/conditions.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/discipline.rs:
crates/core/src/model.rs:
crates/core/src/conditions.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
