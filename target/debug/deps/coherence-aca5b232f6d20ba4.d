/root/repo/target/debug/deps/coherence-aca5b232f6d20ba4.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

/root/repo/target/debug/deps/coherence-aca5b232f6d20ba4: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/error.rs crates/coherence/src/msg.rs crates/coherence/src/fabric.rs crates/coherence/src/snoop.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/error.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/fabric.rs:
crates/coherence/src/snoop.rs:
