/root/repo/target/debug/deps/models_lattice-acc73760a1606a65.d: crates/bench/src/bin/models_lattice.rs Cargo.toml

/root/repo/target/debug/deps/libmodels_lattice-acc73760a1606a65.rmeta: crates/bench/src/bin/models_lattice.rs Cargo.toml

crates/bench/src/bin/models_lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
