/root/repo/target/debug/deps/contract_roundtrip-240da6e9cac962c1.d: tests/contract_roundtrip.rs

/root/repo/target/debug/deps/contract_roundtrip-240da6e9cac962c1: tests/contract_roundtrip.rs

tests/contract_roundtrip.rs:
