/root/repo/target/debug/deps/fig1_sc_violation-4781d89e9ec50f83.d: crates/bench/src/bin/fig1_sc_violation.rs

/root/repo/target/debug/deps/fig1_sc_violation-4781d89e9ec50f83: crates/bench/src/bin/fig1_sc_violation.rs

crates/bench/src/bin/fig1_sc_violation.rs:
