/root/repo/target/debug/deps/cross_validation-ad07b0207c2cc0d8.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-ad07b0207c2cc0d8: tests/cross_validation.rs

tests/cross_validation.rs:
