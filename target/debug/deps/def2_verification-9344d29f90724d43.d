/root/repo/target/debug/deps/def2_verification-9344d29f90724d43.d: crates/bench/src/bin/def2_verification.rs

/root/repo/target/debug/deps/def2_verification-9344d29f90724d43: crates/bench/src/bin/def2_verification.rs

crates/bench/src/bin/def2_verification.rs:
