/root/repo/target/debug/deps/weak_ordering-4a2ffc26b7fbc05c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libweak_ordering-4a2ffc26b7fbc05c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
